"""Request deadline plumbing and endpoint rendering for the daemon.

This module is the pure core of the HTTP layer: given a parsed request
(path, query string, deadline) and the current
:class:`~repro.serve.state.QuerySnapshot`, produce ``(status,
content-type, body-bytes)``.  Keeping it free of sockets makes every
endpoint unit-testable without a server and keeps ``server.py`` down
to transport concerns (admission, draining, connection hygiene).

Deadlines
---------

A client bounds a request with the ``X-Deadline-Ms`` header.  The
handler materializes it into a :class:`Deadline` anchored on the
monotonic clock and *checks it mid-query*: once after admission, once
before rendering, and — for the one answer whose size scales with the
graph (a full-membership bipartition) — again between build steps.  An
expired deadline raises :class:`DeadlineExceeded`, which the transport
maps to ``504 Gateway Timeout``; the contract tested in CI is that the
504 lands within the deadline plus a small scheduling slop, i.e. the
server never keeps burning cycles on an answer nobody is waiting for.

Responses
---------

Every JSON body is rendered with
:func:`~repro.serve.state.canonical_json`, so equal payloads are equal
bytes — the property the chaos test's recovered-prefix diff and the
result cache both build on.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServeError
from repro.perf.registry import get_registry
from repro.serve.state import QuerySnapshot, canonical_json

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "render_metrics",
    "route_query",
]

#: Rendered response: (HTTP status, content type, body bytes).
Response = Tuple[int, str, bytes]

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"


class DeadlineExceeded(ServeError):
    """Raised mid-query when the request's deadline has passed."""


class Deadline:
    """A per-request budget anchored on the monotonic clock.

    ``Deadline(None)`` is the no-deadline sentinel: :meth:`check` is a
    no-op, so unbounded requests pay one attribute test per checkpoint.
    """

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, budget_ms: Optional[float]) -> None:
        """A deadline *budget_ms* milliseconds from now (None = none)."""
        if budget_ms is None:
            self.budget_ms = None
            self.expires_at = None
        else:
            if budget_ms <= 0:
                raise ServeError(
                    f"X-Deadline-Ms must be positive, got {budget_ms}"
                )
            self.budget_ms = float(budget_ms)
            self.expires_at = time.monotonic() + budget_ms / 1000.0

    @classmethod
    def from_header(cls, value: Optional[str]) -> "Deadline":
        """Parse an ``X-Deadline-Ms`` header value (absent = no deadline).

        Malformed values raise :class:`~repro.errors.ServeError`, which
        the transport maps to 400 — a client that asks for a bound it
        cannot spell should learn immediately, not time out silently.
        """
        if value is None:
            return cls(None)
        try:
            budget = float(value.strip())
        except ValueError:
            raise ServeError(
                f"X-Deadline-Ms must be a number of milliseconds, "
                f"got {value!r}"
            ) from None
        return cls(budget)

    @property
    def remaining(self) -> Optional[float]:
        """Seconds left, or None for the unbounded sentinel."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expires_at is not None and time.monotonic() > self.expires_at:
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:g} ms exceeded"
            )


# ----------------------------------------------------------------------
# Endpoint rendering
# ----------------------------------------------------------------------
def _id_from(path_rest: str, kind: str) -> int:
    """Parse the trailing integer id of a ``/vertex/<id>`` style path."""
    try:
        return int(path_rest)
    except ValueError:
        raise ServeError(f"{kind} id must be an integer, got {path_rest!r}") \
            from None


def _flag(params: Dict[str, Any], name: str) -> bool:
    """True when query param *name* is present and truthy ("1"/"true")."""
    values = params.get(name)
    if not values:
        return False
    return values[-1].lower() in ("1", "true", "yes")


def route_query(
    path: str, snapshot: QuerySnapshot, deadline: Deadline
) -> Response:
    """Render one query endpoint against *snapshot*.

    *path* is the raw request target (path + optional query string).
    Unknown paths return 404; bad ids 400.  Raises
    :class:`DeadlineExceeded` when the deadline lapses mid-render.
    """
    deadline.check()
    parts = urlsplit(path)
    segments = [s for s in parts.path.split("/") if s]
    params = parse_qs(parts.query)
    if not segments:
        payload = snapshot.info_payload()
    elif segments[0] == "snapshot" and len(segments) == 1:
        payload = snapshot.info_payload()
    elif segments[0] == "vertex" and len(segments) == 2:
        payload = snapshot.vertex_payload(_id_from(segments[1], "vertex"))
    elif segments[0] == "edge" and len(segments) == 2:
        payload = snapshot.edge_payload(_id_from(segments[1], "edge"))
    elif segments[0] == "frustration" and len(segments) == 1:
        payload = snapshot.frustration_payload()
    elif segments[0] == "bipartition" and len(segments) == 1:
        # The one answer whose size scales with the graph: re-check the
        # deadline between deciding to include members and building the
        # list, so an expired request stops before the expensive part.
        include_members = _flag(params, "members")
        deadline.check()
        payload = snapshot.bipartition_payload(include_members)
    else:
        return (
            404,
            _JSON,
            canonical_json({"error": f"unknown path {parts.path!r}"}),
        )
    deadline.check()
    return 200, _JSON, canonical_json(payload)


# ----------------------------------------------------------------------
# Prometheus text export
# ----------------------------------------------------------------------
def render_metrics() -> Response:
    """Render the active metrics registry in Prometheus text format.

    A thin transport shim over :func:`repro.perf.export.to_prometheus`
    — the one renderer shared by ``/metrics``, ``--metrics-out``, and
    :func:`~repro.perf.export.write_metrics`, so the scrape endpoint
    can never drift from the file exporters (``# HELP``/``# TYPE``
    headers, label-value escaping, ``+Inf == _count`` and all).
    """
    from repro.perf.export import to_prometheus

    body = to_prometheus(get_registry().snapshot()).encode("utf-8")
    return 200, _TEXT, body

"""Latency circuit breaker: shed background growth when queries degrade.

The daemon does two jobs on one machine: answer queries and grow the
cloud.  Growth is the deprioritized tenant — when query tail latency
(p99 over a sliding window of recent requests) climbs past its
threshold, the breaker *opens* and the growth worker sheds its load
(sleeps instead of sampling) until queries recover and a cool-down
passes.  This mirrors the campaign supervisor's degradation ledger
(:mod:`repro.parallel.supervisor`): every transition is journaled and
exported as a metric, so an operator can reconstruct exactly when and
why the daemon degraded.

States:

* **closed** — healthy; growth runs.
* **open (degraded)** — p99 over the last ``window`` samples exceeded
  ``p99_threshold``; growth sheds.  Recorded via journal event
  ``serve_degraded`` and gauge ``serve.degraded = 1``.
* recovery — after ``cooldown`` seconds with a healthy p99 the breaker
  closes again (``serve_recovered`` / ``serve.degraded = 0``).

The breaker never rejects queries — admission control owns refusal;
the breaker only arbitrates between the two internal tenants.
"""

from __future__ import annotations

import threading
import time
from typing import List

from repro.errors import ServeError
from repro.perf.journal import journal_event
from repro.perf.registry import get_registry

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Sliding-window p99 latency breaker over query durations.

    ``p99_threshold <= 0`` disables the breaker (always closed), so
    deployments without background growth pay nothing for it.
    """

    def __init__(
        self,
        p99_threshold: float = 0.25,
        window: int = 128,
        cooldown: float = 5.0,
        min_samples: int = 20,
    ) -> None:
        """Breaker tripping when windowed p99 exceeds *p99_threshold*
        seconds (over at least *min_samples* of the last *window*
        requests), closing after *cooldown* healthy seconds."""
        if window < 1:
            raise ServeError(f"breaker window must be >= 1, got {window}")
        if cooldown < 0:
            raise ServeError(
                f"breaker cooldown must be >= 0, got {cooldown}"
            )
        if min_samples < 1:
            raise ServeError(
                f"breaker min_samples must be >= 1, got {min_samples}"
            )
        self.p99_threshold = float(p99_threshold)
        self.window = int(window)
        self.cooldown = float(cooldown)
        self.min_samples = int(min_samples)
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._next = 0  # ring-buffer write cursor
        self._open = False
        self._opened_at = 0.0
        self._last_trip_p99 = 0.0

    @property
    def is_open(self) -> bool:
        """True while the breaker is open (growth should shed)."""
        return self._open

    def _p99(self) -> float:
        """p99 of the current window (lock held)."""
        ordered = sorted(self._samples)
        index = max(0, int(0.99 * (len(ordered) - 1)))
        return ordered[index]

    def record(self, duration: float) -> None:
        """Record one finished query's duration and re-evaluate state."""
        if self.p99_threshold <= 0:
            return
        now = time.monotonic()
        with self._lock:
            if len(self._samples) < self.window:
                self._samples.append(float(duration))
            else:
                self._samples[self._next] = float(duration)
                self._next = (self._next + 1) % self.window
            if len(self._samples) < self.min_samples:
                return
            p99 = self._p99()
            if not self._open:
                if p99 > self.p99_threshold:
                    self._open = True
                    self._opened_at = now
                    self._last_trip_p99 = p99
                    transition = "open"
                else:
                    return
            else:
                if p99 > self.p99_threshold:
                    # Still unhealthy: restart the cool-down clock.
                    self._opened_at = now
                    return
                if now - self._opened_at < self.cooldown:
                    return
                self._open = False
                transition = "closed"
        registry = get_registry()
        if transition == "open":
            registry.count("serve.breaker_trips_total", 1)
            registry.gauge("serve.degraded", 1.0)
            journal_event(
                "serve_degraded",
                p99_seconds=round(p99, 6),
                threshold_seconds=self.p99_threshold,
            )
        else:
            registry.gauge("serve.degraded", 0.0)
            journal_event(
                "serve_recovered",
                p99_seconds=round(p99, 6),
                cooldown_seconds=self.cooldown,
            )

    def snapshot(self) -> dict:
        """Current breaker state for ``/snapshot`` and debugging."""
        with self._lock:
            samples = len(self._samples)
            p99 = self._p99() if samples else 0.0
            return {
                "open": self._open,
                "samples": samples,
                "p99_seconds": round(p99, 6),
                "threshold_seconds": self.p99_threshold,
                "last_trip_p99_seconds": round(self._last_trip_p99, 6),
            }

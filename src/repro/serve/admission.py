"""Admission control: token-bucket rate limiting with honest backpressure.

Under a load burst the daemon must stay *bounded* — answer what it can
and refuse the rest cheaply — rather than queue unboundedly until it
OOMs or every response blows its deadline.  The token bucket is the
classic shape for that contract:

* the bucket holds at most ``burst`` tokens and refills at ``rate``
  tokens/second (continuous refill on the monotonic clock);
* each admitted query spends one token; a query arriving to an empty
  bucket is refused *immediately* with the number of seconds until a
  token will exist — the ``Retry-After`` the HTTP layer returns with
  its 503, so well-behaved clients back off exactly as long as needed.

Refusal is O(1) and allocation-free, which is the point: shedding load
must be the cheapest thing the server does.
"""

from __future__ import annotations

import threading
import time
from typing import Tuple

from repro.errors import ServeError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe continuous-refill token bucket.

    ``rate <= 0`` disables admission control (every request admitted)
    so small deployments can opt out without a separate code path.
    """

    def __init__(self, rate: float, burst: int) -> None:
        """A bucket refilling at *rate* tokens/s, holding *burst* max."""
        if rate < 0:
            raise ServeError(f"admission rate must be >= 0, got {rate}")
        if burst < 1:
            raise ServeError(f"admission burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate
            )
            self._stamp = now

    def try_acquire(self) -> Tuple[bool, float]:
        """Spend one token if available.

        Returns ``(admitted, retry_after_seconds)``; *retry_after* is
        0.0 when admitted and the time until the next token otherwise.
        """
        if self.rate == 0:
            return True, 0.0
        now = time.monotonic()
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            deficit = 1.0 - self._tokens
            return False, deficit / self.rate

    def available(self) -> float:
        """Tokens currently in the bucket (a gauge for metrics)."""
        if self.rate == 0:
            return float(self.burst)
        now = time.monotonic()
        with self._lock:
            self._refill(now)
            return self._tokens

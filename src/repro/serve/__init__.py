"""Crash-only frustration-cloud query daemon (``repro serve``).

The serve layer turns a packed signed graph plus a checkpointed cloud
campaign into a long-running HTTP query service that keeps growing its
cloud in the background:

* :mod:`repro.serve.state` — immutable query snapshots + atomic swap;
* :mod:`repro.serve.growth` — the background growth worker (supervised
  sampling rounds, per-round checkpoint + snapshot publish);
* :mod:`repro.serve.admission` — token-bucket admission control;
* :mod:`repro.serve.breaker` — p99 latency breaker shedding growth;
* :mod:`repro.serve.cache` — bounded LRU over rendered responses;
* :mod:`repro.serve.handlers` — deadlines + endpoint rendering;
* :mod:`repro.serve.server` — transport, crash-only boot, SIGTERM
  drain (:func:`run_server` is the entry the CLI calls).

The design is crash-only: the daemon has no clean-shutdown state to
load — every boot recovers from the checkpoint chain and journal, so a
``kill -9`` and a graceful drain converge on the same startup path,
and a recovered daemon serves byte-identical answers for the states it
recovered.
"""

from repro.serve.admission import TokenBucket
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.growth import GrowthWorker
from repro.serve.handlers import Deadline, DeadlineExceeded
from repro.serve.server import FrustrationServer, ServeConfig, run_server
from repro.serve.state import QuerySnapshot, SnapshotStore, canonical_json

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FrustrationServer",
    "GrowthWorker",
    "QuerySnapshot",
    "ResultCache",
    "ServeConfig",
    "SnapshotStore",
    "TokenBucket",
    "canonical_json",
    "run_server",
]

"""Bounded LRU result cache keyed on ``(fingerprint, epoch, query)``.

Query answers are pure functions of the published snapshot, so caching
is safe by construction: the key embeds the snapshot's graph
fingerprint *and* epoch, which means a newly published snapshot
invalidates every older entry without any explicit flush — stale keys
simply stop being generated and age out of the LRU tail.

The cache is bounded in entries (not bytes) because serve responses
are small (one vertex / one edge payload); the one potentially large
answer — a full-membership bipartition — is capped by the handler
before it reaches the cache.  All operations are O(1) under one lock,
and hit/miss counts land in the metrics registry so the Prometheus
export shows cache effectiveness live.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from repro.errors import ServeError
from repro.perf.registry import get_registry

__all__ = ["ResultCache"]

#: Cached value: (HTTP status, content type, body bytes).
CachedResponse = Tuple[int, str, bytes]


class ResultCache:
    """Thread-safe bounded LRU over rendered responses.

    ``max_entries <= 0`` disables caching entirely (every lookup
    misses, nothing is stored) so operators can rule the cache out
    when debugging without a separate code path.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        """Create a cache holding at most *max_entries* responses."""
        if max_entries < 0:
            raise ServeError(
                f"cache max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, CachedResponse]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[CachedResponse]:
        """The cached response for *key*, refreshing its LRU position;
        ``None`` on a miss."""
        if self.max_entries == 0:
            get_registry().count("serve.cache_misses_total", 1)
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        registry = get_registry()
        if value is None:
            registry.count("serve.cache_misses_total", 1)
        else:
            registry.count("serve.cache_hits_total", 1)
        return value

    def put(self, key: Hashable, value: CachedResponse) -> None:
        """Store *value* under *key*, evicting the LRU tail when full."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                get_registry().count("serve.cache_evictions_total", 1)
            get_registry().gauge(
                "serve.cache_entries", float(len(self._entries))
            )

    def clear(self) -> None:
        """Drop every entry (tests and operator resets)."""
        with self._lock:
            self._entries.clear()
        get_registry().gauge("serve.cache_entries", 0.0)

    def __len__(self) -> int:
        """Number of cached responses."""
        with self._lock:
            return len(self._entries)

"""Immutable query snapshots + the atomic snapshot store.

The daemon's readers and its background growth must never share a
mutable :class:`~repro.cloud.cloud.FrustrationCloud`: a query that
reads ``cloud.status()`` while a growth round is folding a batch in
would observe a half-grown cloud (majority counts from state ``k+1``
over a ``num_states`` of ``k``).  The serve layer therefore follows
the RCU pattern:

* growth mutates a *private* cloud, then builds a fresh
  :class:`QuerySnapshot` — a frozen bundle of the per-vertex /
  per-edge consensus arrays, all marked read-only — and publishes it
  with one :meth:`SnapshotStore.swap`;
* every request resolves its snapshot exactly once
  (:meth:`SnapshotStore.get`, a single attribute read under the GIL)
  and answers entirely from it, so a request sees one epoch from its
  first byte to its last even while growth keeps publishing.

Epochs increase monotonically with every swap and key the result
cache: a cached answer is only valid for the ``(fingerprint, epoch)``
it was computed under, so cache invalidation is automatic — stale
entries simply stop being addressable and age out of the LRU.

Snapshot answers are deterministic: every payload is derived purely
from the cloud's accumulators, which are themselves a pure function of
``(graph, campaign, num_states)``.  This is what makes the chaos test
meaningful — a daemon restarted from a checkpoint serves byte-identical
responses for the recovered prefix.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.errors import ServeError

__all__ = [
    "QuerySnapshot",
    "SnapshotStore",
    "canonical_json",
]


def canonical_json(payload: Dict[str, Any]) -> bytes:
    """Serialize a response payload to canonical (byte-stable) JSON.

    Keys are sorted and separators fixed, so two payloads with equal
    values serialize to identical bytes — the contract the chaos test's
    byte-for-byte comparison and the result cache both rely on.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _frozen(values: np.ndarray, dtype) -> np.ndarray:
    """A read-only contiguous copy of *values* as *dtype*."""
    out = np.ascontiguousarray(values, dtype=dtype)
    if out is values:  # defensive copy: never alias cloud internals
        out = out.copy()
    out.setflags(write=False)
    return out


class QuerySnapshot:
    """One immutable, fully materialized view of a frustration cloud.

    Built once per growth round (O(n + m), off the request path) and
    shared by every reader thereafter; all arrays are read-only copies,
    so a rogue handler cannot corrupt the published state and the
    source cloud can keep growing without tearing answers.
    """

    __slots__ = (
        "epoch",
        "fingerprint",
        "num_states",
        "num_vertices",
        "num_edges",
        "frustration_upper_bound",
        "status",
        "influence",
        "volatility",
        "vertex_agreement",
        "edge_agreement",
        "edge_coside",
        "edge_u",
        "edge_v",
        "edge_sign",
        "sides",
    )

    def __init__(
        self, cloud: FrustrationCloud, epoch: int, fingerprint: str
    ) -> None:
        """Materialize the cloud's consensus attributes at *epoch*."""
        if cloud.num_states < 1:
            raise ServeError("cannot snapshot an empty cloud")
        graph = cloud.graph
        self.epoch = int(epoch)
        self.fingerprint = fingerprint
        self.num_states = int(cloud.num_states)
        self.num_vertices = int(graph.num_vertices)
        self.num_edges = int(graph.num_edges)
        self.frustration_upper_bound = int(cloud.frustration_upper_bound())
        self.status = _frozen(cloud.status(), np.float64)
        self.influence = _frozen(cloud.influence(), np.float64)
        self.volatility = _frozen(cloud.status_volatility(), np.float64)
        self.vertex_agreement = _frozen(cloud.vertex_agreement(), np.float64)
        self.edge_agreement = _frozen(cloud.edge_agreement(), np.float64)
        self.edge_coside = _frozen(cloud.edge_coside(), np.float64)
        self.edge_u = _frozen(graph.edge_u, np.int64)
        self.edge_v = _frozen(graph.edge_v, np.int64)
        self.edge_sign = _frozen(graph.edge_sign, np.int8)
        # Consensus bipartition: a vertex sits with the majority side
        # when its status clears 0.5 (ties, status == 0.5 exactly, go
        # to side 0 deterministically).
        self.sides = _frozen(self.status > 0.5, np.bool_)

    # -- query payloads -------------------------------------------------
    def vertex_payload(self, vertex: int) -> Dict[str, Any]:
        """Consensus attributes of one vertex (status, influence, ...)."""
        if not 0 <= vertex < self.num_vertices:
            raise ServeError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )
        return {
            "vertex": vertex,
            "status": float(self.status[vertex]),
            "influence": float(self.influence[vertex]),
            "volatility": float(self.volatility[vertex]),
            "agreement": float(self.vertex_agreement[vertex]),
            "side": int(self.sides[vertex]),
            "states": self.num_states,
            "epoch": self.epoch,
        }

    def edge_payload(self, edge: int) -> Dict[str, Any]:
        """Consensus attributes of one edge (frustration, co-side, ...)."""
        if not 0 <= edge < self.num_edges:
            raise ServeError(
                f"edge {edge} out of range [0, {self.num_edges})"
            )
        agreement = float(self.edge_agreement[edge])
        return {
            "edge": edge,
            "u": int(self.edge_u[edge]),
            "v": int(self.edge_v[edge]),
            "sign": int(self.edge_sign[edge]),
            "agreement": agreement,
            "frustration": 1.0 - agreement,
            "coside": float(self.edge_coside[edge]),
            "states": self.num_states,
            "epoch": self.epoch,
        }

    def bipartition_payload(self, include_members: bool = False) -> Dict[str, Any]:
        """The consensus bipartition (sizes; members on request)."""
        side1 = int(self.sides.sum())
        payload: Dict[str, Any] = {
            "sizes": [self.num_vertices - side1, side1],
            "states": self.num_states,
            "epoch": self.epoch,
        }
        if include_members:
            payload["members"] = [int(s) for s in self.sides]
        return payload

    def frustration_payload(self) -> Dict[str, Any]:
        """Cloud-level frustration summary (upper bound + contested edges)."""
        contested = int((self.edge_agreement < 1.0).sum())
        return {
            "frustration_upper_bound": self.frustration_upper_bound,
            "contested_edges": contested,
            "edges": self.num_edges,
            "states": self.num_states,
            "epoch": self.epoch,
        }

    def info_payload(self) -> Dict[str, Any]:
        """Snapshot identity: epoch, states, graph shape, fingerprint."""
        return {
            "epoch": self.epoch,
            "states": self.num_states,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "fingerprint": self.fingerprint,
            "frustration_upper_bound": self.frustration_upper_bound,
        }


class SnapshotStore:
    """Holder of the current :class:`QuerySnapshot`, swapped atomically.

    ``get`` is one attribute read (atomic under the GIL); ``swap``
    takes a lock only to serialize *publishers* and keep the epoch
    counter monotonic.  Readers are never blocked by a swap and a
    swap never waits for readers — old snapshots die by refcount once
    the last in-flight request drops them.
    """

    def __init__(self) -> None:
        """Start empty (no snapshot published, epoch 0)."""
        self._lock = threading.Lock()
        self._snapshot: Optional[QuerySnapshot] = None
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The epoch of the newest published snapshot (0 = none yet)."""
        return self._epoch

    def get(self) -> Optional[QuerySnapshot]:
        """The current snapshot, or ``None`` before the first publish."""
        return self._snapshot

    def require(self) -> QuerySnapshot:
        """The current snapshot; raises :class:`ServeError` when the
        daemon has not published one yet (readers should 503)."""
        snapshot = self._snapshot
        if snapshot is None:
            raise ServeError("no snapshot published yet; daemon warming up")
        return snapshot

    def publish(self, cloud: FrustrationCloud, fingerprint: str) -> QuerySnapshot:
        """Build a fresh snapshot of *cloud* and swap it in; returns it."""
        with self._lock:
            epoch = self._epoch + 1
            snapshot = QuerySnapshot(cloud, epoch, fingerprint)
            self._snapshot = snapshot
            self._epoch = epoch
        return snapshot

"""Background cloud growth for the serve daemon.

The growth worker owns the daemon's *private* mutable cloud and runs
the campaign toward its target state count one small round at a time.
Each round:

1. checks the circuit breaker — when queries are degraded the round is
   shed (the worker sleeps instead of sampling), mirroring the
   supervisor's in-process degradation ledger;
2. runs the next contiguous block of tree indices through the existing
   self-healing supervisor (:func:`repro.parallel.supervisor.
   run_supervised`) so growth inherits its retry/backoff ladder — and
   its new ``stop_event`` rung, which lets a SIGTERM drain interrupt a
   round between blocks;
3. merges the completed block, writes an atomic rotated checkpoint
   (the daemon's crash-only persistence: a SIGKILL at any instant
   leaves a loadable chain), and publishes a fresh read-only
   :class:`~repro.serve.state.QuerySnapshot`.

One block per round keeps the recovered-prefix invariant trivially
true: the checkpoint chain only ever holds contiguous prefixes of the
campaign, so a restarted daemon resumes from ``cloud.num_states`` and
reproduces the exact states an uninterrupted run would have — which is
what makes recovered query answers byte-identical.

Checkpoint failures (e.g. a full disk) degrade, not crash: the round's
states still publish, the failure is journaled/counted, and the worker
keeps trying on later rounds.
"""

from __future__ import annotations

import threading

from repro.cloud.checkpoint import CampaignMeta, save_cloud
from repro.cloud.cloud import FrustrationCloud
from repro.errors import CheckpointError, ServeError
from repro.graph.csr import SignedGraph
from repro.parallel.supervisor import RetryPolicy, run_supervised
from repro.perf.flight import flight_clear_inflight, flight_mark_inflight
from repro.perf.journal import journal_event
from repro.perf.registry import get_registry
from repro.perf.tracing import span
from repro.serve.breaker import CircuitBreaker
from repro.serve.state import SnapshotStore

__all__ = ["GrowthWorker"]

#: How long a shed/failed round sleeps before re-checking, seconds.
_SHED_POLL = 0.05


class GrowthWorker:
    """Daemon thread growing the cloud to ``target_states``.

    The worker is the *only* writer of the cloud and the only
    checkpoint author; readers exclusively consume published
    snapshots.  ``stop()`` is cooperative and bounded: the stop event
    reaches the supervisor between blocks, so join returns within one
    block's compute time.
    """

    def __init__(
        self,
        graph: SignedGraph,
        cloud: FrustrationCloud,
        snapshots: SnapshotStore,
        fingerprint: str,
        *,
        target_states: int,
        grow_step: int = 16,
        method: str = "bfs",
        kernel: str = "lockstep",
        seed: int = 0,
        batch_size: int = 1,
        swaps_per_state: int = 1,
        checkpoint_path=None,
        keep_checkpoints: int = 2,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        round_delay: float = 0.0,
        max_round_failures: int = 5,
        workers: int = 1,
        flight_dir=None,
    ) -> None:
        """Configure a worker growing *cloud* to *target_states*.

        ``workers > 1`` fans each round's block over the supervised
        process pool (the round is split into per-worker sub-blocks so
        the pool rung actually engages); ``flight_dir`` rides into the
        supervisor so pool workers arm flight recorders there.
        """
        if grow_step < 1:
            raise ServeError(f"grow_step must be >= 1, got {grow_step}")
        if target_states < 0:
            raise ServeError(
                f"target_states must be >= 0, got {target_states}"
            )
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.graph = graph
        self.cloud = cloud
        self.snapshots = snapshots
        self.fingerprint = fingerprint
        self.target_states = target_states
        self.grow_step = grow_step
        self.method = method
        self.kernel = kernel
        self.seed = seed
        self.batch_size = batch_size
        self.swaps_per_state = swaps_per_state
        self.checkpoint_path = checkpoint_path
        self.keep_checkpoints = keep_checkpoints
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker
        self.round_delay = round_delay
        self.max_round_failures = max_round_failures
        self.workers = workers
        self.flight_dir = str(flight_dir) if flight_dir is not None else None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._failures = 0
        self.abandoned = False
        # Serializes (round, checkpoint, publish) between the
        # background loop and grow_once() callers — the worker stays
        # the only writer even when a debug request drives a round.
        self._round_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the target is reached (or growth gave up)."""
        return self.abandoned or self.cloud.num_states >= self.target_states

    @property
    def running(self) -> bool:
        """True while the worker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background thread (no-op when nothing to grow)."""
        if self.done:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-growth", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = None) -> bool:
        """Request a cooperative stop and join; True when joined."""
        self._stop.set()
        return self.join(timeout)

    def join(self, timeout: float | None = None) -> bool:
        """Wait (without stopping) for the worker thread to finish;
        True when it has — e.g. because the target was reached."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    # -- the campaign meta this worker's checkpoints describe -----------
    def campaign_meta(self) -> CampaignMeta:
        """The self-describing metadata stamped into every checkpoint."""
        return CampaignMeta(
            method=self.method,
            kernel=self.kernel,
            seed=self.seed,
            batch_size=self.batch_size,
            store_states=self.cloud.store_states,
            swaps_per_state=self.swaps_per_state,
        )

    def checkpoint(self) -> None:
        """Write an atomic rotated checkpoint of the current cloud.

        Failures degrade: a :class:`~repro.errors.CheckpointError`
        (including the disk-full path) is journaled and counted, never
        propagated — the daemon keeps serving.
        """
        if self.checkpoint_path is None or self.cloud.num_states == 0:
            return
        try:
            save_cloud(
                self.cloud,
                self.checkpoint_path,
                campaign=self.campaign_meta(),
                keep=self.keep_checkpoints,
            )
        except CheckpointError as exc:
            get_registry().count("serve.checkpoint_errors_total", 1)
            journal_event(
                "serve_checkpoint_failed",
                path=str(self.checkpoint_path),
                error=str(exc),
            )

    # -- growth loop ----------------------------------------------------
    def _round_blocks(self, start: int, stop: int) -> list:
        """Split one round's index range into supervised blocks.

        ``workers == 1`` keeps the historical single block.  With more
        workers the range is chunked so the supervisor's pool rung
        engages (it requires more than one block) and the round's
        spans come back from real worker processes.  The round only
        merges when *every* chunk completed, so chunking cannot break
        the contiguous-prefix checkpoint invariant.
        """
        count = stop - start
        chunks = min(self.workers, count)
        if chunks <= 1:
            return [(start, stop, 1)]
        size = -(-count // chunks)  # ceil
        blocks = []
        lo = start
        while lo < stop:
            hi = min(stop, lo + size)
            blocks.append((lo, hi, 1))
            lo = hi
        return blocks

    def _grow_round(self) -> bool:
        """Run one supervised round; True when states were merged."""
        start = self.cloud.num_states
        stop = min(self.target_states, start + self.grow_step)
        blocks = self._round_blocks(start, stop)
        # Dump-before-compute: a SIGKILL mid-round leaves a flight
        # dump naming exactly this block range as in-flight.
        flight_mark_inflight(
            what="growth_round", block_start=start, block_stop=stop
        )
        with span("serve_growth_round"):
            completed, report = run_supervised(
                self.graph,
                blocks,
                method=self.method,
                kernel=self.kernel,
                seed=self.seed,
                store_states=self.cloud.store_states,
                batch_size=self.batch_size,
                workers=self.workers,
                policy=self.policy,
                swaps_per_state=self.swaps_per_state,
                stop_event=self._stop,
                flight_dir=self.flight_dir,
            )
        flight_clear_inflight(
            what="growth_round", block_start=start, block_stop=stop,
            ok=report.ok, completed=len(completed),
        )
        whole_round = len(completed) == len(blocks)
        if report.stopped and not whole_round:
            return False
        if not report.ok or not whole_round:
            self._failures += 1
            get_registry().count("serve.growth_failures_total", 1)
            journal_event(
                "serve_growth_failed",
                block=start,
                failures=self._failures,
                detail=report.summary(),
            )
            if self._failures >= self.max_round_failures:
                self.abandoned = True
                journal_event(
                    "serve_growth_abandoned",
                    states=self.cloud.num_states,
                    target=self.target_states,
                )
            return False
        self._failures = 0
        from repro.parallel.pool import _absorb_metrics

        for _block, local in sorted(completed, key=lambda kv: kv[0]):
            self.cloud.merge(local)
            # Folds each block's metrics snapshot — and its span shard,
            # when the daemon is tracing — into the process registry/
            # collector, so worker-side spans stitch into the trace
            # the round ran under.
            _absorb_metrics(local)
        return True

    def _publish(self) -> None:
        snapshot = self.snapshots.publish(self.cloud, self.fingerprint)
        registry = get_registry()
        registry.gauge("serve.snapshot_epoch", float(snapshot.epoch))
        registry.gauge("serve.snapshot_states", float(snapshot.num_states))
        journal_event(
            "serve_snapshot_published",
            epoch=snapshot.epoch,
            states=snapshot.num_states,
        )

    def grow_once(self) -> bool:
        """Synchronously run one full round (grow, checkpoint, publish)
        on the *calling* thread; True when states were merged.

        This is the seam the gated ``/debug/grow`` endpoint uses: run
        inside a request's trace scope, the round's supervisor — and
        its pool workers — chain their spans under the request, so one
        stitched trace shows the HTTP request causing cross-process
        growth.  Serialized with the background loop via the round
        lock, preserving the single-writer contract.
        """
        if self.done:
            return False
        with self._round_lock:
            if self.done:
                return False
            if not self._grow_round():
                return False
            self.checkpoint()
            self._publish()
            return True

    def _run(self) -> None:
        while not self._stop.is_set() and not self.done:
            if self.breaker is not None and self.breaker.is_open:
                # Query latency is degraded: shed growth until the
                # breaker closes (transitions are journaled by it).
                get_registry().count("serve.growth_shed_total", 1)
                self._stop.wait(_SHED_POLL)
                continue
            with self._round_lock:
                grew = False
                if not self.done:
                    grew = self._grow_round()
                    if grew:
                        self.checkpoint()
                        self._publish()
            if grew:
                if self.round_delay > 0:
                    self._stop.wait(self.round_delay)
            elif not self._stop.is_set() and not self.abandoned:
                self._stop.wait(_SHED_POLL)
        if self.cloud.num_states >= self.target_states:
            journal_event(
                "serve_growth_completed", states=self.cloud.num_states
            )

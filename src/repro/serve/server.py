"""The crash-only HTTP daemon: transport, boot recovery, graceful drain.

This module glues the serve-layer parts into one process:

* **Boot is recovery.** There is no separate "load my saved session"
  path: the daemon *always* boots by attempting checkpoint recovery
  (:func:`repro.cloud.checkpoint.recover_cloud` walks the rotation
  chain) and reopening the JSONL journal (which truncates any torn
  tail from a previous crash).  A SIGKILL at any instant therefore
  leaves exactly the state the next boot starts from — crash-only by
  construction, and exercised that way by the chaos tests.
* **Transport hardening.** Every query passes token-bucket admission
  (refusals are ``503`` + ``Retry-After``), carries an optional
  ``X-Deadline-Ms`` budget enforced mid-query (``504`` on expiry),
  and is answered from an immutable snapshot — slow clients are
  bounded by a per-connection socket timeout, so one stalled reader
  cannot pin a handler thread forever.
* **Graceful drain.** SIGTERM (or SIGINT) flips the daemon into
  draining: ``/readyz`` goes 503 so load balancers stop routing, the
  listener closes, in-flight requests get up to ``drain_budget``
  seconds to finish, background growth is stopped cooperatively at the
  next block boundary, a final checkpoint is written, and the process
  exits 0.

The server thread model is ``ThreadingHTTPServer`` (one thread per
connection) with the accept loop in a *background* thread; the main
thread just waits for the stop signal and then runs the drain
sequence.  That inversion keeps all shutdown logic out of the signal
handler, which must do nothing but set an event.
"""

from __future__ import annotations

import collections
import contextlib
import json
import math
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.cloud.checkpoint import recover_cloud, validate_campaign
from repro.cloud.cloud import FrustrationCloud
from repro.errors import ServeError
from repro.graph.csr import SignedGraph
from repro.graph.store import graph_fingerprint
from repro.parallel.supervisor import RetryPolicy
from repro.perf.flight import (
    flight_dump,
    get_flight_recorder,
    install_flight_recorder,
    set_flight_recorder,
)
from repro.perf.journal import Journal, journal_event, journaling
from repro.perf.registry import get_registry
from repro.perf.trace_export import events_for_trace, spans_to_events
from repro.perf.tracectx import TraceContext, trace_scope
from repro.perf.tracing import (
    TraceCollector,
    get_trace_collector,
    set_trace_collector,
    span,
)
from repro.serve.admission import TokenBucket
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.growth import GrowthWorker
from repro.serve.handlers import (
    Deadline,
    DeadlineExceeded,
    render_metrics,
    route_query,
)
from repro.serve.state import SnapshotStore, canonical_json

__all__ = ["ServeConfig", "FrustrationServer", "run_server"]

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"


@dataclass
class ServeConfig:
    """Every knob of the daemon, with production-shaped defaults.

    Campaign parameters (``method``, ``kernel``, ``seed``,
    ``batch_size``, ``swaps_per_state``) default to ``None`` = "inherit
    from the recovered checkpoint's campaign, or the historical
    defaults on a fresh boot"; passing one explicitly on a resume must
    agree with the checkpoint or boot fails — silently diverging from
    the recorded campaign would break the byte-identical recovery
    contract.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the chosen port is printed + port-file'd
    port_file: Optional[Path] = None
    # -- campaign -------------------------------------------------------
    target_states: int = 256
    grow_step: int = 16
    grow: bool = True
    grow_delay_ms: float = 0.0
    method: Optional[str] = None
    kernel: Optional[str] = None
    seed: Optional[int] = None
    batch_size: Optional[int] = None
    swaps_per_state: Optional[int] = None
    # -- persistence ----------------------------------------------------
    checkpoint: Optional[Path] = None
    keep_checkpoints: int = 2
    journal: Optional[Path] = None
    # -- admission / caching / breaker ----------------------------------
    qps: float = 0.0  # 0 disables admission control
    burst: int = 32
    cache_size: int = 1024
    breaker_p99_ms: float = 0.0  # 0 disables the breaker
    breaker_window: int = 128
    breaker_cooldown: float = 2.0
    # -- lifecycle ------------------------------------------------------
    drain_budget: float = 10.0
    request_timeout: float = 10.0  # slow-client guard, seconds
    # -- observability --------------------------------------------------
    access_log: Optional[Path] = None  # JSONL, one line per query
    debug_trace: bool = False  # /debug/trace + /debug/grow + collector
    flight_dir: Optional[Path] = None  # crash flight-recorder dumps
    trace_max_events: int = 4096  # span buffer bound while tracing
    grow_workers: int = 1  # >1 fans growth rounds over a process pool

    def __post_init__(self) -> None:
        """Normalize paths and reject nonsensical combinations early."""
        if self.port < 0:
            raise ServeError(f"port must be >= 0, got {self.port}")
        if self.grow_workers < 1:
            raise ServeError(
                f"grow_workers must be >= 1, got {self.grow_workers}"
            )
        if self.trace_max_events < 0:
            raise ServeError(
                f"trace_max_events must be >= 0, got {self.trace_max_events}"
            )
        if self.drain_budget < 0:
            raise ServeError(
                f"drain_budget must be >= 0, got {self.drain_budget}"
            )
        if self.request_timeout <= 0:
            raise ServeError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.checkpoint is not None:
            self.checkpoint = Path(self.checkpoint)
        if self.journal is not None:
            self.journal = Path(self.journal)
        if self.port_file is not None:
            self.port_file = Path(self.port_file)
        if self.access_log is not None:
            self.access_log = Path(self.access_log)
        if self.flight_dir is not None:
            self.flight_dir = Path(self.flight_dir)


class _RequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the serve daemon.

    ``timeout`` (set per-server from the config) bounds slow clients:
    ``handle_one_request`` treats a socket timeout as a fatal
    connection error and closes, so a client trickling bytes cannot
    hold a handler thread past the budget.
    """

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    # Headers and body go out in separate sends; without TCP_NODELAY
    # the Nagle + delayed-ACK interaction stalls keep-alive clients
    # ~40ms per response.
    disable_nagle_algorithm = True
    server: "FrustrationServer"

    # Per-request identity, minted in do_GET after the probe check.
    _request_id = ""
    _request_ctx: Optional[TraceContext] = None
    _status = 0
    _cache_state = ""
    _outcome = "ok"

    def setup(self) -> None:
        """Arm the per-connection slow-client timeout before reading."""
        self.timeout = self.server.config.request_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter (metrics cover it)."""

    # -- request identity ----------------------------------------------
    def _mint_identity(self) -> None:
        """Adopt or mint this request's trace identity.

        A valid incoming ``traceparent`` joins the client's trace (the
        request span becomes its child); otherwise a fresh root trace
        is minted.  ``X-Request-Id`` is honoured when the client sent
        one, else the trace id doubles as the request id — either way
        both go back out as response headers on every answer.
        """
        header = self.headers.get("traceparent")
        ctx = TraceContext.from_traceparent(header) if header else None
        if ctx is None:
            ctx = TraceContext.mint()
        else:
            # Joining the client's trace: the response must name *our*
            # position in it, not echo the client's span id back.
            ctx = ctx.child()
        rid = (self.headers.get("X-Request-Id") or "").strip()
        self._request_ctx = ctx
        self._request_id = (rid or ctx.trace_id)[:128]

    # -- response plumbing ---------------------------------------------
    def _respond(
        self,
        status: int,
        ctype: str,
        body: bytes,
        retry_after: Optional[float] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        if self._request_ctx is not None:
            self.send_header(
                "traceparent", self._request_ctx.to_traceparent()
            )
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        if self.server.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        get_registry().count(f"serve.http_{status}_total", 1)

    def _respond_json(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        self._respond(status, _JSON, canonical_json(payload), retry_after)

    # -- probes ---------------------------------------------------------
    def _probe(self, path: str) -> bool:
        """Answer /healthz, /readyz, /metrics; True when handled.

        Probes bypass admission control and the in-flight ledger: a
        load balancer must be able to observe a saturated or draining
        daemon, and probes must not delay its drain.
        """
        if path == "/healthz":
            self._respond(200, _TEXT, b"ok\n")
            return True
        if path == "/readyz":
            if self.server.draining:
                self._respond(503, _TEXT, b"draining\n")
            elif self.server.snapshots.get() is None:
                self._respond(503, _TEXT, b"no snapshot yet\n", retry_after=1)
            else:
                self._respond(200, _TEXT, b"ready\n")
            return True
        if path == "/metrics":
            status, ctype, body = render_metrics()
            self._respond(status, ctype, body)
            return True
        return False

    # -- the query path -------------------------------------------------
    def do_GET(self) -> None:
        """Route one GET through probes, debug, or the query path."""
        try:
            base = self.path.split("?", 1)[0]
            self._request_id = ""
            self._request_ctx = None
            self._status = 0
            if self._probe(base):
                return
            self._mint_identity()
            if base == "/debug/trace":
                start = time.monotonic()
                self._debug_trace()
                self._access(start, outcome="debug")
                return
            if base == "/debug/grow":
                self._debug_grow()
                return
            if not self.server.begin_request():
                self._respond_json(
                    503, {"error": "draining"}, retry_after=1
                )
                return
            try:
                self._handle_query()
            finally:
                self.server.end_request()
        except (BrokenPipeError, ConnectionResetError):
            # The client is gone; nothing to answer, nothing to log
            # loudly — the connection thread just winds down.
            self.close_connection = True

    # -- debug endpoints (gated behind config.debug_trace) --------------
    def _debug_trace(self) -> None:
        """Render one request's stitched spans as a Chrome trace doc.

        ``/debug/trace?request_id=<id>`` (or ``trace_id=<32hex>``)
        slices the daemon's long-lived collector down to one causal
        tree — HTTP request span, growth rounds it caused, and any
        absorbed worker-process spans — ready to save and load in
        Perfetto.  404 unless ``debug_trace`` is on.
        """
        server = self.server
        if not server.config.debug_trace:
            self._respond_json(404, {"error": "debug endpoints disabled"})
            return
        params = parse_qs(urlsplit(self.path).query)
        trace_id = (params.get("trace_id") or [""])[-1].strip()
        request_id = (params.get("request_id") or [""])[-1].strip()
        if not trace_id and request_id:
            trace_id = server.lookup_request(request_id) or ""
        if not trace_id:
            self._respond_json(
                404,
                {"error": "unknown request_id (pass request_id= or "
                          "trace_id=)"},
            )
            return
        collector = get_trace_collector()
        events = collector.events() if collector is not None else []
        selected = events_for_trace(events, trace_id)
        if not selected:
            self._respond_json(
                404, {"error": f"no spans recorded for trace {trace_id}"}
            )
            return
        doc = {
            "traceEvents": spans_to_events(
                selected, process_name="repro-serve"
            ),
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": trace_id, "request_id": request_id,
            },
        }
        body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        self._respond(200, _JSON, body)

    def _debug_grow(self) -> None:
        """Synchronously drive one growth round under this request's
        trace, so the stitched trace shows the request *causing* the
        cross-process growth work.  404 unless ``debug_trace`` is on."""
        server = self.server
        if not server.config.debug_trace or server.growth is None:
            self._respond_json(404, {"error": "debug endpoints disabled"})
            return
        ctx = self._request_ctx
        start = time.monotonic()
        with trace_scope(ctx), span("serve_request"):
            grew = server.growth.grow_once()
        server.remember_request(self._request_id, ctx.trace_id)
        self._respond_json(
            200,
            {
                "grew": bool(grew),
                "states": server.growth.cloud.num_states,
                "request_id": self._request_id,
                "trace_id": ctx.trace_id,
            },
        )
        self._access(start, outcome="ok" if grew else "no_growth")

    # -- access log ------------------------------------------------------
    def _access(self, wall_start: float, *, outcome: str) -> None:
        """Emit one structured access-log line (no-op when disabled)."""
        log = self.server.access_log
        if log is None:
            return
        ctx = self._request_ctx
        log.emit(
            "serve_access",
            request_id=self._request_id,
            trace_id=ctx.trace_id if ctx is not None else "",
            path=self.path,
            status=self._status,
            latency_ms=round((time.monotonic() - wall_start) * 1000.0, 3),
            cache=self._cache_state,
            outcome=outcome,
        )

    def _handle_query(self) -> None:
        server = self.server
        registry = get_registry()
        registry.count("serve.requests_total", 1)
        ctx = self._request_ctx
        wall_start = time.monotonic()
        self._cache_state = ""
        self._outcome = "ok"
        try:
            with trace_scope(ctx), span("serve_request"):
                self._answer_query()
        finally:
            server.remember_request(self._request_id, ctx.trace_id)
            self._access(wall_start, outcome=self._outcome)

    def _answer_query(self) -> None:
        server = self.server
        registry = get_registry()
        admitted, retry_after = server.bucket.try_acquire()
        if not admitted:
            registry.count("serve.throttled_total", 1)
            self._outcome = "shed"
            self._respond_json(
                503,
                {"error": "overloaded", "retry_after_s": round(retry_after, 3)},
                retry_after=retry_after,
            )
            return
        start = time.monotonic()
        try:
            deadline = Deadline.from_header(self.headers.get("X-Deadline-Ms"))
            snapshot = server.snapshots.get()
            if snapshot is None:
                self._outcome = "no_snapshot"
                self._respond_json(
                    503,
                    {"error": "no snapshot published yet; warming up"},
                    retry_after=1,
                )
                return
            key = (snapshot.fingerprint, snapshot.epoch, self.path)
            response = server.cache.get(key)
            if response is None:
                self._cache_state = "miss"
                response = route_query(self.path, snapshot, deadline)
                if response[0] == 200:
                    server.cache.put(key, response)
            else:
                self._cache_state = "hit"
            deadline.check()
            status, ctype, body = response
            self._respond(status, ctype, body)
        except DeadlineExceeded as exc:
            registry.count("serve.deadline_exceeded_total", 1)
            self._outcome = "deadline"
            self._respond_json(504, {"error": str(exc)})
        except ServeError as exc:
            self._outcome = "bad_request"
            self._respond_json(400, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as exc:  # never let a handler bug kill the thread
            registry.count("serve.internal_errors_total", 1)
            self._outcome = "error"
            journal_event("serve_internal_error", error=repr(exc))
            with contextlib.suppress(Exception):
                self._respond_json(500, {"error": "internal error"})
        finally:
            duration = time.monotonic() - start
            registry.observe("serve.request_seconds", duration)
            if server.breaker is not None:
                server.breaker.record(duration)


class FrustrationServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the daemon's shared state.

    ``daemon_threads`` + ``block_on_close=False`` mean lingering
    keep-alive connections never block shutdown; the drain sequence
    instead waits on the *in-flight request* ledger, which counts only
    requests actually being answered.
    """

    daemon_threads = True
    block_on_close = False

    #: How many recent request → trace mappings the daemon remembers
    #: for ``/debug/trace?request_id=`` lookups.
    RECENT_REQUESTS = 1024

    def __init__(
        self,
        address: Tuple[str, int],
        config: ServeConfig,
        snapshots: SnapshotStore,
        bucket: TokenBucket,
        cache: ResultCache,
        breaker: Optional[CircuitBreaker],
        access_log: Optional[Journal] = None,
    ) -> None:
        """Bind the listener and attach the serve-layer components."""
        super().__init__(address, _RequestHandler)
        self.config = config
        self.snapshots = snapshots
        self.bucket = bucket
        self.cache = cache
        self.breaker = breaker
        self.access_log = access_log
        self.growth: Optional[GrowthWorker] = None
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Condition()
        self._recent_lock = threading.Lock()
        self._recent: "collections.OrderedDict[str, str]" = (
            collections.OrderedDict()
        )

    # -- request → trace identity ring ----------------------------------
    def remember_request(self, request_id: str, trace_id: str) -> None:
        """Record one answered request's trace id (bounded LRU ring)."""
        if not request_id:
            return
        with self._recent_lock:
            self._recent[request_id] = trace_id
            self._recent.move_to_end(request_id)
            while len(self._recent) > self.RECENT_REQUESTS:
                self._recent.popitem(last=False)

    def lookup_request(self, request_id: str) -> Optional[str]:
        """The trace id of a recently answered request, or ``None``."""
        with self._recent_lock:
            return self._recent.get(request_id)

    # -- in-flight ledger (drives graceful drain) -----------------------
    def begin_request(self) -> bool:
        """Enter the in-flight ledger; False once draining started."""
        with self._inflight_lock:
            if self.draining:
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        """Leave the in-flight ledger, waking any drain waiter."""
        with self._inflight_lock:
            self._inflight -= 1
            self._inflight_lock.notify_all()

    def start_draining(self) -> None:
        """Refuse new queries from now on (readyz flips to 503 too)."""
        with self._inflight_lock:
            self.draining = True

    def wait_idle(self, budget: float) -> bool:
        """Wait up to *budget* seconds for in-flight requests to finish."""
        limit = time.monotonic() + budget
        with self._inflight_lock:
            while self._inflight > 0:
                left = limit - time.monotonic()
                if left <= 0:
                    return False
                self._inflight_lock.wait(left)
            return True


# ----------------------------------------------------------------------
# Boot + drain orchestration
# ----------------------------------------------------------------------
def _checkpoint_exists(path: Path) -> bool:
    """Whether *path* or any of its rotation backups exists on disk."""
    if path.exists():
        return True
    return any(path.parent.glob(path.name + ".*"))


def _boot_cloud(
    graph: SignedGraph, config: ServeConfig
) -> Tuple[FrustrationCloud, dict]:
    """Crash-only boot: recover the cloud, or start a fresh campaign.

    Returns ``(cloud, resolved_campaign_params)``.  Recovery is the
    *only* load path — there is no "clean shutdown" state to prefer —
    and a checkpoint chain that exists but cannot be loaded raises
    instead of silently restarting the campaign from zero.
    """
    if config.checkpoint is not None and _checkpoint_exists(config.checkpoint):
        cloud, meta, source = recover_cloud(config.checkpoint, graph)
        resolved = validate_campaign(
            meta,
            method=config.method,
            kernel=config.kernel,
            seed=config.seed,
            batch_size=config.batch_size,
            store_states=False if meta is None else None,
            swaps_per_state=config.swaps_per_state,
        )
        journal_event(
            "server_recovered",
            states=cloud.num_states,
            source=str(source),
        )
        get_registry().count("serve.recoveries_total", 1)
        return cloud, resolved
    resolved = validate_campaign(
        None,
        method=config.method,
        kernel=config.kernel,
        seed=config.seed,
        batch_size=config.batch_size,
        store_states=False,
        swaps_per_state=config.swaps_per_state,
    )
    return FrustrationCloud(graph, store_states=False), resolved


def _write_port_file(config: ServeConfig, port: int) -> None:
    """Atomically publish the bound port for test/tooling discovery."""
    if config.port_file is None:
        return
    tmp = config.port_file.with_name(config.port_file.name + ".tmp")
    tmp.write_text(f"{port}\n", encoding="utf-8")
    tmp.replace(config.port_file)


def run_server(
    graph: SignedGraph,
    config: ServeConfig,
    stop_event: Optional[threading.Event] = None,
    ready_callback=None,
) -> int:
    """Boot, serve until stopped, drain gracefully; returns exit code 0.

    *stop_event* is the stop signal; when ``None`` one is created and
    wired to SIGTERM/SIGINT (only possible from the main thread —
    embedded/test callers running in a worker thread must pass their
    own event).  *ready_callback*, if given, is called with the bound
    port once the daemon is accepting connections — the seam the
    in-process tests use instead of polling the port file.
    """
    own_signals = (
        stop_event is None
        and threading.current_thread() is threading.main_thread()
    )
    stop = stop_event if stop_event is not None else threading.Event()
    fingerprint = graph_fingerprint(graph)
    with contextlib.ExitStack() as stack:
        if config.journal is not None:
            stack.enter_context(journaling(config.journal))
        # Observability plumbing, all opt-in: the bounded span
        # collector backs /debug/trace, the flight recorder leaves
        # crash dumps, the access log narrates every query.  Previous
        # process-global sinks are restored on exit (LIFO) so
        # embedded/test daemons don't leak state into their host.
        if config.debug_trace:
            stack.callback(set_trace_collector, get_trace_collector())
            set_trace_collector(TraceCollector(config.trace_max_events))
        if config.flight_dir is not None:
            stack.callback(set_flight_recorder, get_flight_recorder())
            install_flight_recorder(
                str(config.flight_dir), role="serve-daemon"
            )
        access_log = None
        if config.access_log is not None:
            access_log = stack.enter_context(Journal(config.access_log))
        cloud, campaign = _boot_cloud(graph, config)
        snapshots = SnapshotStore()
        if cloud.num_states > 0:
            snapshots.publish(cloud, fingerprint)
        breaker = (
            CircuitBreaker(
                p99_threshold=config.breaker_p99_ms / 1000.0,
                window=config.breaker_window,
                cooldown=config.breaker_cooldown,
            )
            if config.breaker_p99_ms > 0
            else None
        )
        growth = GrowthWorker(
            graph,
            cloud,
            snapshots,
            fingerprint,
            target_states=config.target_states,
            grow_step=config.grow_step,
            method=campaign["method"],
            kernel=campaign["kernel"],
            seed=campaign["seed"],
            batch_size=campaign["batch_size"],
            swaps_per_state=campaign["swaps_per_state"],
            checkpoint_path=config.checkpoint,
            keep_checkpoints=config.keep_checkpoints,
            policy=RetryPolicy(),
            breaker=breaker,
            round_delay=config.grow_delay_ms / 1000.0,
            workers=config.grow_workers,
            flight_dir=config.flight_dir,
        )
        server = FrustrationServer(
            (config.host, config.port),
            config,
            snapshots,
            TokenBucket(config.qps, config.burst),
            ResultCache(config.cache_size),
            breaker,
            access_log=access_log,
        )
        server.growth = growth
        stack.callback(server.server_close)
        port = server.server_address[1]
        _write_port_file(config, port)
        if own_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: stop.set())
        journal_event(
            "server_started",
            port=port,
            states=cloud.num_states,
            target=config.target_states,
            fingerprint=fingerprint,
        )
        get_registry().gauge("serve.listening_port", float(port))
        accept_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        accept_thread.start()
        if config.grow:
            growth.start()
        print(
            f"serving on http://{config.host}:{port} "
            f"({cloud.num_states}/{config.target_states} states)",
            flush=True,
        )
        if ready_callback is not None:
            ready_callback(port)
        stop.wait()
        # ---- graceful drain ------------------------------------------
        journal_event("server_draining", inflight=server._inflight)
        server.start_draining()  # readyz → 503, new queries refused
        server.shutdown()  # stop accepting; serve_forever returns
        accept_thread.join(timeout=5.0)
        drained = server.wait_idle(config.drain_budget)
        growth.stop(timeout=max(config.drain_budget, 1.0))
        growth.checkpoint()  # final checkpoint, even mid-campaign
        journal_event(
            "server_stopped",
            drained=drained,
            states=cloud.num_states,
        )
        flight_dump()  # last black-box write of a clean shutdown
        print(
            f"drained ({cloud.num_states} states checkpointed), exiting",
            flush=True,
        )
    return 0

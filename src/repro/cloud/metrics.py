"""Consensus metrics derived from a frustration cloud (extension).

The frustration-cloud framework [33] reads social structure out of the
*ensemble* of nearest balanced states rather than any single one.
Beyond the paper's status attribute, this module derives:

* **consensus communities** — connected components of the subgraph of
  edges whose endpoints co-side in at least a threshold fraction of
  states.  Unlike modularity/spectral clusters these respect sentiment,
  not just adjacency;
* **state diversity** — the Shannon entropy of the unique-state
  multiplicity distribution (0 when every tree reaches the same state,
  log₂(#trees) when all states differ);
* **polarization** — how cleanly the cloud splits the graph in two:
  the mean absolute deviation of edge co-side probabilities from ½,
  rescaled to [0, 1] (1 = every edge deterministic, 0 = coin flips);
* **controversy** (per edge) — ``1 − |2·coside − 1|``: edges whose
  endpoints' relationship the consensus cannot settle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.errors import ReproError
from repro.graph.build import csr_from_undirected
from repro.graph.components import connected_components

__all__ = [
    "consensus_communities",
    "state_diversity",
    "polarization",
    "edge_controversy",
]


def consensus_communities(
    cloud: FrustrationCloud, threshold: float = 0.9
) -> np.ndarray:
    """Label vertices by consensus community.

    Two adjacent vertices belong to the same community when they land on
    the same bipartition side in at least ``threshold`` of the sampled
    states; communities are the connected components of those edges.
    """
    if not 0.0 < threshold <= 1.0:
        raise ReproError("threshold must be in (0, 1]")
    graph = cloud.graph
    coside = cloud.edge_coside()
    keep = coside >= threshold
    eu = graph.edge_u[keep]
    ev = graph.edge_v[keep]
    sub = csr_from_undirected(
        graph.num_vertices, eu, ev, np.ones(len(eu), dtype=np.int8)
    )
    return connected_components(sub)


def state_diversity(cloud: FrustrationCloud) -> float:
    """Shannon entropy (bits) of the unique-state multiplicities.

    Requires a cloud built with ``store_states=True``.  The Fig. 1
    example gives entropy < log₂(8) because several trees converge to
    the same state.
    """
    counts = np.asarray(list(cloud.unique_states().values()), dtype=np.float64)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def polarization(cloud: FrustrationCloud) -> float:
    """How decisively the cloud assigns relationships: mean of
    ``|2·coside − 1|`` over edges.  1 means every edge's co-side
    relation is the same in every state (a frozen split); 0 means every
    edge is a coin flip."""
    coside = cloud.edge_coside()
    return float(np.abs(2.0 * coside - 1.0).mean()) if len(coside) else 0.0


def edge_controversy(cloud: FrustrationCloud) -> np.ndarray:
    """Per-edge controversy score ``1 − |2·coside − 1|`` ∈ [0, 1]."""
    coside = cloud.edge_coside()
    return 1.0 - np.abs(2.0 * coside - 1.0)

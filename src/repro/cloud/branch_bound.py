"""Branch-and-bound frustration index (the §4 related-work comparator).

The paper positions graphB+ against exact frustration solvers — Wu &
Chen's branch-and-bound (n ≤ 40) and Aref et al.'s binary programming
(≤ 15k edges) — which compute the global optimum but do not scale to
social networks.  This module implements that class of solver so the
comparison can be run:

* vertices are assigned ±1 in BFS order from the highest-degree vertex,
  so each new vertex is adjacent to assigned territory and its
  violation cost is known at assignment time;
* for every *unassigned* vertex the solver maintains the violation cost
  of each of its two choices against the already-assigned neighbors;
  the sum of the per-vertex minima is a valid lower bound on the
  remaining cost (edges between two unassigned vertices can only add),
  updated incrementally in O(degree) per assignment;
* the cheaper choice is explored first and branches whose
  ``committed + lookahead`` bound reaches the incumbent are pruned;
* the incumbent starts at the greedy local-search solution, which is
  usually already optimal and turns the search into a certificate.

Practical reach: tens of vertices on sparse graphs — far beyond the
2^(n−1) enumerator's n ≤ 24, far below graphB+'s millions, which is
precisely the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.frustration import (
    frustration_local_search,
    frustration_of_switching,
)
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike

__all__ = ["frustration_branch_bound"]

_NODE_LIMIT_DEFAULT = 2_000_000


def frustration_branch_bound(
    graph: SignedGraph,
    node_limit: int = _NODE_LIMIT_DEFAULT,
    seed: SeedLike = 0,
) -> tuple[int, np.ndarray]:
    """Exact frustration index by branch and bound.

    Returns ``(L, s_opt)``.  Raises :class:`ReproError` when the search
    exceeds ``node_limit`` nodes (dense, highly frustrated graphs) —
    callers should fall back to the local-search bound there.
    """
    n = graph.num_vertices
    if n == 0:
        return 0, np.empty(0, dtype=np.int8)

    order = _assignment_order(graph)
    pos_of = np.empty(n, dtype=np.int64)
    pos_of[order] = np.arange(n)

    # Later neighbors of each vertex (in assignment order), with signs:
    # assigning v updates exactly these vertices' choice costs.
    later_nbrs: list[list[int]] = [[] for _ in range(n)]
    later_signs: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        for w, e in zip(graph.neighbors(v), graph.incident_edges(v)):
            if pos_of[w] > pos_of[v]:
                later_nbrs[v].append(int(w))
                later_signs[v].append(int(graph.edge_sign[e]))

    # Incumbent from greedy local search.
    best, best_s = frustration_local_search(graph, restarts=6, seed=seed)
    if best == 0:
        return 0, best_s

    assign = np.zeros(n, dtype=np.int8)
    # cost_pos[w] / cost_neg[w]: violations w would incur against its
    # already-assigned neighbors if set to +1 / −1.
    cost_pos = np.zeros(n, dtype=np.int64)
    cost_neg = np.zeros(n, dtype=np.int64)
    state = {"nodes": 0, "best": int(best), "best_s": best_s, "lookahead": 0}

    def apply(v: int, choice: int) -> int:
        """Assign v; update later-neighbor costs and the lookahead sum.
        Returns v's own committed cost."""
        own = int(cost_pos[v] if choice == 1 else cost_neg[v])
        # v leaves the unassigned pool: remove its min from the lookahead.
        state["lookahead"] -= int(min(cost_pos[v], cost_neg[v]))
        assign[v] = choice
        for w, s in zip(later_nbrs[v], later_signs[v]):
            old_min = min(cost_pos[w], cost_neg[w])
            if choice * s == -1:
                cost_pos[w] += 1
            else:
                cost_neg[w] += 1
            state["lookahead"] += int(min(cost_pos[w], cost_neg[w]) - old_min)
        return own

    def undo(v: int, choice: int) -> None:
        for w, s in zip(later_nbrs[v], later_signs[v]):
            old_min = min(cost_pos[w], cost_neg[w])
            if choice * s == -1:
                cost_pos[w] -= 1
            else:
                cost_neg[w] -= 1
            state["lookahead"] += int(min(cost_pos[w], cost_neg[w]) - old_min)
        assign[v] = 0
        state["lookahead"] += int(min(cost_pos[v], cost_neg[v]))

    def descend(v_idx: int, violations: int) -> None:
        state["nodes"] += 1
        if state["nodes"] > node_limit:
            raise ReproError(
                f"branch-and-bound exceeded {node_limit} nodes; "
                "use frustration_local_search for this graph"
            )
        if violations + state["lookahead"] >= state["best"]:
            return
        if v_idx == n:
            state["best"] = violations
            state["best_s"] = assign.copy()
            return
        v = int(order[v_idx])
        first = 1 if cost_pos[v] <= cost_neg[v] else -1
        for choice in (first, -first):
            own = apply(v, choice)
            if violations + own + state["lookahead"] < state["best"]:
                descend(v_idx + 1, violations + own)
            undo(v, choice)

    # Pin the first vertex (global negation symmetry); descend
    # iteratively enough for deep graphs via a raised recursion limit.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n + 100))
    try:
        apply(int(order[0]), 1)
        descend(1, 0)
        undo(int(order[0]), 1)
    finally:
        sys.setrecursionlimit(old_limit)

    best = int(state["best"])
    best_s = state["best_s"]
    assert frustration_of_switching(graph, best_s) == best
    return best, best_s


def _assignment_order(graph: SignedGraph) -> np.ndarray:
    """BFS order from the max-degree vertex, visiting all components."""
    from collections import deque

    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    order: list[int] = []
    degree = np.diff(graph.indptr)
    seeds = np.argsort(degree)[::-1]
    for seed_v in seeds:
        if seen[seed_v]:
            continue
        queue = deque([int(seed_v)])
        seen[seed_v] = True
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    queue.append(int(w))
    return np.asarray(order, dtype=np.int64)

"""Crash-safe cloud checkpointing: save, load, recover, and resume.

A 1000-state campaign on a large graph can run for hours in pure
Python; production runs need to survive restarts *and* crashes.  The
checkpoint layer therefore provides three guarantees:

* **Atomic, self-describing writes** (format v2).  :func:`save_cloud`
  writes the accumulators to a temp file, fsyncs, and publishes with
  ``os.replace`` — a kill at any instant leaves either the previous
  checkpoint or the new one, never a torn file.  The payload embeds the
  campaign metadata (:class:`CampaignMeta`: method, kernel, seed,
  batch size, store_states) next to the graph fingerprint, so a
  checkpoint fully describes how to continue it.
* **Rotation + recovery.**  ``save_cloud(..., keep=K)`` rotates the
  last K good checkpoints (``path``, ``path.1``, …) and
  :func:`recover_cloud` falls back to the newest loadable one when the
  latest is truncated or corrupt.  Every array is shape-validated
  against the graph, so damage surfaces as a clear
  :class:`~repro.errors.CheckpointError` instead of a cryptic numpy
  crash deep inside an attribute computation.
* **Validated resume.**  :func:`resume_cloud` continues a seeded
  campaign from state ``cloud.num_states`` onward, bit-identical to an
  uninterrupted run (tested under fault injection — see
  :mod:`repro.util.faults`).  When the checkpoint carries campaign
  metadata, resume parameters left as ``None`` are inherited from it
  and explicitly passed parameters are checked against it; a mismatch
  raises instead of silently producing a divergent cloud.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Callable, Iterator, Tuple, Union

import numpy as np

from repro.cloud.cloud import BATCHED_KERNELS, FrustrationCloud
from repro.core.balancer import balance
from repro.errors import CheckpointError, EngineError, ReproError
from repro.graph.csr import SignedGraph

# Canonical fingerprint lives with the on-disk graph store so that
# checkpoints, store files, and in-memory graphs all hash identically;
# re-exported here for backward compatibility.
from repro.graph.store import graph_fingerprint
from repro.perf.journal import journal_event
from repro.perf.registry import get_registry
from repro.perf.tracing import span
from repro.rng import freeze_seed
from repro.trees.sampler import TreeSampler

__all__ = [
    "CampaignMeta",
    "CheckpointWriter",
    "save_cloud",
    "load_cloud",
    "load_checkpoint",
    "recover_cloud",
    "resume_cloud",
    "validate_campaign",
    "graph_fingerprint",
    "rotated_paths",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 2
_COMPAT_VERSIONS = (1, 2)

# Fault-injection seams (see repro.util.faults): the atomic-write path
# goes through these module attributes so crash tests can simulate a
# kill mid-write or just before the publishing rename without touching
# the real os module.
_replace: Callable[..., None] = os.replace
_wrap_stream: Callable[[IO[bytes]], IO[bytes]] = lambda fh: fh


@dataclass(frozen=True)
class CampaignMeta:
    """The parameters that determine a campaign's exact state sequence.

    ``done_blocks`` is ``None`` for a normal checkpoint (states
    ``0 .. num_states-1`` are a contiguous prefix of the campaign) and
    a tuple of ``(start, stop, step)`` index blocks for a pool-salvage
    checkpoint, where only those blocks completed before a sibling
    worker crashed (see :func:`repro.parallel.pool.sample_cloud_pool`).

    ``quarantined_blocks`` records blocks the self-healing supervisor
    (:mod:`repro.parallel.supervisor`) gave up on after exhausting its
    retry ladder.  They are never part of ``done_blocks``, so a resume
    re-attempts exactly them; recording them separately lets the resume
    (and operators) see *which* missing blocks were poison rather than
    merely unreached.
    """

    method: str
    kernel: str
    seed: int
    batch_size: int
    store_states: bool
    # Swap-chain stride (method="swap" only); 1 for every other method,
    # and the implicit value of checkpoints written before the chain
    # engine existed.
    swaps_per_state: int = 1
    # Path of the packed GraphStore file the campaign ran against, when
    # it used the zero-copy pool path.  Advisory, not part of resume
    # validation: the graph's identity is already pinned by the
    # checkpoint-level fingerprint, and the store may legitimately live
    # at a different path (or be absent) on the resuming machine.  When
    # the recorded store still exists, the pool resume cross-checks its
    # header fingerprint against the graph before trusting it.
    graph_store: str | None = None
    done_blocks: Tuple[Tuple[int, int, int], ...] | None = None
    quarantined_blocks: Tuple[Tuple[int, int, int], ...] | None = None


# ----------------------------------------------------------------------
# Atomic write + rotation
# ----------------------------------------------------------------------
def _backup_path(path: Path, k: int) -> Path:
    return path.with_name(f"{path.name}.{k}")


def _rotate(path: Path, keep: int) -> None:
    """Shift ``path`` into the backup chain ``path.1 .. path.{keep-1}``."""
    if keep <= 1 or not path.exists():
        return
    for k in range(keep - 2, 0, -1):
        src = _backup_path(path, k)
        if src.exists():
            _replace(src, _backup_path(path, k + 1))
    _replace(path, _backup_path(path, 1))


def rotated_paths(path: PathLike) -> list[Path]:
    """The checkpoint path and its existing rotation backups, newest
    first (the primary path is listed even when missing, so callers can
    report it)."""
    return list(_candidates(Path(path)))


def _candidates(path: Path) -> Iterator[Path]:
    yield path
    k = 1
    while True:
        backup = _backup_path(path, k)
        if not backup.exists():
            return
        yield backup
        k += 1


def save_cloud(
    cloud: FrustrationCloud,
    path: PathLike,
    campaign: CampaignMeta | None = None,
    keep: int = 1,
) -> None:
    """Persist the cloud's accumulators to an NPZ checkpoint at *path*.

    The write is atomic: the payload goes to ``<path>.tmp`` first, is
    flushed and fsynced, and only then renamed over *path* — a crash at
    any point leaves the previous checkpoint untouched.  The file lands
    at exactly the requested path (no implicit ``.npz`` suffix is
    appended, unlike bare ``np.savez_compressed``), so ``load_cloud``
    on the same string always finds it.

    ``keep >= 2`` additionally rotates the previous checkpoint to
    ``<path>.1`` (and so on, keeping ``keep`` files total), which lets
    :func:`recover_cloud` fall back past a checkpoint that was damaged
    *after* it was written.
    """
    path = Path(path)
    if keep < 1:
        raise CheckpointError(f"keep must be >= 1, got {keep}")
    if campaign is not None and campaign.store_states != cloud.store_states:
        raise CheckpointError(
            "campaign.store_states disagrees with the cloud being saved"
        )
    with span("checkpoint_write"):
        payload = _payload(cloud, campaign)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as raw:
                fh = _wrap_stream(raw)
                np.savez_compressed(fh, **payload)
                fh.flush()
                os.fsync(raw.fileno())
            _rotate(path, keep)
            _replace(tmp, path)
        except OSError as exc:
            # A raw OSError here is an I/O failure (classically ENOSPC)
            # mid-atomic-write: remove the partial temp file so the
            # rotation chain stays clean, record what happened, and
            # surface the failure as a CheckpointError the campaign
            # layers already know how to degrade on.
            with contextlib.suppress(OSError):
                tmp.unlink()
            kind = "disk_full" if exc.errno == errno.ENOSPC else "io_error"
            get_registry().count(f"checkpoint.{kind}_total", 1)
            journal_event(
                kind, op="checkpoint_write", path=str(path), error=str(exc)
            )
            raise CheckpointError(
                f"checkpoint write to {path} failed: {exc}"
            ) from exc
        registry = get_registry()
        registry.count("checkpoint.writes_total", 1)
        registry.gauge("checkpoint.last_bytes", float(path.stat().st_size))
        journal_event(
            "checkpoint_written",
            path=str(path),
            states=cloud.num_states,
            bytes=path.stat().st_size,
        )


def _payload(
    cloud: FrustrationCloud, campaign: CampaignMeta | None
) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "fingerprint": np.frombuffer(
            graph_fingerprint(cloud.graph).encode("ascii"), dtype=np.uint8
        ),
        "num_vertices": np.array([cloud.graph.num_vertices], dtype=np.int64),
        "num_edges": np.array([cloud.graph.num_edges], dtype=np.int64),
        "num_states": np.array([cloud.num_states], dtype=np.int64),
        "store_states": np.array([int(cloud.store_states)], dtype=np.int64),
        "majority": cloud._majority,
        "majority_sq": cloud._majority_sq,
        "coalition": cloud._coalition,
        "edge_preserved": cloud._edge_preserved,
        "edge_coside": cloud._edge_coside,
        "flip_counts": cloud.flip_counts(),
    }
    metrics = getattr(cloud, "metrics", None)
    if metrics:
        # A 0-d unicode array round-trips through np.load without
        # allow_pickle, keeping the checkpoint pickle-free.
        payload["metrics_json"] = np.array(json.dumps(metrics))
    if cloud.store_states:
        keys = list(cloud._unique.keys())
        payload["unique_signs"] = (
            np.stack([np.frombuffer(k, dtype=np.int8) for k in keys])
            if keys
            else np.empty((0, cloud.graph.num_edges), dtype=np.int8)
        )
        payload["unique_counts"] = np.asarray(
            [cloud._unique[k] for k in keys], dtype=np.int64
        )
    if campaign is not None:
        payload["campaign_method"] = np.array(campaign.method)
        payload["campaign_kernel"] = np.array(campaign.kernel)
        payload["campaign_seed"] = np.array([campaign.seed], dtype=np.int64)
        payload["campaign_batch_size"] = np.array(
            [campaign.batch_size], dtype=np.int64
        )
        payload["campaign_store_states"] = np.array(
            [int(campaign.store_states)], dtype=np.int64
        )
        payload["campaign_swaps_per_state"] = np.array(
            [campaign.swaps_per_state], dtype=np.int64
        )
        if campaign.graph_store is not None:
            payload["campaign_graph_store"] = np.array(campaign.graph_store)
        if campaign.done_blocks is not None:
            payload["campaign_done_blocks"] = np.asarray(
                campaign.done_blocks, dtype=np.int64
            ).reshape(-1, 3)
        if campaign.quarantined_blocks is not None:
            payload["campaign_quarantined_blocks"] = np.asarray(
                campaign.quarantined_blocks, dtype=np.int64
            ).reshape(-1, 3)
    return payload


# ----------------------------------------------------------------------
# Load + validation + recovery
# ----------------------------------------------------------------------
def _scalar(data, key: str, path: Path) -> int:
    try:
        arr = data[key]
    except KeyError as exc:
        raise CheckpointError(
            f"{path} is not a cloud checkpoint: missing {key!r}"
        ) from exc
    if np.size(arr) < 1:
        raise CheckpointError(f"corrupt checkpoint {path}: empty {key!r}")
    return int(np.ravel(arr)[0])


def _array(data, key: str, shape: tuple, dtype, path: Path) -> np.ndarray:
    try:
        arr = data[key]
    except KeyError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: missing array {key!r}"
        ) from exc
    if arr.shape != shape:
        raise CheckpointError(
            f"corrupt checkpoint {path}: {key} has shape {arr.shape}, "
            f"expected {shape} for this graph"
        )
    return np.ascontiguousarray(arr, dtype=dtype)


def _restore(
    data, graph: SignedGraph, path: Path
) -> tuple[FrustrationCloud, CampaignMeta | None]:
    version = _scalar(data, "version", path)
    if version not in _COMPAT_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version} in {path} "
            f"(this build reads versions {_COMPAT_VERSIONS})"
        )
    try:
        stored_fp = bytes(data["fingerprint"]).decode("ascii")
    except KeyError as exc:
        raise CheckpointError(
            f"{path} is not a cloud checkpoint: missing 'fingerprint'"
        ) from exc
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: unreadable fingerprint"
        ) from exc
    if stored_fp != graph_fingerprint(graph):
        raise CheckpointError(
            f"checkpoint {path} was built from a different graph "
            "(fingerprint mismatch)"
        )
    n, m = graph.num_vertices, graph.num_edges
    num_states = _scalar(data, "num_states", path)
    if num_states < 0:
        raise CheckpointError(
            f"corrupt checkpoint {path}: negative num_states {num_states}"
        )
    store_states = bool(_scalar(data, "store_states", path))

    cloud = FrustrationCloud(graph, store_states=store_states)
    cloud._majority = _array(data, "majority", (n,), np.float64, path)
    cloud._majority_sq = _array(data, "majority_sq", (n,), np.float64, path)
    cloud._coalition = _array(data, "coalition", (n,), np.float64, path)
    cloud._edge_preserved = _array(
        data, "edge_preserved", (m,), np.int64, path
    )
    cloud._edge_coside = _array(data, "edge_coside", (m,), np.int64, path)
    # Restore flip counts through the standard doubling buffer so the
    # first post-resume append lands in existing headroom instead of
    # forcing an immediate regrow.
    flips = _array(data, "flip_counts", (num_states,), np.int64, path)
    cloud._append_flip_counts(flips)
    cloud.num_states = num_states
    if store_states:
        try:
            signs = data["unique_signs"]
            counts = data["unique_counts"]
        except KeyError as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: store_states set but "
                f"missing {exc}"
            ) from exc
        if signs.ndim != 2 or signs.shape[1] != m:
            raise CheckpointError(
                f"corrupt checkpoint {path}: unique_signs has shape "
                f"{signs.shape}, expected (k, {m})"
            )
        if counts.shape != (signs.shape[0],):
            raise CheckpointError(
                f"corrupt checkpoint {path}: unique_counts has shape "
                f"{counts.shape}, expected ({signs.shape[0]},)"
            )
        if int(counts.sum()) != num_states:
            raise CheckpointError(
                f"corrupt checkpoint {path}: unique-state counts sum to "
                f"{int(counts.sum())}, expected {num_states}"
            )
        signs = np.ascontiguousarray(signs, dtype=np.int8)
        cloud._unique = {
            signs[i].tobytes(): int(counts[i]) for i in range(len(counts))
        }

    if "metrics_json" in data.files:
        try:
            metrics = json.loads(str(data["metrics_json"][()]))
        except (ValueError, TypeError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: unreadable metrics_json"
            ) from exc
        if not isinstance(metrics, dict):
            raise CheckpointError(
                f"corrupt checkpoint {path}: metrics_json is not an object"
            )
        cloud.metrics = metrics

    meta: CampaignMeta | None = None
    if version >= 2 and "campaign_method" in data.files:
        done_blocks = None
        if "campaign_done_blocks" in data.files:
            blocks = data["campaign_done_blocks"]
            if blocks.ndim != 2 or blocks.shape[1] != 3:
                raise CheckpointError(
                    f"corrupt checkpoint {path}: campaign_done_blocks has "
                    f"shape {blocks.shape}, expected (k, 3)"
                )
            done_blocks = tuple(
                tuple(int(x) for x in row) for row in blocks.tolist()
            )
        quarantined_blocks = None
        if "campaign_quarantined_blocks" in data.files:
            blocks = data["campaign_quarantined_blocks"]
            if blocks.ndim != 2 or blocks.shape[1] != 3:
                raise CheckpointError(
                    f"corrupt checkpoint {path}: campaign_quarantined_blocks "
                    f"has shape {blocks.shape}, expected (k, 3)"
                )
            quarantined_blocks = tuple(
                tuple(int(x) for x in row) for row in blocks.tolist()
            )
        meta = CampaignMeta(
            method=str(data["campaign_method"][()]),
            kernel=str(data["campaign_kernel"][()]),
            seed=_scalar(data, "campaign_seed", path),
            batch_size=_scalar(data, "campaign_batch_size", path),
            store_states=bool(_scalar(data, "campaign_store_states", path)),
            # Checkpoints written before the swap-chain engine carry no
            # swaps_per_state key; their campaigns implicitly used 1.
            swaps_per_state=(
                _scalar(data, "campaign_swaps_per_state", path)
                if "campaign_swaps_per_state" in data.files
                else 1
            ),
            graph_store=(
                str(data["campaign_graph_store"][()])
                if "campaign_graph_store" in data.files
                else None
            ),
            done_blocks=done_blocks,
            quarantined_blocks=quarantined_blocks,
        )
        if meta.store_states != store_states:
            raise CheckpointError(
                f"corrupt checkpoint {path}: campaign metadata disagrees "
                "with the stored accumulators on store_states"
            )
    return cloud, meta


def load_checkpoint(
    path: PathLike, graph: SignedGraph
) -> tuple[FrustrationCloud, CampaignMeta | None]:
    """Restore a checkpoint and its campaign metadata (``None`` for v1
    checkpoints, which predate self-description).

    Every failure mode — missing file, torn/truncated zip, bit-flipped
    payload, wrong graph, wrong array shapes — raises
    :class:`~repro.errors.CheckpointError`.
    """
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            cloud, meta = _restore(data, graph, path)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    cloud.campaign_meta = meta
    return cloud, meta


def load_cloud(path: PathLike, graph: SignedGraph) -> FrustrationCloud:
    """Restore a checkpoint against the graph it was built from.

    Convenience wrapper around :func:`load_checkpoint`; the campaign
    metadata (when present) is attached to the returned cloud as
    ``cloud.campaign_meta`` so :func:`resume_cloud` can validate
    against it.
    """
    cloud, _meta = load_checkpoint(path, graph)
    return cloud


def recover_cloud(
    path: PathLike, graph: SignedGraph
) -> tuple[FrustrationCloud, CampaignMeta | None, Path]:
    """Load the newest loadable checkpoint among *path* and its
    rotation backups (``path.1``, ``path.2``, …).

    Returns ``(cloud, meta, source_path)``.  Raises
    :class:`~repro.errors.CheckpointError` describing every attempted
    file when none loads.
    """
    path = Path(path)
    attempts: list[str] = []
    for candidate in _candidates(path):
        try:
            cloud, meta = load_checkpoint(candidate, graph)
            return cloud, meta, candidate
        except CheckpointError as exc:
            attempts.append(f"{candidate}: {exc}")
    raise CheckpointError(
        f"no loadable checkpoint at {path} or its backups; tried: "
        + " | ".join(attempts)
    )


# ----------------------------------------------------------------------
# Campaign validation + resume
# ----------------------------------------------------------------------
_CAMPAIGN_DEFAULTS = {
    "method": "bfs",
    "kernel": "lockstep",
    "seed": 0,
    "batch_size": 1,
    "store_states": False,
    "swaps_per_state": 1,
}


def validate_campaign(
    stored: CampaignMeta | None,
    *,
    method: str | None = None,
    kernel: str | None = None,
    seed: int | None = None,
    batch_size: int | None = None,
    store_states: bool | None = None,
    swaps_per_state: int | None = None,
) -> dict:
    """Resolve resume parameters against a stored campaign.

    Parameters left ``None`` inherit the stored value (or the
    historical default when the checkpoint has no metadata).  A
    parameter that is explicitly given *and* disagrees with the stored
    campaign raises :class:`~repro.errors.CheckpointError` — resuming
    with a different ``(method, kernel, seed, batch_size,
    swaps_per_state)`` would silently diverge from the original run.
    """
    given = {
        "method": method,
        "kernel": kernel,
        "seed": seed,
        "batch_size": batch_size,
        "store_states": store_states,
        "swaps_per_state": swaps_per_state,
    }
    resolved = {}
    for name, value in given.items():
        stored_value = getattr(stored, name) if stored is not None else None
        if value is None:
            resolved[name] = (
                stored_value if stored is not None else _CAMPAIGN_DEFAULTS[name]
            )
        elif stored is not None and value != stored_value:
            raise CheckpointError(
                f"resume {name}={value!r} does not match the checkpoint's "
                f"campaign {name}={stored_value!r}; resuming would diverge "
                "from the original run (pass matching parameters, or omit "
                "them to inherit the stored campaign)"
            )
        else:
            resolved[name] = value
    return resolved


class CheckpointWriter:
    """Periodic atomic checkpointer bound to one campaign.

    A ``None`` path makes every method a no-op, so campaign drivers can
    call it unconditionally.
    """

    def __init__(
        self,
        path: PathLike | None,
        campaign: CampaignMeta | None = None,
        every: int = 0,
        keep: int = 1,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.campaign = campaign
        self.every = every
        self.keep = keep
        self._since = 0

    def step(self, cloud: FrustrationCloud, new_states: int) -> None:
        """Record *new_states* freshly ingested states; write a rotated
        checkpoint whenever ``every`` of them accumulate."""
        if self.path is None:
            return
        self._since += new_states
        if self.every > 0 and self._since >= self.every:
            self.write(cloud)

    def write(self, cloud: FrustrationCloud) -> None:
        """Write a checkpoint now (atomic, rotated)."""
        if self.path is None:
            return
        save_cloud(cloud, self.path, campaign=self.campaign, keep=self.keep)
        self._since = 0

    final = write


def resume_cloud(
    cloud: FrustrationCloud,
    target_states: int,
    method: str | None = None,
    kernel: str | None = None,
    seed: int | None = None,
    checkpoint_path: PathLike | None = None,
    checkpoint_every: int = 0,
    batch_size: int | None = None,
    keep_checkpoints: int = 1,
    campaign: CampaignMeta | None = None,
    swaps_per_state: int | None = None,
) -> FrustrationCloud:
    """Continue a seeded campaign until ``target_states`` states.

    The next tree index is ``cloud.num_states`` — resuming a
    checkpointed campaign with the same ``(method, kernel, seed,
    batch_size)`` therefore produces exactly the states an
    uninterrupted run would have.  When the cloud came from a v2
    checkpoint (or *campaign* is passed), parameters left ``None``
    inherit the stored campaign and explicit parameters are validated
    against it; a conflict raises
    :class:`~repro.errors.CheckpointError` instead of silently
    diverging.  Optionally re-checkpoints every ``checkpoint_every``
    new states (atomic writes, rotating ``keep_checkpoints`` files).
    ``batch_size > 1`` processes the remaining indices through the
    tree-batched engine (checkpoints then land on batch boundaries).
    """
    stored = campaign if campaign is not None else getattr(
        cloud, "campaign_meta", None
    )
    if stored is not None and stored.done_blocks is not None:
        raise CheckpointError(
            "checkpoint holds salvaged pool blocks, not a contiguous "
            "prefix of the campaign; finish it with "
            "sample_cloud_pool(..., resume_from=...) or the CLI "
            "`cloud --resume --workers`"
        )
    params = validate_campaign(
        stored,
        method=method,
        kernel=kernel,
        seed=seed,
        batch_size=batch_size,
        store_states=cloud.store_states,
        swaps_per_state=swaps_per_state,
    )
    method = params["method"]
    kernel = params["kernel"]
    batch_size = params["batch_size"]
    swaps_per_state = params["swaps_per_state"]
    if batch_size < 1:
        raise ReproError("batch_size must be positive")
    if method != "swap" and batch_size > 1 and kernel not in BATCHED_KERNELS:
        raise EngineError(
            f"kernel {kernel!r} has no batched implementation; use "
            f"batch_size=1 or one of {BATCHED_KERNELS}"
        )
    if target_states < cloud.num_states:
        raise ReproError(
            f"cloud already has {cloud.num_states} states > target {target_states}"
        )
    frozen = freeze_seed(params["seed"])
    meta = CampaignMeta(
        method=method,
        kernel=kernel,
        seed=frozen,
        batch_size=batch_size,
        store_states=cloud.store_states,
        swaps_per_state=swaps_per_state,
    )
    writer = CheckpointWriter(
        checkpoint_path, meta, every=checkpoint_every, keep=keep_checkpoints
    )
    sampler = TreeSampler(
        cloud.graph, method=method, seed=frozen,
        swaps_per_state=swaps_per_state,
    )
    start = cloud.num_states
    while start < target_states:
        count = min(max(batch_size, 1), target_states - start)
        if method == "swap":
            # Chain states are a pure function of (seed, index), so a
            # resume re-enters the chain at index `start` and replays at
            # most segment_length - 1 states to reach it — the states
            # produced are exactly the uninterrupted campaign's.
            from repro.harary.bipartition import sides_from_sign_to_root

            signs, s2r = sampler.swap_states(count, start=start)
            cloud.add_batch(signs, sides_from_sign_to_root(s2r))
        elif count == 1:
            cloud.add_result(
                balance(cloud.graph, sampler.tree(start), kernel=kernel)
            )
        else:
            from repro.core.parity_batch import balance_batch
            from repro.harary.bipartition import sides_from_sign_to_root

            batch = sampler.batch(count, start=start)
            signs, s2r = balance_batch(cloud.graph, batch)
            cloud.add_batch(signs, sides_from_sign_to_root(s2r))
        start += count
        writer.step(cloud, count)
    if checkpoint_path is not None:
        writer.final(cloud)
    cloud.campaign_meta = meta
    return cloud

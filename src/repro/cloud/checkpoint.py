"""Cloud checkpointing: save, load, and resume long campaigns.

A 1000-state campaign on a large graph can run for hours in pure
Python; production runs need to survive restarts.  Because
:class:`FrustrationCloud` is a set of flat accumulators and
:class:`~repro.trees.sampler.TreeSampler` hands out tree *i*
deterministically, checkpointing is exact:

* :func:`save_cloud` writes the accumulators (and, when present, the
  unique-state table) to an NPZ;
* :func:`load_cloud` restores them against the *same* graph (a content
  fingerprint guards against mixing graphs);
* :func:`resume_cloud` continues a seeded campaign from state
  ``cloud.num_states`` onward — the result is bit-identical to an
  uninterrupted run (tested).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.trees.sampler import TreeSampler

__all__ = ["save_cloud", "load_cloud", "resume_cloud", "graph_fingerprint"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def graph_fingerprint(graph: SignedGraph) -> str:
    """Content hash of the graph (structure + signs)."""
    h = hashlib.sha256()
    h.update(graph.indptr.tobytes())
    h.update(graph.edge_u.tobytes())
    h.update(graph.edge_v.tobytes())
    h.update(graph.edge_sign.tobytes())
    return h.hexdigest()


def save_cloud(cloud: FrustrationCloud, path: PathLike) -> None:
    """Persist the cloud's accumulators to an NPZ checkpoint."""
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "fingerprint": np.frombuffer(
            graph_fingerprint(cloud.graph).encode("ascii"), dtype=np.uint8
        ),
        "num_states": np.array([cloud.num_states]),
        "store_states": np.array([int(cloud.store_states)]),
        "majority": cloud._majority,
        "majority_sq": cloud._majority_sq,
        "coalition": cloud._coalition,
        "edge_preserved": cloud._edge_preserved,
        "edge_coside": cloud._edge_coside,
        "flip_counts": cloud.flip_counts(),
    }
    if cloud.store_states:
        keys = list(cloud._unique.keys())
        payload["unique_signs"] = (
            np.stack([np.frombuffer(k, dtype=np.int8) for k in keys])
            if keys
            else np.empty((0, cloud.graph.num_edges), dtype=np.int8)
        )
        payload["unique_counts"] = np.asarray(
            [cloud._unique[k] for k in keys], dtype=np.int64
        )
    np.savez_compressed(path, **payload)


def load_cloud(path: PathLike, graph: SignedGraph) -> FrustrationCloud:
    """Restore a checkpoint against the graph it was built from.

    Raises :class:`ReproError` if the fingerprint does not match (the
    accumulators are meaningless against a different graph).
    """
    with np.load(path) as data:
        try:
            version = int(data["version"][0])
            stored_fp = bytes(data["fingerprint"]).decode("ascii")
        except KeyError as exc:
            raise ReproError(f"not a cloud checkpoint: missing {exc}") from exc
        if version != _FORMAT_VERSION:
            raise ReproError(f"unsupported checkpoint version {version}")
        if stored_fp != graph_fingerprint(graph):
            raise ReproError(
                "checkpoint was built from a different graph "
                "(fingerprint mismatch)"
            )
        cloud = FrustrationCloud(
            graph, store_states=bool(int(data["store_states"][0]))
        )
        cloud.num_states = int(data["num_states"][0])
        cloud._majority = data["majority"].copy()
        cloud._majority_sq = data["majority_sq"].copy()
        cloud._coalition = data["coalition"].copy()
        cloud._edge_preserved = data["edge_preserved"].copy()
        cloud._edge_coside = data["edge_coside"].copy()
        cloud._flip_counts = data["flip_counts"].astype(np.int64).copy()
        cloud._flip_len = len(cloud._flip_counts)
        if cloud.store_states:
            signs = data["unique_signs"]
            counts = data["unique_counts"]
            cloud._unique = {
                signs[i].tobytes(): int(counts[i]) for i in range(len(counts))
            }
    return cloud


def resume_cloud(
    cloud: FrustrationCloud,
    target_states: int,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: int = 0,
    checkpoint_path: PathLike | None = None,
    checkpoint_every: int = 0,
    batch_size: int = 1,
) -> FrustrationCloud:
    """Continue a seeded campaign until ``target_states`` states.

    The next tree index is ``cloud.num_states`` — resuming a
    checkpointed campaign with the same ``(method, seed)`` therefore
    produces exactly the states an uninterrupted run would have.
    Optionally re-checkpoints every ``checkpoint_every`` new states.
    ``batch_size > 1`` processes the remaining indices through the
    tree-batched engine (checkpoints then land on batch boundaries).
    """
    if target_states < cloud.num_states:
        raise ReproError(
            f"cloud already has {cloud.num_states} states > target {target_states}"
        )
    sampler = TreeSampler(cloud.graph, method=method, seed=seed)
    since_save = 0
    start = cloud.num_states
    while start < target_states:
        count = min(max(batch_size, 1), target_states - start)
        if count == 1:
            cloud.add_result(
                balance(cloud.graph, sampler.tree(start), kernel=kernel)
            )
        else:
            from repro.core.parity_batch import balance_batch
            from repro.harary.bipartition import sides_from_sign_to_root

            batch = sampler.batch(count, start=start)
            signs, s2r = balance_batch(cloud.graph, batch)
            cloud.add_batch(signs, sides_from_sign_to_root(s2r))
        start += count
        since_save += count
        if (
            checkpoint_path is not None
            and checkpoint_every > 0
            and since_save >= checkpoint_every
        ):
            save_cloud(cloud, checkpoint_path)
            since_save = 0
    if checkpoint_path is not None:
        save_cloud(cloud, checkpoint_path)
    return cloud

"""Frustration-index computation.

The frustration index L(Σ) — the minimum number of edge-sign switches
to reach balance (§2) — is NP-hard in general.  Three tiers:

* :func:`frustration_index_exact` — exact minimum over all 2^(n−1)
  switching functions, vectorized in chunks; practical to n ≈ 24.
  (Equivalent to Aref et al.'s global optimum for these sizes.)
* :func:`frustration_local_search` — greedy vertex-switching descent
  with restarts; an upper bound for medium graphs.
* ``FrustrationCloud.frustration_upper_bound`` — the best tree-based
  state seen (Alg. 2's byproduct).

All three agree on small graphs (tested); the exact tier is the oracle
that certifies the tree-based states of Alg. 1/3 are *nearest* (their
flip sets are minimal).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator

__all__ = [
    "frustration_of_switching",
    "frustration_index_exact",
    "frustration_local_search",
]

_EXACT_LIMIT = 24


def frustration_of_switching(graph: SignedGraph, s: np.ndarray) -> int:
    """Edges violated by the ±1 switching *s*:
    ``#{(u,v) : sign(u,v) != s[u]*s[v]}``.

    The frustration index is the minimum of this over all ``s``."""
    s = np.asarray(s, dtype=np.int8)
    agree = (
        s[graph.edge_u].astype(np.int16) * s[graph.edge_v].astype(np.int16)
    ).astype(np.int8)
    return int(np.count_nonzero(agree != graph.edge_sign))


def frustration_index_exact(graph: SignedGraph) -> tuple[int, np.ndarray]:
    """Exact frustration index by enumerating switchings.

    Fixes ``s[0] = +1`` (global negation is a symmetry) and sweeps the
    remaining 2^(n−1) assignments in vectorized chunks.  Returns
    ``(L, s_opt)``.

    Raises for graphs with more than 24 vertices — use the local search
    or the cloud bound there.
    """
    n = graph.num_vertices
    if n > _EXACT_LIMIT:
        raise ReproError(
            f"exact frustration enumerates 2^(n-1) switchings; n={n} > {_EXACT_LIMIT}"
        )
    if n == 0:
        return 0, np.empty(0, dtype=np.int8)

    eu = graph.edge_u
    ev = graph.edge_v
    es = graph.edge_sign.astype(np.int8)

    best = graph.num_edges + 1
    best_code = 0
    total = 1 << (n - 1)
    chunk = 1 << 14
    codes = np.arange(total, dtype=np.uint64)
    for lo in range(0, total, chunk):
        block = codes[lo : lo + chunk]
        # bit v-1 of the code is vertex v's switch (vertex 0 fixed +1).
        s = np.ones((len(block), n), dtype=np.int8)
        for v in range(1, n):
            bit = (block >> np.uint64(v - 1)) & np.uint64(1)
            s[:, v] = np.where(bit == 1, -1, 1)
        prod = s[:, eu] * s[:, ev]
        violations = np.count_nonzero(prod != es, axis=1)
        arg = int(violations.argmin())
        if violations[arg] < best:
            best = int(violations[arg])
            best_code = int(block[arg])
    s_opt = np.ones(n, dtype=np.int8)
    for v in range(1, n):
        if (best_code >> (v - 1)) & 1:
            s_opt[v] = -1
    return best, s_opt


def frustration_local_search(
    graph: SignedGraph,
    restarts: int = 8,
    max_passes: int = 100,
    seed: SeedLike = None,
) -> tuple[int, np.ndarray]:
    """Greedy vertex-switching descent (upper bound on L(Σ)).

    From a random ±1 assignment, repeatedly switch any vertex whose
    switch strictly reduces the violation count (computed incrementally
    from per-vertex violation balances) until a local minimum; keep the
    best over ``restarts`` starts.  Each pass is O(m).
    """
    rng = as_generator(seed)
    n, m = graph.num_vertices, graph.num_edges
    src = np.repeat(np.arange(n), np.diff(graph.indptr))

    best = m + 1
    best_s: np.ndarray | None = None
    for _ in range(max(restarts, 1)):
        s = np.where(rng.random(n) < 0.5, -1, 1).astype(np.int8)
        for _pass in range(max_passes):
            # gain[v] = (violated incident) − (satisfied incident):
            # switching v flips the status of every incident edge.
            agree = (
                s[graph.edge_u].astype(np.int16)
                * s[graph.edge_v].astype(np.int16)
            ).astype(np.int8)
            violated = agree != graph.edge_sign
            half_viol = violated[graph.adj_edge]
            viol_deg = np.zeros(n, dtype=np.int64)
            np.add.at(viol_deg, src, half_viol)
            deg = np.diff(graph.indptr)
            gain = 2 * viol_deg - deg  # positive => switching helps
            candidates = np.nonzero(gain > 0)[0]
            if len(candidates) == 0:
                break
            # Switch an independent-ish subset: take the best candidate
            # only (safe, monotone decrease), cheap enough per pass.
            v = int(candidates[np.argmax(gain[candidates])])
            s[v] = -s[v]
        score = frustration_of_switching(graph, s)
        if score < best:
            best = score
            best_s = s.copy()
    assert best_s is not None
    return best, best_s

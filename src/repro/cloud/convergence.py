"""Status-estimate convergence diagnostics (paper future work, §7).

The paper samples 1000 trees per input but defers the question of *how
many samples the status actually needs*.  These tools answer it
empirically for a given graph:

* :func:`status_trajectory` — running status estimates at checkpoints,
  with the max vertex-wise change between consecutive checkpoints (a
  Cauchy-style convergence signal);
* :func:`split_half_agreement` — correlation between the status
  estimates of two disjoint halves of the sample (a split-half
  reliability coefficient: near 1 means the sample size suffices);
* :func:`recommend_sample_size` — doubling search until the split-half
  agreement clears a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike
from repro.trees.sampler import TreeSampler

__all__ = [
    "StatusTrajectory",
    "status_trajectory",
    "split_half_agreement",
    "recommend_sample_size",
]


@dataclass(frozen=True)
class StatusTrajectory:
    """Running status estimates at increasing sample sizes."""

    checkpoints: np.ndarray          # sample sizes
    estimates: np.ndarray            # (len(checkpoints), n) status matrix
    max_step_change: np.ndarray      # max |Δ status| between checkpoints

    @property
    def final(self) -> np.ndarray:
        return self.estimates[-1]

    def converged(self, tolerance: float) -> bool:
        """Whether the last checkpoint-to-checkpoint change is below
        *tolerance* (per vertex, max-norm)."""
        return bool(self.max_step_change[-1] <= tolerance)


def status_trajectory(
    graph: SignedGraph,
    checkpoints: Sequence[int],
    method: str = "bfs",
    seed: SeedLike = 0,
) -> StatusTrajectory:
    """Status estimates after each checkpoint's worth of sampled states.

    Checkpoints must be strictly increasing; states are shared across
    checkpoints (the 50-state estimate extends the 25-state one), so
    the total work equals the largest checkpoint.
    """
    cps = list(checkpoints)
    if not cps or any(b <= a for a, b in zip(cps, cps[1:])) or cps[0] < 1:
        raise ReproError("checkpoints must be strictly increasing and >= 1")

    sampler = TreeSampler(graph, method=method, seed=seed)
    cloud = FrustrationCloud(graph)
    estimates = []
    done = 0
    for cp in cps:
        for i in range(done, cp):
            cloud.add_result(balance(graph, sampler.tree(i)))
        done = cp
        estimates.append(cloud.status())
    est = np.stack(estimates)
    changes = np.empty(len(cps))
    changes[0] = np.inf
    for k in range(1, len(cps)):
        changes[k] = float(np.abs(est[k] - est[k - 1]).max())
    return StatusTrajectory(
        checkpoints=np.asarray(cps, dtype=np.int64),
        estimates=est,
        max_step_change=changes,
    )


def split_half_agreement(
    graph: SignedGraph,
    num_states: int,
    method: str = "bfs",
    seed: SeedLike = 0,
) -> float:
    """Pearson correlation between status estimates from the even- and
    odd-indexed halves of a ``num_states`` sample.

    Values near 1 mean the sample size is large enough that two
    independent half-samples agree; near 0 means the estimates are
    still sampling noise.
    """
    if num_states < 4:
        raise ReproError("need at least 4 states to split")
    sampler = TreeSampler(graph, method=method, seed=seed)
    even = FrustrationCloud(graph)
    odd = FrustrationCloud(graph)
    for i in range(num_states):
        result = balance(graph, sampler.tree(i))
        (even if i % 2 == 0 else odd).add_result(result)
    a, b = even.status(), odd.status()
    if np.allclose(a, a[0]) or np.allclose(b, b[0]):
        # Degenerate (e.g. already-balanced graph): identical constant
        # estimates count as full agreement.
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.corrcoef(a, b)[0, 1])


def recommend_sample_size(
    graph: SignedGraph,
    target_agreement: float = 0.9,
    start: int = 8,
    max_states: int = 512,
    method: str = "bfs",
    seed: SeedLike = 0,
) -> tuple[int, float]:
    """Double the sample size until split-half agreement clears the
    target; returns ``(size, agreement)`` (the size is capped at
    *max_states* even if the target was not reached)."""
    if not 0.0 < target_agreement <= 1.0:
        raise ReproError("target_agreement must be in (0, 1]")
    size = max(start, 4)
    agreement = split_half_agreement(graph, size, method=method, seed=seed)
    while agreement < target_agreement and size < max_states:
        size = min(size * 2, max_states)
        agreement = split_half_agreement(graph, size, method=method, seed=seed)
    return size, agreement

"""Frustration-cloud accumulation (Alg. 2 and §2.2–2.3).

A *frustration cloud* is the multiset of nearest balanced states
reached from sampled (or, for tiny graphs, all) spanning trees.  The
:class:`FrustrationCloud` accumulator consumes one balanced state at a
time and maintains exactly the running statistics the consensus
attributes need — per-vertex majority counts, coalition sizes,
per-edge sign preservation — in O(n + m) memory, so clouds over
thousands of states never store the states themselves (storing unique
states is opt-in for the small-graph experiments that need Fig. 2's
"5 unique states").
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.core.balancer import balance
from repro.core.state import BalanceResult
from repro.errors import NotBalancedError, ReproError
from repro.graph.csr import SignedGraph
from repro.harary.bipartition import (
    HararyBipartition,
    harary_bipartition,
    sides_from_sign_to_root,
)
from repro.perf.compat import Counters, PhaseTimer
from repro.perf.journal import get_journal, journal_event
from repro.perf.registry import collecting, get_registry
from repro.perf.tracing import span
from repro.rng import SeedLike, freeze_seed
from repro.trees.sampler import TreeSampler
from repro.trees.enumeration import all_spanning_trees

__all__ = [
    "FrustrationCloud",
    "sample_cloud",
    "exact_cloud",
    "auto_batch_size",
    "BATCHED_KERNELS",
]

#: Kernels whose balanced states the tree-batched parity engine
#: reproduces bit-for-bit; any other kernel must run with
#: ``batch_size=1`` (requesting it with a batch raises instead of
#: silently substituting a different kernel).
BATCHED_KERNELS = ("lockstep", "parity")


def auto_batch_size(num_vertices: int) -> int:
    """A good default batch size for a graph of *num_vertices*.

    The batched engine's working set is a handful of ``(B, n)`` arrays;
    states/sec climbs with B until those arrays fall out of cache, then
    falls off a cliff (BENCH_cloud.json: 4000 vertices peaks near B=32,
    12000 vertices is already past the cliff at B=64).  Targeting
    ``B * n ≈ 2**17`` flattened slots keeps the working set around a
    megabyte; the result is clamped to the [8, 64] power-of-two range
    so tiny graphs still amortize per-level overhead and huge graphs
    keep a useful batch.
    """
    if num_vertices < 1:
        raise ReproError("num_vertices must be positive")
    b = 2**17 // max(num_vertices, 1)
    b = max(8, min(64, b))
    # Round down to a power of two (stable, cache-friendly shapes).
    return 1 << (b.bit_length() - 1)


@dataclass
class FrustrationCloud:
    """Streaming accumulator over nearest balanced states.

    Parameters
    ----------
    graph:
        The input graph Σ (fixed structure for every state).
    store_states:
        Keep a count per *unique* balanced state (keyed by the sign
        array).  Needed for the Fig. 2 experiment; off by default since
        it costs O(m) per unique state.
    """

    graph: SignedGraph
    store_states: bool = False

    num_states: int = 0
    _majority: np.ndarray = field(init=False, repr=False)
    _majority_sq: np.ndarray = field(init=False, repr=False)
    _coalition: np.ndarray = field(init=False, repr=False)
    _edge_preserved: np.ndarray = field(init=False, repr=False)
    _edge_coside: np.ndarray = field(init=False, repr=False)
    _flip_counts: np.ndarray = field(init=False, repr=False)
    _flip_len: int = field(init=False, repr=False)
    _unique: Dict[bytes, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n, m = self.graph.num_vertices, self.graph.num_edges
        self._majority = np.zeros(n, dtype=np.float64)
        self._majority_sq = np.zeros(n, dtype=np.float64)
        self._coalition = np.zeros(n, dtype=np.float64)
        self._edge_preserved = np.zeros(m, dtype=np.int64)
        self._edge_coside = np.zeros(m, dtype=np.int64)
        # Flip counts live in a doubling preallocated buffer so batch
        # ingestion and long campaigns never pay per-state list growth.
        self._flip_counts = np.zeros(64, dtype=np.int64)
        self._flip_len = 0
        self._unique = {}

    def _append_flip_counts(self, values: np.ndarray) -> None:
        """Append per-state flip counts, doubling capacity as needed."""
        values = np.asarray(values, dtype=np.int64).ravel()
        need = self._flip_len + len(values)
        if need > len(self._flip_counts):
            capacity = max(len(self._flip_counts), 1)
            while capacity < need:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._flip_len] = self._flip_counts[: self._flip_len]
            self._flip_counts = grown
        self._flip_counts[self._flip_len : need] = values
        self._flip_len = need

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_signs(self, signs: np.ndarray) -> HararyBipartition:
        """Fold one balanced state (a length-m sign array) into the cloud.

        Returns the state's Harary bipartition (so callers can reuse it).
        Raises :class:`~repro.errors.NotBalancedError` if *signs* is not
        balanced — the cloud only contains balanced states by definition.
        """
        signs = np.asarray(signs, dtype=np.int8)
        bip = harary_bipartition(self.graph, signs)
        n = self.graph.num_vertices

        delta = bip.in_majority()
        self._majority += delta
        self._majority_sq += delta * delta
        size0, size1 = bip.sizes
        side_size = np.where(bip.side == 0, size0, size1).astype(np.float64)
        if n > 1:
            self._coalition += (side_size - 1.0) / (n - 1.0)
        self._edge_preserved += signs == self.graph.edge_sign
        self._edge_coside += (
            bip.side[self.graph.edge_u] == bip.side[self.graph.edge_v]
        )
        self._append_flip_counts(
            np.array([np.count_nonzero(signs != self.graph.edge_sign)])
        )
        if self.store_states:
            key = signs.tobytes()
            self._unique[key] = self._unique.get(key, 0) + 1
        self.num_states += 1
        return bip

    def add_result(self, result: BalanceResult) -> HararyBipartition:
        """Fold a :class:`BalanceResult` into the cloud."""
        return self.add_signs(result.signs)

    def add_batch(
        self, signs: np.ndarray, sides: np.ndarray | None = None
    ) -> None:
        """Fold B balanced states at once with matrix reductions.

        Parameters
        ----------
        signs:
            ``(B, m)`` int8 stack of balanced sign arrays (one state
            per row).
        sides:
            Optional ``(B, n)`` stack of Harary sides matching *signs*
            (e.g. from :func:`~repro.harary.bipartition.sides_from_sign_to_root`
            on the batched parity output).  When omitted, each row goes
            through :meth:`add_signs` and its bipartition oracle.

        The accumulator updates are single ``sum(axis=0)`` reductions
        over the batch, so the cloud after ``add_batch`` is exactly the
        cloud after B sequential :meth:`add_signs` calls in row order.
        Raises :class:`~repro.errors.NotBalancedError` if any row's
        signs are inconsistent with its sides (every positive edge must
        stay inside a side, every negative edge must cross).
        """
        signs = np.asarray(signs, dtype=np.int8)
        if signs.ndim != 2 or signs.shape[1] != self.graph.num_edges:
            raise ReproError(
                f"sign batch has shape {signs.shape}, expected "
                f"(B, {self.graph.num_edges})"
            )
        if sides is None:
            for row in signs:
                self.add_signs(row)
            return
        sides = np.asarray(sides, dtype=np.int8)
        num_new, n = sides.shape
        if sides.shape != (len(signs), self.graph.num_vertices):
            raise ReproError(
                f"side batch has shape {sides.shape}, expected "
                f"({len(signs)}, {self.graph.num_vertices})"
            )

        coside = sides[:, self.graph.edge_u] == sides[:, self.graph.edge_v]
        if np.any((signs > 0) != coside):
            b = int(np.nonzero(((signs > 0) != coside).any(axis=1))[0][0])
            raise NotBalancedError(
                f"state {b} of the batch is not balanced under its sides"
            )

        size1 = sides.sum(axis=1, dtype=np.int64)
        size0 = n - size1
        # majority side per state: 0, 1, or -1 on ties (δ = 0.5 for all).
        maj = np.where(size0 > size1, 0, np.where(size1 > size0, 1, -1))
        delta = (sides == maj[:, None]).astype(np.float64)
        delta[maj == -1] = 0.5
        self._majority += delta.sum(axis=0)
        self._majority_sq += (delta * delta).sum(axis=0)
        if n > 1:
            side_size = np.where(
                sides == 0, size0[:, None], size1[:, None]
            ).astype(np.float64)
            # Accumulate row by row: coalition contributions are inexact
            # fractions, and bit-identity with sequential ingestion
            # requires the same left-to-right addition order (the other
            # accumulators are exact in float64, so batch reductions are
            # order-safe).
            for row in (side_size - 1.0) / (n - 1.0):
                self._coalition += row
        self._edge_preserved += (signs == self.graph.edge_sign).sum(axis=0)
        self._edge_coside += coside.sum(axis=0)
        self._append_flip_counts(
            (signs != self.graph.edge_sign).sum(axis=1, dtype=np.int64)
        )
        if self.store_states:
            for row in signs:
                key = row.tobytes()
                self._unique[key] = self._unique.get(key, 0) + 1
        self.num_states += num_new

    # ------------------------------------------------------------------
    # Attributes (defined in §2.3 / the frustration-cloud paper [33])
    # ------------------------------------------------------------------
    def _require_states(self) -> None:
        if self.num_states == 0:
            raise ReproError("the cloud is empty; add states first")

    def status(self) -> np.ndarray:
        """Per-vertex status (§2.3): mean of δ_T(v) over the states,
        where δ is 1 in the larger bipartition, 0.5 on ties, 0 else."""
        self._require_states()
        return self._majority / self.num_states

    def influence(self) -> np.ndarray:
        """Per-vertex influence: the expected fraction of the *other*
        vertices that share v's side of the bipartition.

        Interpretation note (documented substitution): the cloud paper
        [33] derives several attributes from the bipartitions; the
        exact formula is not reproduced in the SC paper, so we use the
        natural "expected coalition size" — it is 0.5-centred, spreads
        vertices vertically in the Fig. 5 status–influence plane, and
        is monotone in how often large groups side with v.
        """
        self._require_states()
        return self._coalition / self.num_states

    def edge_agreement(self) -> np.ndarray:
        """Per-edge agreement: fraction of states preserving the edge's
        original sentiment (never-flipped edges score 1.0)."""
        self._require_states()
        return self._edge_preserved / self.num_states

    def vertex_agreement(self) -> np.ndarray:
        """Per-vertex agreement: mean agreement of incident edges."""
        self._require_states()
        edge_agree = self.edge_agreement()
        n = self.graph.num_vertices
        total = np.zeros(n, dtype=np.float64)
        half_agree = edge_agree[self.graph.adj_edge]
        src = np.repeat(np.arange(n), self.graph.degrees)
        np.add.at(total, src, half_agree)
        deg = self.graph.degrees
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(deg > 0, total / np.maximum(deg, 1), 0.0)
        return out

    def edge_coside(self) -> np.ndarray:
        """Per-edge co-side probability: fraction of states in which the
        edge's endpoints land on the same side of the Harary bipartition.

        This is the edge-level consensus signal the community metrics in
        :mod:`repro.cloud.metrics` build on: a positive edge whose
        endpoints keep ending up on opposite sides marks a contested
        relationship.
        """
        self._require_states()
        return self._edge_coside / self.num_states

    def status_volatility(self) -> np.ndarray:
        """Per-vertex variance of the majority-membership score δ_T(v)
        across states — 0 for vertices always (or never) in the
        majority, maximal (0.25) for coin-flip vertices."""
        self._require_states()
        mean = self._majority / self.num_states
        mean_sq = self._majority_sq / self.num_states
        return np.maximum(mean_sq - mean * mean, 0.0)

    def frustration_upper_bound(self) -> int:
        """Minimum flip count over the sampled states — an upper bound
        on (and for exhaustive clouds, equal to) the frustration index
        L(Σ) *restricted to tree-based nearest states*."""
        self._require_states()
        return int(self._flip_counts[: self._flip_len].min())

    def flip_counts(self) -> np.ndarray:
        """Flip count of every ingested state, in ingestion order."""
        return self._flip_counts[: self._flip_len].copy()

    def merge(self, other: "FrustrationCloud") -> None:
        """Fold another cloud over the *same* graph into this one.

        This is the reduction step of the parallel drivers: per-worker
        clouds accumulate independently and merge at the end, giving
        results identical to a single sequential cloud over the union
        of their states.
        """
        from repro.graph.validation import assert_same_structure

        assert_same_structure(self.graph, other.graph)
        if self.store_states != other.store_states:
            raise ReproError("cannot merge clouds with different store_states")
        self._majority += other._majority
        self._majority_sq += other._majority_sq
        self._coalition += other._coalition
        self._edge_preserved += other._edge_preserved
        self._edge_coside += other._edge_coside
        self._append_flip_counts(other.flip_counts())
        if self.store_states:
            for key, count in other._unique.items():
                self._unique[key] = self._unique.get(key, 0) + count
        self.num_states += other.num_states

    def unique_states(self) -> Dict[bytes, int]:
        """Multiplicity per unique balanced state (requires
        ``store_states=True``)."""
        if not self.store_states:
            raise ReproError("cloud was built with store_states=False")
        return dict(self._unique)

    @property
    def num_unique_states(self) -> int:
        """Number of distinct balanced states seen."""
        if not self.store_states:
            raise ReproError("cloud was built with store_states=False")
        return len(self._unique)


def sample_cloud(
    graph: SignedGraph,
    num_states: int,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = None,
    store_states: bool = False,
    timers: PhaseTimer | None = None,
    batch_size: int | str = 1,
    counters: Counters | None = None,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    keep_checkpoints: int = 1,
    swaps_per_state: int = 1,
    graph_store=None,
) -> FrustrationCloud:
    """Alg. 2: sample ``num_states`` spanning trees, balance each, and
    accumulate the Harary bipartitions into a cloud.

    ``graph_store`` (a path or an open
    :class:`~repro.graph.store.GraphStore`) records the packed store
    file the campaign's graph came from in its checkpoint metadata, so
    pool resumes can cross-check the store; the sequential engine
    itself reads *graph* (pass ``store.graph()`` to sample directly
    off the mapping).

    ``batch_size > 1`` switches to the tree-batched engine: each
    iteration samples a batch of trees with the stacked BFS kernels,
    balances all of them with one batched parity pass, derives the
    Harary sides in O(n) per state from the sign-to-root vectors, and
    folds the whole batch into the cloud with matrix reductions.  The
    result is attribute-for-attribute identical to ``batch_size=1``
    with the same seed (the batched sampler is bit-identical per tree
    index); only the per-state timing/counter breakdown differs, since
    batching has no labeling phase.  Kernels outside
    :data:`BATCHED_KERNELS` have no batched implementation and raise
    when requested with a batch.  ``batch_size="auto"`` picks
    :func:`auto_batch_size` for the graph.

    ``method="swap"`` runs the incremental swap-chain engine
    (:mod:`repro.trees.swap_chain`): tree ``k+1`` is derived from tree
    ``k`` by ``swaps_per_state`` cut/link edge swaps, and both the
    balanced signs and the Harary sides are read straight off the
    chain's delta state — no labeling pass, no parity kernel.  Swap
    clouds are deterministic in the seed but *statistically* (not
    bit-for-bit) equivalent to BFS clouds; see EXPERIMENTS.md.

    ``checkpoint_path`` writes a self-describing crash-safe checkpoint
    (atomic write, rotating ``keep_checkpoints`` files) every
    ``checkpoint_every`` states and once at the end, embedding the
    campaign parameters so :func:`repro.cloud.checkpoint.resume_cloud`
    can validate a later resume against them.
    """
    if batch_size == "auto":
        batch_size = auto_batch_size(graph.num_vertices)
    if not isinstance(batch_size, int) or batch_size < 1:
        raise ReproError("batch_size must be a positive int or 'auto'")
    if swaps_per_state < 1:
        raise ReproError("swaps_per_state must be positive")
    # The swap chain produces balanced states directly (no kernel runs),
    # so the batched-kernel restriction only applies to tree methods
    # that go through the parity engine.
    if method != "swap" and batch_size > 1 and kernel not in BATCHED_KERNELS:
        from repro.errors import EngineError

        raise EngineError(
            f"kernel {kernel!r} has no batched implementation; use "
            f"batch_size=1 or one of {BATCHED_KERNELS}"
        )
    frozen = freeze_seed(seed)
    sampler = TreeSampler(
        graph, method=method, seed=frozen, swaps_per_state=swaps_per_state
    )
    cloud = FrustrationCloud(graph, store_states=store_states)
    # Phase timing flows through the metrics registry spans since PR 4;
    # a legacy PhaseTimer is honoured when a caller passes one, but none
    # is allocated by default.
    phase = (
        timers.phase
        if timers is not None
        else (lambda _name: contextlib.nullcontext())
    )
    journal_event(
        "campaign_started",
        driver="sequential",
        num_states=num_states,
        method=method,
        kernel=kernel,
        seed=frozen,
        batch_size=batch_size,
        swaps_per_state=swaps_per_state,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
    )
    # Convergence snapshots: ~16 per campaign, only when journaling.
    snap_every = max(1, num_states // 16)
    writer = None
    if checkpoint_path is not None:
        from repro.cloud.checkpoint import CampaignMeta, CheckpointWriter

        store_path = None
        if graph_store is not None:
            store_path = str(getattr(graph_store, "path", graph_store))
        writer = CheckpointWriter(
            checkpoint_path,
            CampaignMeta(
                method=method,
                kernel=kernel,
                seed=frozen,
                batch_size=batch_size,
                store_states=store_states,
                swaps_per_state=swaps_per_state,
                graph_store=store_path,
            ),
            every=checkpoint_every,
            keep=keep_checkpoints,
        )
    with collecting() as metrics, span("campaign"):
        if method == "swap":
            # Delta path: the chain emits tree_swap / delta_relabel
            # spans internally; each state's balanced signs and Harary
            # sides come straight off the chain's s2r, so there is no
            # labeling phase and no parity kernel to time.
            for start in range(0, num_states, batch_size):
                count = min(batch_size, num_states - start)
                with phase("tree_generation"), span("tree_sample"):
                    signs, s2r = sampler.swap_states(count, start=start)
                with phase("harary_and_status"), span("harary"):
                    cloud.add_batch(signs, sides_from_sign_to_root(s2r))
                if writer is not None:
                    writer.step(cloud, count)
                if get_journal() is not None:
                    journal_event(
                        "convergence",
                        states=cloud.num_states,
                        frustration_upper_bound=cloud.frustration_upper_bound(),
                    )
        elif batch_size == 1:
            for i in range(num_states):
                with phase("tree_generation"), span("tree_sample"):
                    tree = sampler.tree(i)
                result = balance(
                    graph, tree, kernel=kernel, timers=timers,
                    counters=counters,
                )
                with phase("harary_and_status"), span("harary"):
                    cloud.add_result(result)
                if writer is not None:
                    writer.step(cloud, 1)
                if get_journal() is not None and (i + 1) % snap_every == 0:
                    journal_event(
                        "convergence",
                        states=cloud.num_states,
                        frustration_upper_bound=cloud.frustration_upper_bound(),
                    )
        else:
            from repro.core.parity_batch import balance_batch

            for start in range(0, num_states, batch_size):
                count = min(batch_size, num_states - start)
                with phase("tree_generation"), span("tree_sample"):
                    batch = sampler.batch(
                        count, start=start, counters=counters
                    )
                with phase("cycle_processing"), span("parity_kernel"):
                    signs, s2r = balance_batch(
                        graph, batch, counters=counters
                    )
                with phase("harary_and_status"), span("harary"):
                    cloud.add_batch(signs, sides_from_sign_to_root(s2r))
                if writer is not None:
                    writer.step(cloud, count)
                if get_journal() is not None:
                    journal_event(
                        "convergence",
                        states=cloud.num_states,
                        frustration_upper_bound=cloud.frustration_upper_bound(),
                    )
        get_registry().count("cloud.states_total", num_states)
    # Attach this campaign's own metrics window before the final
    # checkpoint so the v2 payload can embed it.
    cloud.metrics = metrics.snapshot()
    if writer is not None:
        writer.final(cloud)
        cloud.campaign_meta = writer.campaign
    journal_event(
        "campaign_completed", driver="sequential", states=cloud.num_states
    )
    return cloud


def exact_cloud(graph: SignedGraph, root: int = 0) -> FrustrationCloud:
    """The exhaustive cloud over *all* spanning trees (tiny graphs only).

    This is how the Fig. 1–3 anchors are computed: 8 trees for the
    example Σ, 5 unique states, status 6/8 for the best-placed vertex.
    """
    cloud = FrustrationCloud(graph, store_states=True)
    for tree in all_spanning_trees(graph, root=root):
        result = balance(graph, tree, kernel="lockstep")
        cloud.add_result(result)
    return cloud

"""Frustration-cloud accumulation (Alg. 2 and §2.2–2.3).

A *frustration cloud* is the multiset of nearest balanced states
reached from sampled (or, for tiny graphs, all) spanning trees.  The
:class:`FrustrationCloud` accumulator consumes one balanced state at a
time and maintains exactly the running statistics the consensus
attributes need — per-vertex majority counts, coalition sizes,
per-edge sign preservation — in O(n + m) memory, so clouds over
thousands of states never store the states themselves (storing unique
states is opt-in for the small-graph experiments that need Fig. 2's
"5 unique states").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.core.balancer import balance
from repro.core.state import BalanceResult
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.harary.bipartition import HararyBipartition, harary_bipartition
from repro.perf.timers import PhaseTimer
from repro.rng import SeedLike
from repro.trees.sampler import TreeSampler
from repro.trees.enumeration import all_spanning_trees

__all__ = ["FrustrationCloud", "sample_cloud", "exact_cloud"]


@dataclass
class FrustrationCloud:
    """Streaming accumulator over nearest balanced states.

    Parameters
    ----------
    graph:
        The input graph Σ (fixed structure for every state).
    store_states:
        Keep a count per *unique* balanced state (keyed by the sign
        array).  Needed for the Fig. 2 experiment; off by default since
        it costs O(m) per unique state.
    """

    graph: SignedGraph
    store_states: bool = False

    num_states: int = 0
    _majority: np.ndarray = field(init=False, repr=False)
    _majority_sq: np.ndarray = field(init=False, repr=False)
    _coalition: np.ndarray = field(init=False, repr=False)
    _edge_preserved: np.ndarray = field(init=False, repr=False)
    _edge_coside: np.ndarray = field(init=False, repr=False)
    _flip_counts: list[int] = field(init=False, repr=False)
    _unique: Dict[bytes, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n, m = self.graph.num_vertices, self.graph.num_edges
        self._majority = np.zeros(n, dtype=np.float64)
        self._majority_sq = np.zeros(n, dtype=np.float64)
        self._coalition = np.zeros(n, dtype=np.float64)
        self._edge_preserved = np.zeros(m, dtype=np.int64)
        self._edge_coside = np.zeros(m, dtype=np.int64)
        self._flip_counts = []
        self._unique = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_signs(self, signs: np.ndarray) -> HararyBipartition:
        """Fold one balanced state (a length-m sign array) into the cloud.

        Returns the state's Harary bipartition (so callers can reuse it).
        Raises :class:`~repro.errors.NotBalancedError` if *signs* is not
        balanced — the cloud only contains balanced states by definition.
        """
        signs = np.asarray(signs, dtype=np.int8)
        bip = harary_bipartition(self.graph, signs)
        n = self.graph.num_vertices

        delta = bip.in_majority()
        self._majority += delta
        self._majority_sq += delta * delta
        size0, size1 = bip.sizes
        side_size = np.where(bip.side == 0, size0, size1).astype(np.float64)
        if n > 1:
            self._coalition += (side_size - 1.0) / (n - 1.0)
        self._edge_preserved += signs == self.graph.edge_sign
        self._edge_coside += (
            bip.side[self.graph.edge_u] == bip.side[self.graph.edge_v]
        )
        self._flip_counts.append(
            int(np.count_nonzero(signs != self.graph.edge_sign))
        )
        if self.store_states:
            key = signs.tobytes()
            self._unique[key] = self._unique.get(key, 0) + 1
        self.num_states += 1
        return bip

    def add_result(self, result: BalanceResult) -> HararyBipartition:
        """Fold a :class:`BalanceResult` into the cloud."""
        return self.add_signs(result.signs)

    # ------------------------------------------------------------------
    # Attributes (defined in §2.3 / the frustration-cloud paper [33])
    # ------------------------------------------------------------------
    def _require_states(self) -> None:
        if self.num_states == 0:
            raise ReproError("the cloud is empty; add states first")

    def status(self) -> np.ndarray:
        """Per-vertex status (§2.3): mean of δ_T(v) over the states,
        where δ is 1 in the larger bipartition, 0.5 on ties, 0 else."""
        self._require_states()
        return self._majority / self.num_states

    def influence(self) -> np.ndarray:
        """Per-vertex influence: the expected fraction of the *other*
        vertices that share v's side of the bipartition.

        Interpretation note (documented substitution): the cloud paper
        [33] derives several attributes from the bipartitions; the
        exact formula is not reproduced in the SC paper, so we use the
        natural "expected coalition size" — it is 0.5-centred, spreads
        vertices vertically in the Fig. 5 status–influence plane, and
        is monotone in how often large groups side with v.
        """
        self._require_states()
        return self._coalition / self.num_states

    def edge_agreement(self) -> np.ndarray:
        """Per-edge agreement: fraction of states preserving the edge's
        original sentiment (never-flipped edges score 1.0)."""
        self._require_states()
        return self._edge_preserved / self.num_states

    def vertex_agreement(self) -> np.ndarray:
        """Per-vertex agreement: mean agreement of incident edges."""
        self._require_states()
        edge_agree = self.edge_agreement()
        n = self.graph.num_vertices
        total = np.zeros(n, dtype=np.float64)
        half_agree = edge_agree[self.graph.adj_edge]
        src = np.repeat(np.arange(n), np.diff(self.graph.indptr))
        np.add.at(total, src, half_agree)
        deg = np.diff(self.graph.indptr)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(deg > 0, total / np.maximum(deg, 1), 0.0)
        return out

    def edge_coside(self) -> np.ndarray:
        """Per-edge co-side probability: fraction of states in which the
        edge's endpoints land on the same side of the Harary bipartition.

        This is the edge-level consensus signal the community metrics in
        :mod:`repro.cloud.metrics` build on: a positive edge whose
        endpoints keep ending up on opposite sides marks a contested
        relationship.
        """
        self._require_states()
        return self._edge_coside / self.num_states

    def status_volatility(self) -> np.ndarray:
        """Per-vertex variance of the majority-membership score δ_T(v)
        across states — 0 for vertices always (or never) in the
        majority, maximal (0.25) for coin-flip vertices."""
        self._require_states()
        mean = self._majority / self.num_states
        mean_sq = self._majority_sq / self.num_states
        return np.maximum(mean_sq - mean * mean, 0.0)

    def frustration_upper_bound(self) -> int:
        """Minimum flip count over the sampled states — an upper bound
        on (and for exhaustive clouds, equal to) the frustration index
        L(Σ) *restricted to tree-based nearest states*."""
        self._require_states()
        return min(self._flip_counts)

    def flip_counts(self) -> np.ndarray:
        """Flip count of every ingested state, in ingestion order."""
        return np.asarray(self._flip_counts, dtype=np.int64)

    def merge(self, other: "FrustrationCloud") -> None:
        """Fold another cloud over the *same* graph into this one.

        This is the reduction step of the parallel drivers: per-worker
        clouds accumulate independently and merge at the end, giving
        results identical to a single sequential cloud over the union
        of their states.
        """
        from repro.graph.validation import assert_same_structure

        assert_same_structure(self.graph, other.graph)
        if self.store_states != other.store_states:
            raise ReproError("cannot merge clouds with different store_states")
        self._majority += other._majority
        self._majority_sq += other._majority_sq
        self._coalition += other._coalition
        self._edge_preserved += other._edge_preserved
        self._edge_coside += other._edge_coside
        self._flip_counts.extend(other._flip_counts)
        if self.store_states:
            for key, count in other._unique.items():
                self._unique[key] = self._unique.get(key, 0) + count
        self.num_states += other.num_states

    def unique_states(self) -> Dict[bytes, int]:
        """Multiplicity per unique balanced state (requires
        ``store_states=True``)."""
        if not self.store_states:
            raise ReproError("cloud was built with store_states=False")
        return dict(self._unique)

    @property
    def num_unique_states(self) -> int:
        """Number of distinct balanced states seen."""
        if not self.store_states:
            raise ReproError("cloud was built with store_states=False")
        return len(self._unique)


def sample_cloud(
    graph: SignedGraph,
    num_states: int,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = None,
    store_states: bool = False,
    timers: PhaseTimer | None = None,
) -> FrustrationCloud:
    """Alg. 2: sample ``num_states`` spanning trees, balance each, and
    accumulate the Harary bipartitions into a cloud."""
    sampler = TreeSampler(graph, method=method, seed=seed)
    cloud = FrustrationCloud(graph, store_states=store_states)
    timers = timers if timers is not None else PhaseTimer()
    for i in range(num_states):
        with timers.phase("tree_generation"):
            tree = sampler.tree(i)
        result = balance(graph, tree, kernel=kernel, timers=timers)
        with timers.phase("harary_and_status"):
            cloud.add_result(result)
    return cloud


def exact_cloud(graph: SignedGraph, root: int = 0) -> FrustrationCloud:
    """The exhaustive cloud over *all* spanning trees (tiny graphs only).

    This is how the Fig. 1–3 anchors are computed: 8 trees for the
    example Σ, 5 unique states, status 6/8 for the best-placed vertex.
    """
    cloud = FrustrationCloud(graph, store_states=True)
    for tree in all_spanning_trees(graph, root=root):
        result = balance(graph, tree, kernel="lockstep")
        cloud.add_result(result)
    return cloud

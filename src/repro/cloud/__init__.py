"""Frustration-cloud layer: Alg. 2 sampling, consensus attributes
(status / influence / agreement), frustration-index computation, and
nearest-state verification.
"""

from repro.cloud.cloud import (
    BATCHED_KERNELS,
    FrustrationCloud,
    exact_cloud,
    sample_cloud,
)
from repro.cloud.convergence import (
    StatusTrajectory,
    recommend_sample_size,
    split_half_agreement,
    status_trajectory,
)
from repro.cloud.branch_bound import frustration_branch_bound
from repro.cloud.checkpoint import (
    CampaignMeta,
    CheckpointWriter,
    graph_fingerprint,
    load_checkpoint,
    load_cloud,
    recover_cloud,
    resume_cloud,
    save_cloud,
    validate_campaign,
)
from repro.cloud.export import (
    edge_attribute_table,
    vertex_attribute_table,
    write_edge_csv,
    write_vertex_csv,
)
from repro.cloud.frustration import (
    frustration_index_exact,
    frustration_local_search,
    frustration_of_switching,
)
from repro.cloud.metrics import (
    consensus_communities,
    edge_controversy,
    polarization,
    state_diversity,
)
from repro.cloud.nearest import flip_set, is_nearest_state
from repro.cloud.weighted import (
    sample_min_weight_state,
    weighted_flip_cost,
    weighted_frustration_exact,
    weighted_frustration_local_search,
    weighted_frustration_of_switching,
)

__all__ = [
    "BATCHED_KERNELS",
    "FrustrationCloud",
    "sample_cloud",
    "exact_cloud",
    "frustration_index_exact",
    "frustration_branch_bound",
    "frustration_local_search",
    "frustration_of_switching",
    "is_nearest_state",
    "flip_set",
    "StatusTrajectory",
    "status_trajectory",
    "split_half_agreement",
    "recommend_sample_size",
    "consensus_communities",
    "state_diversity",
    "polarization",
    "edge_controversy",
    "weighted_flip_cost",
    "weighted_frustration_of_switching",
    "weighted_frustration_exact",
    "weighted_frustration_local_search",
    "sample_min_weight_state",
    "save_cloud",
    "load_cloud",
    "load_checkpoint",
    "recover_cloud",
    "resume_cloud",
    "validate_campaign",
    "CampaignMeta",
    "CheckpointWriter",
    "graph_fingerprint",
    "vertex_attribute_table",
    "edge_attribute_table",
    "write_vertex_csv",
    "write_edge_csv",
]

"""Weighted frustration (extension).

Real sentiment data carries magnitudes (vote strength, rating distance
from neutral).  The balance machinery is weight-agnostic — nearest
states depend only on signs — but the *cost* of a state naturally
generalizes to the total weight of switched edges, and the frustration
index to the minimum-weight switching.  This module provides the
weighted analogs of :mod:`repro.cloud.frustration` plus a sampler that
picks the lightest state out of a cloud.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import balance
from repro.errors import GraphFormatError, ReproError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.trees.sampler import TreeSampler

__all__ = [
    "weighted_flip_cost",
    "weighted_frustration_of_switching",
    "weighted_frustration_exact",
    "weighted_frustration_local_search",
    "sample_min_weight_state",
]

_EXACT_LIMIT = 24


def _check_weights(graph: SignedGraph, weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise GraphFormatError(
            f"weights must have shape ({graph.num_edges},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise GraphFormatError("edge weights must be non-negative")
    return weights


def weighted_flip_cost(
    graph: SignedGraph, weights: np.ndarray, signs: np.ndarray
) -> float:
    """Total weight of the edges whose sign differs from the input."""
    weights = _check_weights(graph, weights)
    signs = np.asarray(signs, dtype=np.int8)
    return float(weights[signs != graph.edge_sign].sum())


def weighted_frustration_of_switching(
    graph: SignedGraph, weights: np.ndarray, s: np.ndarray
) -> float:
    """Weight of the edges violated by the ±1 switching *s*."""
    weights = _check_weights(graph, weights)
    s = np.asarray(s, dtype=np.int8)
    agree = (
        s[graph.edge_u].astype(np.int16) * s[graph.edge_v].astype(np.int16)
    ).astype(np.int8)
    return float(weights[agree != graph.edge_sign].sum())


def weighted_frustration_exact(
    graph: SignedGraph, weights: np.ndarray
) -> tuple[float, np.ndarray]:
    """Exact minimum-weight switching by enumeration (n ≤ 24)."""
    weights = _check_weights(graph, weights)
    n = graph.num_vertices
    if n > _EXACT_LIMIT:
        raise ReproError(
            f"exact weighted frustration enumerates 2^(n-1); n={n} > {_EXACT_LIMIT}"
        )
    if n == 0:
        return 0.0, np.empty(0, dtype=np.int8)
    eu, ev = graph.edge_u, graph.edge_v
    es = graph.edge_sign.astype(np.int8)

    best = float(weights.sum()) + 1.0
    best_code = 0
    total = 1 << (n - 1)
    chunk = 1 << 13
    for lo in range(0, total, chunk):
        block = np.arange(lo, min(lo + chunk, total), dtype=np.uint64)
        s = np.ones((len(block), n), dtype=np.int8)
        for v in range(1, n):
            bit = (block >> np.uint64(v - 1)) & np.uint64(1)
            s[:, v] = np.where(bit == 1, -1, 1)
        violated = (s[:, eu] * s[:, ev]) != es
        costs = violated @ weights
        arg = int(costs.argmin())
        if costs[arg] < best:
            best = float(costs[arg])
            best_code = int(block[arg])
    s_opt = np.ones(n, dtype=np.int8)
    for v in range(1, n):
        if (best_code >> (v - 1)) & 1:
            s_opt[v] = -1
    return best, s_opt


def weighted_frustration_local_search(
    graph: SignedGraph,
    weights: np.ndarray,
    restarts: int = 8,
    max_passes: int = 100,
    seed: SeedLike = None,
) -> tuple[float, np.ndarray]:
    """Greedy weighted vertex-switching descent (upper bound)."""
    weights = _check_weights(graph, weights)
    rng = as_generator(seed)
    n = graph.num_vertices
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    half_w = weights[graph.adj_edge]

    best = float(weights.sum()) + 1.0
    best_s: np.ndarray | None = None
    for _ in range(max(restarts, 1)):
        s = np.where(rng.random(n) < 0.5, -1, 1).astype(np.int8)
        for _pass in range(max_passes):
            agree = (
                s[graph.edge_u].astype(np.int16)
                * s[graph.edge_v].astype(np.int16)
            ).astype(np.int8)
            violated = agree != graph.edge_sign
            half_viol = violated[graph.adj_edge]
            viol_w = np.zeros(n)
            np.add.at(viol_w, src, half_w * half_viol)
            tot_w = np.zeros(n)
            np.add.at(tot_w, src, half_w)
            gain = 2 * viol_w - tot_w
            candidates = np.nonzero(gain > 1e-12)[0]
            if len(candidates) == 0:
                break
            v = int(candidates[np.argmax(gain[candidates])])
            s[v] = -s[v]
        score = weighted_frustration_of_switching(graph, weights, s)
        if score < best:
            best = score
            best_s = s.copy()
    assert best_s is not None
    return best, best_s


def sample_min_weight_state(
    graph: SignedGraph,
    weights: np.ndarray,
    num_states: int,
    method: str = "bfs",
    seed: SeedLike = 0,
) -> tuple[float, np.ndarray]:
    """Lightest nearest balanced state among ``num_states`` tree samples.

    Returns ``(cost, signs)``.  Because tree states are nearest but not
    globally minimum-weight, this is an upper bound on the weighted
    frustration index — typically tight for small graphs (tested).
    """
    weights = _check_weights(graph, weights)
    if num_states < 1:
        raise ReproError("num_states must be positive")
    sampler = TreeSampler(graph, method=method, seed=seed)
    best_cost = float("inf")
    best_signs: np.ndarray | None = None
    for i in range(num_states):
        result = balance(graph, sampler.tree(i))
        cost = weighted_flip_cost(graph, weights, result.signs)
        if cost < best_cost:
            best_cost = cost
            best_signs = result.signs
    assert best_signs is not None
    return best_cost, best_signs

"""Exporting consensus attributes.

Downstream analyses (notebooks, BI pipelines) consume the per-vertex
and per-edge attributes as flat tables; these helpers materialize them
from a :class:`FrustrationCloud` with optional original-id remapping
(for clouds computed on an extracted largest component).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.errors import ReproError

__all__ = [
    "vertex_attribute_table",
    "edge_attribute_table",
    "write_vertex_csv",
    "write_edge_csv",
]

PathLike = Union[str, Path]


def vertex_attribute_table(
    cloud: FrustrationCloud,
    original_ids: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Per-vertex attributes as named columns.

    Columns: ``vertex`` (original ids when given), ``status``,
    ``influence``, ``agreement``, ``volatility``.
    """
    n = cloud.graph.num_vertices
    ids = (
        np.asarray(original_ids, dtype=np.int64)
        if original_ids is not None
        else np.arange(n, dtype=np.int64)
    )
    if ids.shape != (n,):
        raise ReproError(f"original_ids must have length {n}")
    return {
        "vertex": ids,
        "status": cloud.status(),
        "influence": cloud.influence(),
        "agreement": cloud.vertex_agreement(),
        "volatility": cloud.status_volatility(),
    }


def edge_attribute_table(
    cloud: FrustrationCloud,
    original_ids: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Per-edge attributes as named columns.

    Columns: ``u``/``v`` (original ids when given), ``sign``,
    ``agreement`` (original sign preserved), ``coside``, ``controversy``.
    """
    from repro.cloud.metrics import edge_controversy

    graph = cloud.graph
    ids = (
        np.asarray(original_ids, dtype=np.int64)
        if original_ids is not None
        else np.arange(graph.num_vertices, dtype=np.int64)
    )
    if ids.shape != (graph.num_vertices,):
        raise ReproError(f"original_ids must have length {graph.num_vertices}")
    return {
        "u": ids[graph.edge_u],
        "v": ids[graph.edge_v],
        "sign": graph.edge_sign.astype(np.int64),
        "agreement": cloud.edge_agreement(),
        "coside": cloud.edge_coside(),
        "controversy": edge_controversy(cloud),
    }


def _write_csv(table: dict[str, np.ndarray], path: PathLike) -> None:
    cols = list(table)
    arrays = [table[c] for c in cols]
    length = len(arrays[0])
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(cols) + "\n")
        for i in range(length):
            cells = []
            for arr in arrays:
                x = arr[i]
                cells.append(
                    str(int(x)) if np.issubdtype(arr.dtype, np.integer)
                    else f"{float(x):.6f}"
                )
            fh.write(",".join(cells) + "\n")


def write_vertex_csv(
    cloud: FrustrationCloud,
    path: PathLike,
    original_ids: np.ndarray | None = None,
) -> None:
    """Write the per-vertex attribute table as CSV."""
    _write_csv(vertex_attribute_table(cloud, original_ids), path)


def write_edge_csv(
    cloud: FrustrationCloud,
    path: PathLike,
    original_ids: np.ndarray | None = None,
) -> None:
    """Write the per-edge attribute table as CSV."""
    _write_csv(edge_attribute_table(cloud, original_ids), path)

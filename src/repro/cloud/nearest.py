"""Nearest-state verification (the minimality property of §2).

A balanced state is *nearest* when no proper subset of its edge-sign
switches already yields balance.  The theory ([33], restated in §2.1)
guarantees that every tree-based state from Alg. 1 / Alg. 3 is nearest;
:func:`is_nearest_state` verifies that claim by brute force on small
flip sets, serving as the oracle behind the minimality tests.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.verify import is_balanced
from repro.errors import ReproError
from repro.graph.csr import SignedGraph

__all__ = ["is_nearest_state", "flip_set"]

_SUBSET_LIMIT = 18


def flip_set(graph: SignedGraph, signs: np.ndarray) -> np.ndarray:
    """Edge ids whose sign differs between *signs* and the original."""
    signs = np.asarray(signs, dtype=np.int8)
    return np.nonzero(signs != graph.edge_sign)[0]


def is_nearest_state(graph: SignedGraph, signs: np.ndarray) -> bool:
    """Whether *signs* is a *nearest* balanced state of *graph*.

    Checks that (a) the state is balanced and (b) no proper subset of
    its flips is already balanced.  Exponential in the flip count;
    refuses more than 18 flips.
    """
    signs = np.asarray(signs, dtype=np.int8)
    if not is_balanced(graph.with_signs(signs)):
        return False
    flips = flip_set(graph, signs)
    k = len(flips)
    if k > _SUBSET_LIMIT:
        raise ReproError(
            f"nearest-state check enumerates 2^k flip subsets; k={k} > {_SUBSET_LIMIT}"
        )
    base = graph.edge_sign
    for size in range(k):  # proper subsets only
        for subset in combinations(flips.tolist(), size):
            trial = base.copy()
            idx = np.asarray(subset, dtype=np.int64)
            if len(idx):
                trial[idx] = -trial[idx]
            if is_balanced(graph.with_signs(trial)):
                return False
    return True

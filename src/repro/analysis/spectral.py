"""Spectral clustering — the comparator of Figs. 4–5.

The paper contrasts graph-balancing attributes with spectral clustering
on the wiki-Elec network and shows the spectral clusters track
*adjacency* (who interacts with whom) rather than *sentiment*, so they
carry little information about election outcomes.  This module provides
that comparator: normalized-Laplacian spectral embedding (on the
unsigned adjacency, as standard spectral clustering uses) plus k-means,
and a signed-Laplacian variant for completeness.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.cluster.vq import kmeans2

from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator

__all__ = ["spectral_embedding", "spectral_clusters", "cluster_outcome_table"]


def _adjacency(graph: SignedGraph, signed: bool) -> sp.csr_matrix:
    n = graph.num_vertices
    data = graph.edge_sign.astype(np.float64) if signed else np.ones(
        graph.num_edges
    )
    rows = np.concatenate([graph.edge_u, graph.edge_v])
    cols = np.concatenate([graph.edge_v, graph.edge_u])
    vals = np.concatenate([data, data])
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def spectral_embedding(
    graph: SignedGraph,
    dim: int = 10,
    signed: bool = False,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Rows of the ``dim`` smallest-eigenvalue Laplacian eigenvectors.

    ``signed=False`` uses the standard unsigned normalized Laplacian
    (what "spectral clustering" means in the paper's comparison);
    ``signed=True`` uses the signed Laplacian ``D − A_signed``, whose
    small eigenvectors encode near-balanced splits.
    """
    n = graph.num_vertices
    if dim >= n:
        raise ReproError(f"embedding dim {dim} must be < n = {n}")
    adj = _adjacency(graph, signed=signed)
    deg = np.abs(adj).sum(axis=1).A.ravel()
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    d_mat = sp.diags(d_inv_sqrt)
    lap = sp.identity(n) - d_mat @ adj @ d_mat
    # Shift-invert around 0 is fragile on singular L; use smallest
    # algebraic with a modest tolerance instead.
    rng = as_generator(seed)
    v0 = rng.random(n)
    vals, vecs = spla.eigsh(lap, k=dim, which="SA", v0=v0, tol=1e-6)
    order = np.argsort(vals)
    return vecs[:, order]


def spectral_clusters(
    graph: SignedGraph,
    k: int = 10,
    dim: int | None = None,
    signed: bool = False,
    seed: SeedLike = 0,
) -> np.ndarray:
    """K-means labels over the spectral embedding (k clusters)."""
    dim = k if dim is None else dim
    emb = spectral_embedding(graph, dim=dim, signed=signed, seed=seed)
    # Row-normalize (Ng–Jordan–Weiss) for stability.
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    emb = emb / np.maximum(norms, 1e-12)
    rng = as_generator(seed)
    _centers, labels = kmeans2(emb, k, minit="++", seed=rng)
    return labels


def cluster_outcome_table(
    labels: np.ndarray, outcome: np.ndarray, mask: np.ndarray | None = None
) -> np.ndarray:
    """Per-cluster (wins, losses) counts — the Fig. 4(b) makeup chart.

    ``outcome`` is +1 (won) / −1 (lost) / 0 (not a candidate); *mask*
    optionally restricts to candidate vertices.
    """
    labels = np.asarray(labels)
    outcome = np.asarray(outcome)
    if mask is not None:
        labels = labels[mask]
        outcome = outcome[mask]
    k = int(labels.max() + 1) if len(labels) else 0
    table = np.zeros((k, 2), dtype=np.int64)
    for c in range(k):
        members = labels == c
        table[c, 0] = int(np.count_nonzero(outcome[members] > 0))
        table[c, 1] = int(np.count_nonzero(outcome[members] < 0))
    return table

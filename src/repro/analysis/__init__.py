"""Application-level analyses: spectral-clustering comparator, the
synthetic wiki-Elec election experiment (Figs. 4–5), and the end-to-end
consensus pipeline.
"""

from repro.analysis.spectral import (
    cluster_outcome_table,
    spectral_clusters,
    spectral_embedding,
)
from repro.analysis.election import (
    Election,
    ElectionReport,
    election_report,
    generate_election,
)
from repro.analysis.clustering_metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
)
from repro.analysis.consensus import ConsensusReport, analyze_consensus
from repro.analysis.sensitivity import (
    SensitivityRow,
    density_sweep,
    negativity_sweep,
)

__all__ = [
    "adjusted_rand_index",
    "normalized_mutual_information",
    "SensitivityRow",
    "density_sweep",
    "negativity_sweep",
    "spectral_embedding",
    "spectral_clusters",
    "cluster_outcome_table",
    "Election",
    "generate_election",
    "ElectionReport",
    "election_report",
    "ConsensusReport",
    "analyze_consensus",
]

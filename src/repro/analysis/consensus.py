"""End-to-end consensus analysis pipeline.

One call from raw edges to the balancing-based attributes: extract the
largest connected component (as the paper does), sample the frustration
cloud, and package status / influence / agreement with summary
statistics.  This is the "application" view of graphB+ — what §6.5
calls computing a metric such as the status of each vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.cloud import FrustrationCloud, sample_cloud
from repro.graph.components import largest_connected_component
from repro.graph.csr import SignedGraph
from repro.perf.compat import PhaseTimer
from repro.rng import SeedLike

__all__ = ["ConsensusReport", "analyze_consensus"]


@dataclass(frozen=True)
class ConsensusReport:
    """Balancing-based consensus attributes of a signed network.

    All arrays are indexed by the vertex ids of ``component`` (the
    largest connected component of the input); ``original_ids`` maps
    back to the input's vertex ids.
    """

    component: SignedGraph
    original_ids: np.ndarray
    num_states: int
    status: np.ndarray
    influence: np.ndarray
    vertex_agreement: np.ndarray
    edge_agreement: np.ndarray
    frustration_upper_bound: int
    timers: PhaseTimer

    def summary(self) -> str:
        """Human-readable digest of the consensus structure."""
        s = self.status
        lines = [
            f"consensus over {self.num_states} nearest balanced states",
            f"  component: {self.component.num_vertices} vertices, "
            f"{self.component.num_edges} edges "
            f"({self.component.num_negative_edges} negative)",
            f"  status:    mean {s.mean():.3f}, "
            f"min {s.min():.3f}, max {s.max():.3f}",
            f"  influence: mean {self.influence.mean():.3f}",
            f"  agreement: mean {self.vertex_agreement.mean():.3f}",
            f"  frustration index <= {self.frustration_upper_bound}",
        ]
        return "\n".join(lines)


def analyze_consensus(
    graph: SignedGraph,
    num_states: int = 100,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = 0,
) -> ConsensusReport:
    """Full pipeline: largest CC → Alg. 2 cloud → attributes."""
    timers = PhaseTimer()
    with timers.phase("largest_component"):
        component, original_ids = largest_connected_component(graph)
    cloud: FrustrationCloud = sample_cloud(
        component,
        num_states,
        method=method,
        kernel=kernel,
        seed=seed,
        timers=timers,
    )
    with timers.phase("attributes"):
        report = ConsensusReport(
            component=component,
            original_ids=original_ids,
            num_states=cloud.num_states,
            status=cloud.status(),
            influence=cloud.influence(),
            vertex_agreement=cloud.vertex_agreement(),
            edge_agreement=cloud.edge_agreement(),
            frustration_upper_bound=cloud.frustration_upper_bound(),
            timers=timers,
        )
    return report

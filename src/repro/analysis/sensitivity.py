"""Sensitivity of graphB+ to graph characteristics (paper future work, §7).

The paper closes with: "we want to quantify how various graph
characteristics, such as sparsity and the percentage of negative signs,
affect the algorithm's performance."  This module runs that study on
controlled Chung-Lu families:

* sweep **density** (average degree) at fixed sign mix, and
* sweep **negative fraction** at fixed density,

measuring, per configuration: cycle count, average cycle length,
on-cycle degree, per-tree cycle work (the serial cost driver), flip
rate (fraction of cycles balanced by switching), and the frustration
cloud's upper bound on the frustration index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.graph.components import largest_connected_component
from repro.graph.generators import chung_lu_signed
from repro.rng import SeedLike, spawn

__all__ = ["SensitivityRow", "density_sweep", "negativity_sweep"]


@dataclass(frozen=True)
class SensitivityRow:
    """Measurements for one generated configuration."""

    parameter: float            # the swept value (avg degree or neg fraction)
    num_vertices: int
    num_edges: int
    num_cycles: int
    avg_cycle_length: float
    avg_on_cycle_degree: float
    cycle_work_per_tree: float  # Σ per-cycle traversal ops
    flip_rate: float            # flips / cycles per tree
    frustration_bound: int


def _measure(
    graph, num_trees: int, seed: SeedLike
) -> tuple[float, float, float, float, int]:
    cloud = FrustrationCloud(graph)
    lengths, degs, work, flips = [], [], [], []
    for i in range(num_trees):
        r = balance(graph, tree=None, seed=spawn(seed, i), collect_stats=True)
        lengths.append(r.stats.avg_length)
        degs.append(float(r.stats.degree_sums.sum() / r.stats.lengths.sum()))
        work.append(
            float(r.stats.lengths.sum() + 0.27 * r.stats.tree_degree_sums.sum())
        )
        flips.append(r.num_flips / max(r.num_cycles, 1))
        cloud.add_result(r)
    return (
        float(np.mean(lengths)),
        float(np.mean(degs)),
        float(np.mean(work)),
        float(np.mean(flips)),
        cloud.frustration_upper_bound(),
    )


def density_sweep(
    avg_degrees: Sequence[float],
    num_vertices: int = 2000,
    negative_fraction: float = 0.2,
    num_trees: int = 3,
    seed: SeedLike = 0,
) -> list[SensitivityRow]:
    """Vary sparsity at a fixed sign mix.

    Denser graphs have more fundamental cycles per tree but *shorter*
    ones (BFS trees get shallower), so per-cycle work drops while total
    work grows roughly with m.
    """
    rows = []
    for k, avg_deg in enumerate(avg_degrees):
        m = int(round(avg_deg * num_vertices))
        g = chung_lu_signed(
            num_vertices, m, negative_fraction=negative_fraction,
            seed=spawn(seed, k),
        )
        sub, _ = largest_connected_component(g)
        length, deg, work, flip, bound = _measure(sub, num_trees, spawn(seed, 1000 + k))
        rows.append(
            SensitivityRow(
                parameter=float(avg_deg),
                num_vertices=sub.num_vertices,
                num_edges=sub.num_edges,
                num_cycles=sub.num_fundamental_cycles,
                avg_cycle_length=length,
                avg_on_cycle_degree=deg,
                cycle_work_per_tree=work,
                flip_rate=flip,
                frustration_bound=bound,
            )
        )
    return rows


def negativity_sweep(
    negative_fractions: Sequence[float],
    num_vertices: int = 2000,
    avg_degree: float = 4.0,
    num_trees: int = 3,
    seed: SeedLike = 0,
) -> list[SensitivityRow]:
    """Vary the percentage of negative signs at fixed density.

    Structure (cycles, lengths, work) is sign-independent — graphB+'s
    running time does not depend on the sign mix — but the *flip rate*
    and frustration grow toward the 50% point and fall back as the
    graph approaches all-negative (bipartite-like) territory.
    """
    rows = []
    base = spawn(seed, 0)
    struct_seed = int(base.integers(0, 2**62))
    for k, frac in enumerate(negative_fractions):
        # Same structure for every fraction: only signs differ.
        m = int(round(avg_degree * num_vertices))
        g = chung_lu_signed(
            num_vertices, m, negative_fraction=frac, seed=struct_seed
        )
        sub, _ = largest_connected_component(g)
        length, deg, work, flip, bound = _measure(sub, num_trees, spawn(seed, 2000 + k))
        rows.append(
            SensitivityRow(
                parameter=float(frac),
                num_vertices=sub.num_vertices,
                num_edges=sub.num_edges,
                num_cycles=sub.num_fundamental_cycles,
                avg_cycle_length=length,
                avg_on_cycle_degree=deg,
                cycle_work_per_tree=work,
                flip_rate=flip,
                frustration_bound=bound,
            )
        )
    return rows

"""Synthetic wiki-Elec experiment (the Figs. 4–5 case study).

The real Wikipedia Requests-for-Adminship dataset (7,115 users, 103,689
signed votes, with recorded promote/refuse outcomes) is not available
offline, so this module generates an election network with the same
causal structure the paper's analysis exploits:

* users belong to interaction *communities* (who votes on whom is
  mostly within-community — this is what spectral clustering picks up,
  since user IDs / adjacency correlate with community);
* each candidate has a latent *merit*; vote signs are driven by merit
  plus community-agreement noise (this is what the balancing-based
  status picks up);
* the recorded outcome is the actual vote tally, so merit → votes →
  outcome, and a network-wide consensus measure should separate
  winners from losers while adjacency clusters should not.

:func:`generate_election` returns the signed graph plus ground truth;
:func:`election_report` runs the full comparison (spectral clusters vs
status/influence) and computes the separation statistics the benchmark
prints in place of Fig. 4/5's scatter plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.cloud import sample_cloud
from repro.graph.build import from_arrays
from repro.graph.components import largest_connected_component
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator

__all__ = ["Election", "generate_election", "ElectionReport", "election_report"]


@dataclass(frozen=True)
class Election:
    """A synthetic election network with ground truth.

    ``outcome`` is +1 won / −1 lost / 0 not-a-candidate, indexed by the
    vertex ids of ``graph``; ``community`` and ``merit`` are the latent
    generator variables (kept for diagnostics, never used by the
    analysis under test).
    """

    graph: SignedGraph
    outcome: np.ndarray
    community: np.ndarray
    merit: np.ndarray

    @property
    def candidates(self) -> np.ndarray:
        return np.nonzero(self.outcome != 0)[0]


def generate_election(
    num_users: int = 1200,
    num_candidates: int = 240,
    votes_per_candidate: float = 40.0,
    num_communities: int = 6,
    merit_weight: float = 4.0,
    community_weight: float = 0.6,
    cross_community_fraction: float = 0.15,
    temporal_ids: bool = False,
    seed: SeedLike = 0,
) -> Election:
    """Generate a wiki-Elec-shaped signed voting network.

    Candidates are the first ``num_candidates`` users.  A vote
    ``voter → candidate`` is positive with probability
    ``sigmoid(merit_weight·(merit − ½) + community_weight·agree)``
    where ``agree`` is +½ inside the voter's community and −½ across.
    The outcome is the sign of the candidate's vote tally.

    ``temporal_ids=True`` assigns communities in (noisy) contiguous
    id blocks, modeling the real dataset's property that user ids are
    issued in temporal order and interaction communities form in waves —
    the structure behind Fig. 4(a)'s observation that spectral clusters
    align with user-id ranges.
    """
    rng = as_generator(seed)
    n = num_users
    if temporal_ids:
        # Contiguous community waves with 10% late joiners mixed in.
        community = (
            np.arange(n) * num_communities // max(n, 1)
        ).astype(np.int64)
        stragglers = rng.random(n) < 0.1
        community[stragglers] = rng.integers(
            0, num_communities, size=int(stragglers.sum())
        )
    else:
        community = rng.integers(0, num_communities, size=n)
    merit = rng.random(n)

    # Voting activity is heavy-tailed like the real data.
    activity = rng.pareto(1.5, size=n) + 1.0
    activity /= activity.sum()

    votes_u: list[np.ndarray] = []
    votes_v: list[np.ndarray] = []
    votes_s: list[np.ndarray] = []
    for c in range(num_candidates):
        k = max(int(rng.poisson(votes_per_candidate)), 3)
        # Voters: mostly from the candidate's community.
        same = community == community[c]
        pool_same = np.nonzero(same)[0]
        pool_other = np.nonzero(~same)[0]
        k_other = int(round(k * cross_community_fraction))
        k_same = k - k_other

        def _draw(pool: np.ndarray, count: int) -> np.ndarray:
            if count <= 0 or len(pool) == 0:
                return np.empty(0, dtype=np.int64)
            w = activity[pool]
            w = w / w.sum()
            return rng.choice(pool, size=min(count, len(pool)), replace=False, p=w)

        voters = np.concatenate([_draw(pool_same, k_same), _draw(pool_other, k_other)])
        voters = voters[voters != c]
        if len(voters) == 0:
            continue
        agree = np.where(community[voters] == community[c], 0.5, -0.5)
        logit = merit_weight * (merit[c] - 0.5) + community_weight * agree
        p_pos = 1.0 / (1.0 + np.exp(-logit))
        signs = np.where(rng.random(len(voters)) < p_pos, 1, -1)
        votes_u.append(voters)
        votes_v.append(np.full(len(voters), c, dtype=np.int64))
        votes_s.append(signs.astype(np.int64))

    u = np.concatenate(votes_u)
    v = np.concatenate(votes_v)
    s = np.concatenate(votes_s)
    graph = from_arrays(u, v, s, num_vertices=n, dedup="last")
    graph, keep = largest_connected_component(graph)

    # Tally outcomes on the original ids, then remap to the LCC.
    tally = np.zeros(n, dtype=np.int64)
    np.add.at(tally, v, s)
    voted_on = np.zeros(n, dtype=bool)
    voted_on[v] = True
    outcome_full = np.where(voted_on, np.where(tally >= 0, 1, -1), 0)

    return Election(
        graph=graph,
        outcome=outcome_full[keep],
        community=community[keep],
        merit=merit[keep],
    )


@dataclass(frozen=True)
class ElectionReport:
    """Separation statistics comparing status vs spectral clustering."""

    status: np.ndarray
    influence: np.ndarray
    spectral_labels: np.ndarray
    outcome: np.ndarray
    status_auc: float          # P(status_winner > status_loser)
    cluster_win_spread: float  # max-min per-cluster win fraction
    mean_status_winners: float
    mean_status_losers: float


def _auc(pos: np.ndarray, neg: np.ndarray) -> float:
    """Probability a random winner outranks a random loser (ties → ½)."""
    if len(pos) == 0 or len(neg) == 0:
        return 0.5
    order = np.argsort(np.concatenate([pos, neg]), kind="stable")
    ranks = np.empty(len(order), dtype=np.float64)
    ranks[order] = np.arange(1, len(order) + 1)
    # Midrank correction for ties.
    allv = np.concatenate([pos, neg])
    sorted_v = np.sort(allv)
    uniq, start = np.unique(sorted_v, return_index=True)
    counts = np.diff(np.append(start, len(sorted_v)))
    mid = start + (counts + 1) / 2.0
    rank_of = dict(zip(uniq.tolist(), mid.tolist()))
    r_pos = np.array([rank_of[x] for x in pos.tolist()])
    return float((r_pos.sum() - len(pos) * (len(pos) + 1) / 2) / (len(pos) * len(neg)))


def election_report(
    election: Election,
    num_states: int = 200,
    k_clusters: int = 10,
    seed: SeedLike = 0,
) -> ElectionReport:
    """Run the Fig. 4/5 comparison on a synthetic election."""
    from repro.analysis.spectral import spectral_clusters

    cloud = sample_cloud(election.graph, num_states, seed=seed)
    status = cloud.status()
    influence = cloud.influence()
    labels = spectral_clusters(election.graph, k=k_clusters, seed=seed)

    cand = election.candidates
    won = cand[election.outcome[cand] > 0]
    lost = cand[election.outcome[cand] < 0]
    auc = _auc(status[won], status[lost])

    # Per-cluster win fraction spread: near zero means clusters are
    # uninformative about outcome (the Fig. 4(b) observation).
    fractions = []
    for c in range(k_clusters):
        members = cand[labels[cand] == c]
        if len(members) < 5:
            continue
        wins = np.count_nonzero(election.outcome[members] > 0)
        fractions.append(wins / len(members))
    spread = (max(fractions) - min(fractions)) if fractions else 0.0

    return ElectionReport(
        status=status,
        influence=influence,
        spectral_labels=labels,
        outcome=election.outcome,
        status_auc=auc,
        cluster_win_spread=float(spread),
        mean_status_winners=float(status[won].mean()) if len(won) else 0.0,
        mean_status_losers=float(status[lost].mean()) if len(lost) else 0.0,
    )

"""Partition-agreement metrics: ARI and NMI, implemented from scratch.

Used to score how well spectral clusters and cloud-derived consensus
communities recover planted structure (the quantitative backbone of the
Figs. 4–5 comparison).  No sklearn in this environment, so both metrics
are implemented directly:

* **Adjusted Rand Index** — pair-counting agreement corrected for
  chance; 1 = identical partitions, ≈0 = random relabeling.
* **Normalized Mutual Information** — information-theoretic overlap
  normalized by the arithmetic mean of the entropies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["adjusted_rand_index", "normalized_mutual_information", "contingency"]


def contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contingency table of two integer labelings of the same items."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ReproError("labelings must be equal-length 1-D arrays")
    if len(a) == 0:
        return np.zeros((0, 0), dtype=np.int64)
    if a.min() < 0 or b.min() < 0:
        raise ReproError("labels must be non-negative")
    ka, kb = int(a.max()) + 1, int(b.max()) + 1
    table = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Adjusted Rand Index between two labelings (1 = identical)."""
    table = contingency(a, b)
    n = int(table.sum())
    if n < 2:
        return 1.0

    def comb2(x):
        x = x.astype(np.float64)
        return x * (x - 1.0) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_rows * sum_cols / total
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0  # both partitions trivial (all-one-cluster etc.)
    return float((sum_cells - expected) / (max_index - expected))


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI between two labelings (arithmetic-mean normalization)."""
    table = contingency(a, b).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 1.0
    p = table / n
    pa = p.sum(axis=1)
    pb = p.sum(axis=0)

    # Sum only over positive cells to avoid 0·log(0/0) noise.
    rows, cols = np.nonzero(p)
    cell = p[rows, cols]
    mi = float((cell * np.log(cell / (pa[rows] * pb[cols]))).sum())

    def entropy(q):
        q = q[q > 0]
        return float(-(q * np.log(q)).sum())

    ha, hb = entropy(pa), entropy(pb)
    denom = (ha + hb) / 2.0
    if denom == 0.0:
        return 1.0  # both partitions trivial
    return float(max(min(mi / denom, 1.0), 0.0))

"""Compressed-sparse-row storage for signed graphs.

The paper stores the single graph copy in CSR form (§3.2.1) and keeps
memory at O(n + m).  We mirror that layout:

* ``indptr``        — ``n + 1`` offsets into the adjacency arrays,
* ``adj_vertex``    — the neighbor of each directed half-edge (``2m``),
* ``adj_edge``      — the *undirected* edge id of each half-edge (``2m``),
* ``edge_u/edge_v`` — endpoint arrays of the ``m`` undirected edges,
* ``edge_sign``     — one ``int8`` sign (+1/−1) per undirected edge.

Signs live on undirected edges so that balancing — which flips a few
edge signs — touches exactly one memory location per flip, and both
directed views of an edge always agree.  A *balanced state* is therefore
just a fresh sign array of length ``m``; the structural arrays are
shared between the input graph and every balanced state derived from
it, matching the paper's single-copy design.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["SignedGraph", "POSITIVE", "NEGATIVE"]

POSITIVE: int = 1
NEGATIVE: int = -1


@dataclass(frozen=True)
class SignedGraph:
    """An undirected signed graph in CSR form.

    Instances are immutable; operations that change signs (balancing)
    return a new sign array or a new :class:`SignedGraph` via
    :meth:`with_signs`.  Construct instances with
    :func:`repro.graph.build.from_edges` rather than directly — the
    builder validates, deduplicates, and sorts the input.
    """

    indptr: np.ndarray
    adj_vertex: np.ndarray
    adj_edge: np.ndarray
    edge_u: np.ndarray
    edge_v: np.ndarray
    edge_sign: np.ndarray

    # ------------------------------------------------------------------
    # Shape & basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self.edge_sign)

    @property
    def num_fundamental_cycles(self) -> int:
        """``m − (n − 1)``: the number of fundamental cycles with respect
        to *any* spanning tree (the graph must be connected for this to
        be meaningful)."""
        return self.num_edges - (self.num_vertices - 1)

    @cached_property
    def degrees(self) -> np.ndarray:
        """Read-only degree array (cached; hot loops index it every
        level, so it is computed once per graph instead of per call)."""
        deg = np.diff(self.indptr)
        deg.setflags(write=False)
        return deg

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of vertex *v*, or the full degree array if ``v is None``."""
        if v is None:
            return self.degrees
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(np.diff(self.indptr).max())

    @property
    def avg_degree(self) -> float:
        """``m / n`` — the paper's Table 1 convention (edges per vertex,
        *not* mean adjacency length which would be ``2m/n``)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    @property
    def num_negative_edges(self) -> int:
        """Number of edges carrying a negative sign."""
        return int(np.count_nonzero(self.edge_sign == NEGATIVE))

    # ------------------------------------------------------------------
    # Adjacency views
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of *v* as a read-only view into the CSR arrays."""
        return self.adj_vertex[self.indptr[v] : self.indptr[v + 1]]

    def incident_edges(self, v: int) -> np.ndarray:
        """Undirected edge ids incident to *v* (view, same order as
        :meth:`neighbors`)."""
        return self.adj_edge[self.indptr[v] : self.indptr[v + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(u, v, sign)`` for every undirected edge."""
        for e in range(self.num_edges):
            yield int(self.edge_u[e]), int(self.edge_v[e]), int(self.edge_sign[e])

    def find_edge(self, u: int, v: int) -> int:
        """Return the undirected edge id of ``{u, v}``.

        Raises :class:`~repro.errors.GraphFormatError` if absent.  Scans
        the shorter adjacency list, so cost is ``O(min(deg u, deg v))``.
        """
        if self.degree(v) < self.degree(u):
            u, v = v, u
        lo, hi = self.indptr[u], self.indptr[u + 1]
        hits = np.nonzero(self.adj_vertex[lo:hi] == v)[0]
        if len(hits) == 0:
            raise GraphFormatError(f"edge {{{u}, {v}}} is not in the graph")
        return int(self.adj_edge[lo + hits[0]])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        try:
            self.find_edge(u, v)
            return True
        except GraphFormatError:
            return False

    def sign_of(self, u: int, v: int) -> int:
        """Sign (+1/−1) of the undirected edge ``{u, v}``."""
        return int(self.edge_sign[self.find_edge(u, v)])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_signs(self, signs: np.ndarray) -> "SignedGraph":
        """A structurally identical graph carrying *signs*.

        The CSR arrays are shared (no copy); only the sign array is
        replaced.  This is how balanced states are materialized.
        """
        signs = np.asarray(signs, dtype=np.int8)
        if signs.shape != self.edge_sign.shape:
            raise GraphFormatError(
                f"sign array has shape {signs.shape}, expected {self.edge_sign.shape}"
            )
        if not np.all(np.abs(signs) == 1):
            raise GraphFormatError("signs must be +1 or -1")
        return replace(self, edge_sign=signs)

    def all_positive(self) -> "SignedGraph":
        """The same structure with every sign set to +1."""
        return self.with_signs(np.ones(self.num_edges, dtype=np.int8))

    def edges_array(self) -> np.ndarray:
        """``(m, 3)`` int64 array of ``(u, v, sign)`` rows (a copy)."""
        out = np.empty((self.num_edges, 3), dtype=np.int64)
        out[:, 0] = self.edge_u
        out[:, 1] = self.edge_v
        out[:, 2] = self.edge_sign
        return out

    # ------------------------------------------------------------------
    # Memory accounting (feeds the Table 4 model in repro.perf.memory)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes held by this instance's arrays (actual, not modeled)."""
        return sum(
            a.nbytes
            for a in (
                self.indptr,
                self.adj_vertex,
                self.adj_edge,
                self.edge_u,
                self.edge_v,
                self.edge_sign,
            )
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SignedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"neg={self.num_negative_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_edges == other.num_edges
            and np.array_equal(self.edge_u, other.edge_u)
            and np.array_equal(self.edge_v, other.edge_v)
            and np.array_equal(self.edge_sign, other.edge_sign)
        )

    def __hash__(self) -> int:
        # Frozen dataclass would try to hash ndarrays; hash the shape
        # plus sign bytes, which is enough for set/dict membership of
        # balanced states over a fixed structure.
        return hash(
            (self.num_vertices, self.num_edges, self.edge_sign.tobytes())
        )

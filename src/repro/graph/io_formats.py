"""Additional interchange formats.

* **Matrix Market** (``.mtx``) — the SuiteSparse collection [11] the
  paper cites distributes signed graphs (e.g. the highland tribes
  network) as coordinate-format symmetric matrices.  We read/write the
  ``coordinate real/integer/pattern symmetric`` subset.
* **KONECT TSV** — the other common distribution format for signed
  networks: a ``% ...`` header followed by ``u v [weight [timestamp]]``
  rows with 1-based vertex ids.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_arrays
from repro.graph.csr import SignedGraph

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_konect",
    "write_konect",
]

PathLike = Union[str, Path]


def _open(path, mode: str):
    if isinstance(path, (str, Path)):
        return open(path, mode, encoding="utf-8"), True
    return path, False


# ----------------------------------------------------------------------
# Matrix Market
# ----------------------------------------------------------------------
def read_matrix_market(
    path: PathLike | _io.TextIOBase, dedup: str = "product"
) -> SignedGraph:
    """Read a symmetric coordinate Matrix Market file as a signed graph.

    Off-diagonal entries become edges whose sign is the sign of the
    stored value (``pattern`` files are all-positive).  Diagonal
    entries (self loops) are ignored, matching the paper's inputs.
    """
    fh, close = _open(path, "r")
    try:
        header = fh.readline().strip().lower()
        if not header.startswith("%%matrixmarket"):
            raise GraphFormatError("missing MatrixMarket header")
        parts = header.split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise GraphFormatError(f"unsupported MatrixMarket header: {header!r}")
        field, symmetry = parts[3], parts[4]
        if field not in ("real", "integer", "pattern"):
            raise GraphFormatError(f"unsupported field type {field!r}")
        if symmetry not in ("symmetric", "general"):
            raise GraphFormatError(f"unsupported symmetry {symmetry!r}")

        # Skip comments, read the size line.
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        dims = line.split()
        if len(dims) < 3:
            raise GraphFormatError(f"bad size line: {line!r}")
        rows, cols, _nnz = int(dims[0]), int(dims[1]), int(dims[2])
        if rows != cols:
            raise GraphFormatError("adjacency matrices must be square")

        us, vs, ws = [], [], []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            i, j = int(toks[0]) - 1, int(toks[1]) - 1
            if i == j:
                continue  # self loop: ignored
            w = 1.0 if field == "pattern" else float(toks[2])
            if w == 0.0:
                continue
            us.append(i)
            vs.append(j)
            ws.append(w)
    finally:
        if close:
            fh.close()

    return from_arrays(
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws),
        num_vertices=rows,
        dedup=dedup,
    )


def write_matrix_market(graph: SignedGraph, path: PathLike) -> None:
    """Write the signed adjacency as ``coordinate integer symmetric``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate integer symmetric\n")
        fh.write(f"% signed graph written by repro {graph!r}\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n")
        for u, v, s in graph.iter_edges():
            # Lower triangle (row >= col) per MM symmetric convention.
            fh.write(f"{v + 1} {u + 1} {s}\n")


# ----------------------------------------------------------------------
# KONECT
# ----------------------------------------------------------------------
def read_konect(
    path: PathLike | _io.TextIOBase, dedup: str = "sum"
) -> SignedGraph:
    """Read a KONECT-style TSV (1-based ids, optional weight column).

    Rows without a weight default to +1; extra columns (timestamps) are
    ignored.  Duplicate votes are resolved by summed sentiment, the
    convention KONECT's signed networks use.
    """
    fh, close = _open(path, "r")
    try:
        us, vs, ws = [], [], []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            toks = line.split()
            if len(toks) < 2:
                raise GraphFormatError(f"line {lineno}: expected 'u v [w]'")
            try:
                u, v = int(toks[0]) - 1, int(toks[1]) - 1
                w = float(toks[2]) if len(toks) >= 3 else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: {exc}") from exc
            if u == v or w == 0.0:
                continue
            us.append(u)
            vs.append(v)
            ws.append(w)
    finally:
        if close:
            fh.close()
    if us and (min(min(us), min(vs)) < 0):
        raise GraphFormatError("KONECT ids must be 1-based")
    return from_arrays(
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws),
        dedup=dedup,
    )


def write_konect(graph: SignedGraph, path: PathLike) -> None:
    """Write ``u v sign`` rows with 1-based ids and a KONECT header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("% sym signed\n")
        fh.write(f"% {graph.num_edges} {graph.num_vertices} {graph.num_vertices}\n")
        for u, v, s in graph.iter_edges():
            fh.write(f"{u + 1}\t{v + 1}\t{s}\n")

"""Graph diameter and eccentricity estimation.

§3.3.1 expects social graphs to have low diameter ("we expect the graph
diameter to be low … there should only be relatively few tree levels"),
and Table 6 confirms it empirically.  These helpers measure it:

* :func:`eccentricity` — exact eccentricity of one vertex (one BFS);
* :func:`double_sweep_diameter` — the classic double-sweep lower bound
  (BFS from an arbitrary vertex, then from the farthest vertex found),
  exact on trees and usually tight on real networks;
* :func:`diameter_bounds` — (lower, upper) from a small sweep sample.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.util.arrays import gather_adjacency

__all__ = ["eccentricity", "double_sweep_diameter", "diameter_bounds"]


def _bfs_levels(graph: SignedGraph, source: int) -> np.ndarray:
    """Unweighted distances from *source* (−1 for unreachable)."""
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        pos, _src = gather_adjacency(graph.indptr, frontier)
        if len(pos) == 0:
            break
        nbrs = graph.adj_vertex[pos]
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        if len(fresh) == 0:
            break
        level += 1
        dist[fresh] = level
        frontier = fresh
    return dist


def eccentricity(graph: SignedGraph, vertex: int) -> int:
    """Largest BFS distance from *vertex* (graph must be connected)."""
    dist = _bfs_levels(graph, vertex)
    if np.any(dist < 0):
        raise DisconnectedGraphError(
            f"vertex {vertex} does not reach the whole graph"
        )
    return int(dist.max())


def double_sweep_diameter(
    graph: SignedGraph, seed: SeedLike = None
) -> int:
    """Double-sweep diameter lower bound (exact on trees).

    BFS from a random vertex, then BFS from the farthest vertex found;
    the second eccentricity is a lower bound on — and in practice very
    often equal to — the diameter.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = as_generator(seed)
    start = int(rng.integers(0, n))
    d1 = _bfs_levels(graph, start)
    if np.any(d1 < 0):
        raise DisconnectedGraphError("graph is not connected")
    far = int(d1.argmax())
    d2 = _bfs_levels(graph, far)
    return int(d2.max())


def diameter_bounds(
    graph: SignedGraph, samples: int = 4, seed: SeedLike = None
) -> tuple[int, int]:
    """(lower, upper) diameter bounds from *samples* double sweeps.

    Lower bound: the best eccentricity seen.  Upper bound: twice the
    smallest eccentricity seen (the radius bound ``diam ≤ 2·rad``).
    """
    n = graph.num_vertices
    if n == 0:
        return 0, 0
    rng = as_generator(seed)
    lower = 0
    upper = 2 * (n - 1)
    for _ in range(max(samples, 1)):
        start = int(rng.integers(0, n))
        dist = _bfs_levels(graph, start)
        if np.any(dist < 0):
            raise DisconnectedGraphError("graph is not connected")
        ecc = int(dist.max())
        lower = max(lower, ecc)
        upper = min(upper, 2 * ecc)
        # Sweep: also try the farthest vertex.
        d2 = _bfs_levels(graph, int(dist.argmax()))
        ecc2 = int(d2.max())
        lower = max(lower, ecc2)
    return lower, max(lower, upper)

"""Graph profiling: degree statistics, power-law fit, sign structure.

Used to check that the synthetic stand-ins really have the shape of
the paper's inputs (heavy-tailed degrees, the published max/average
degrees, the right negative fraction) and exposed through the CLI's
``stats`` output.

The power-law exponent is the discrete maximum-likelihood estimate of
Clauset–Shalizi–Newman: ``α ≈ 1 + n / Σ ln(d_i / (d_min − ½))`` over
degrees ≥ ``d_min``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import SignedGraph

__all__ = [
    "GraphProfile",
    "profile_graph",
    "fit_powerlaw_exponent",
    "degree_percentiles",
    "sign_assortativity",
]


@dataclass(frozen=True)
class GraphProfile:
    """One-stop structural summary of a signed graph."""

    num_vertices: int
    num_edges: int
    num_negative: int
    max_degree: int
    avg_degree: float            # m / n, the Table-1 convention
    mean_adjacency_degree: float  # 2m / n
    degree_p50: float
    degree_p90: float
    degree_p99: float
    powerlaw_alpha: float | None
    sign_assortativity: float

    def render(self) -> str:
        """Multi-line human-readable summary."""
        alpha = "-" if self.powerlaw_alpha is None else f"{self.powerlaw_alpha:.2f}"
        return "\n".join(
            [
                f"vertices {self.num_vertices:,}  edges {self.num_edges:,}  "
                f"negative {self.num_negative:,} "
                f"({self.num_negative / max(self.num_edges, 1):.1%})",
                f"degree: max {self.max_degree:,}  avg(m/n) {self.avg_degree:.2f}  "
                f"mean(2m/n) {self.mean_adjacency_degree:.2f}",
                f"degree percentiles: p50 {self.degree_p50:.0f}  "
                f"p90 {self.degree_p90:.0f}  p99 {self.degree_p99:.0f}",
                f"power-law alpha (MLE): {alpha}",
                f"sign assortativity: {self.sign_assortativity:+.3f}",
            ]
        )


def fit_powerlaw_exponent(
    degrees: np.ndarray, d_min: int = 2
) -> float | None:
    """Discrete MLE power-law exponent over degrees ≥ ``d_min``.

    Returns ``None`` when fewer than 10 vertices qualify (no meaningful
    fit).  The estimator is Clauset et al.'s
    ``α = 1 + n / Σ ln(d / (d_min − 0.5))``.
    """
    if d_min < 1:
        raise GraphFormatError("d_min must be >= 1")
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= d_min]
    if len(tail) < 10:
        return None
    return float(1.0 + len(tail) / np.log(tail / (d_min - 0.5)).sum())


def degree_percentiles(
    graph: SignedGraph, qs: tuple[float, ...] = (50, 90, 99)
) -> np.ndarray:
    """Degree percentiles of the adjacency-degree distribution."""
    deg = graph.degree()
    if graph.num_vertices == 0:
        return np.zeros(len(qs))
    return np.percentile(deg, qs)


def sign_assortativity(graph: SignedGraph) -> float:
    """Correlation between an edge's sign and its endpoints' degrees.

    Positive values mean hub-to-hub edges skew positive (e.g. elites
    endorsing each other); negative values mean conflict concentrates
    among hubs.  Computed as the Pearson correlation between the edge
    sign and the log of the endpoint-degree product; 0 for degenerate
    inputs.
    """
    m = graph.num_edges
    if m < 2:
        return 0.0
    deg = graph.degree().astype(np.float64)
    x = np.log(deg[graph.edge_u] * deg[graph.edge_v])
    y = graph.edge_sign.astype(np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def profile_graph(graph: SignedGraph) -> GraphProfile:
    """Compute the full :class:`GraphProfile` of *graph*."""
    n = graph.num_vertices
    p50, p90, p99 = (
        degree_percentiles(graph) if n else (0.0, 0.0, 0.0)
    )
    return GraphProfile(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_negative=graph.num_negative_edges,
        max_degree=graph.max_degree,
        avg_degree=graph.avg_degree,
        mean_adjacency_degree=(2 * graph.num_edges / n) if n else 0.0,
        degree_p50=float(p50),
        degree_p90=float(p90),
        degree_p99=float(p99),
        powerlaw_alpha=fit_powerlaw_exponent(graph.degree()) if n else None,
        sign_assortativity=sign_assortativity(graph),
    )

"""Connected-component labeling and largest-component extraction.

The paper processes only the largest connected component of each input
(Table 1 reports component sizes, not whole-input sizes).  The labeling
here is a vectorized frontier BFS over the CSR arrays — the same
level-synchronous pattern the parallel codes use — so it stays fast in
pure Python even for multi-million-edge graphs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.build import csr_from_undirected
from repro.graph.csr import SignedGraph
from repro.util.arrays import gather_adjacency

__all__ = [
    "connected_components",
    "num_connected_components",
    "largest_connected_component",
    "component_sizes",
]


def connected_components(graph: SignedGraph) -> np.ndarray:
    """Label each vertex with its component id (0-based, dense).

    Component ids are assigned in order of the smallest vertex they
    contain, so the labeling is deterministic.
    """
    n = graph.num_vertices
    label = np.full(n, -1, dtype=np.int64)
    comp = 0
    # Outer loop over seed vertices; inner loop is a vectorized
    # frontier expansion, so total cost is O(n + m) with tiny constants.
    for seed in range(n):
        if label[seed] != -1:
            continue
        label[seed] = comp
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            # Gather all neighbors of the frontier in one shot.
            offsets, _ = gather_adjacency(graph.indptr, frontier)
            if len(offsets) == 0:
                break
            nbrs = graph.adj_vertex[offsets]
            fresh = nbrs[label[nbrs] == -1]
            if len(fresh) == 0:
                break
            fresh = np.unique(fresh)
            label[fresh] = comp
            frontier = fresh
        comp += 1
    return label


def num_connected_components(graph: SignedGraph) -> int:
    """Number of connected components (isolated vertices count)."""
    if graph.num_vertices == 0:
        return 0
    return int(connected_components(graph).max() + 1)


def component_sizes(graph: SignedGraph) -> np.ndarray:
    """Vertex count of each component, indexed by component id."""
    label = connected_components(graph)
    return np.bincount(label)


def largest_connected_component(
    graph: SignedGraph,
) -> Tuple[SignedGraph, np.ndarray]:
    """Extract the largest connected component as its own graph.

    Returns ``(subgraph, old_ids)`` where ``old_ids[i]`` is the original
    vertex id of the subgraph's vertex ``i``.  Ties between equally
    large components go to the one containing the smallest vertex id.
    """
    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    label = connected_components(graph)
    sizes = np.bincount(label)
    target = int(sizes.argmax())
    keep = np.nonzero(label == target)[0]
    remap = np.full(n, -1, dtype=np.int64)
    remap[keep] = np.arange(len(keep))

    mask = (label[graph.edge_u] == target) & (label[graph.edge_v] == target)
    eu = remap[graph.edge_u[mask]]
    ev = remap[graph.edge_v[mask]]
    es = graph.edge_sign[mask]
    # Canonical orientation may flip after remapping.
    lo = np.minimum(eu, ev)
    hi = np.maximum(eu, ev)
    order = np.lexsort((hi, lo))
    sub = csr_from_undirected(len(keep), lo[order], hi[order], es[order])
    return sub, keep

"""Reading and writing signed graphs.

Two interchange formats are supported:

* **Signed edge-list text** — the SNAP convention used by the paper's
  inputs (``soc-sign-*``): one ``u v sign`` triple per line, ``#``
  comments.  Signs may be ``+1/-1`` or arbitrary ratings; ratings are
  mapped to signs by the caller-provided threshold.
* **NPZ snapshots** — lossless binary round-trip of the CSR arrays, the
  fast path for benchmark fixtures.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_arrays
from repro.graph.csr import SignedGraph

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, Path]


def read_edgelist(
    path: PathLike | _io.TextIOBase,
    rating_threshold: float | None = None,
    dedup: str = "product",
) -> SignedGraph:
    """Parse a SNAP-style signed edge list.

    Parameters
    ----------
    path:
        File path or open text handle.
    rating_threshold:
        If given, the third column is treated as a rating and mapped to
        ``+1`` when ``rating >= threshold`` else ``-1`` (the Amazon
        datasets use ratings 1–5 with threshold 3 in the graphB
        pipeline).  If ``None`` the column must already be a sign.
    dedup:
        Duplicate-edge policy, forwarded to the builder.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        us, vs, ss = [], [], []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v sign', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2])
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: {exc}") from exc
            us.append(u)
            vs.append(v)
            ss.append(w)
    finally:
        if close:
            fh.close()

    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = np.asarray(ss, dtype=np.float64)
    if rating_threshold is not None:
        w = np.where(w >= rating_threshold, 1.0, -1.0)
    return from_arrays(u, v, w, dedup=dedup)


def write_edgelist(graph: SignedGraph, path: PathLike) -> None:
    """Write ``u v sign`` lines (canonical direction, +1/−1 signs)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# signed graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v, s in graph.iter_edges():
            fh.write(f"{u} {v} {s}\n")


def save_npz(graph: SignedGraph, path: PathLike) -> None:
    """Lossless binary snapshot of the CSR arrays."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        adj_vertex=graph.adj_vertex,
        adj_edge=graph.adj_edge,
        edge_u=graph.edge_u,
        edge_v=graph.edge_v,
        edge_sign=graph.edge_sign,
    )


def load_npz(path: PathLike) -> SignedGraph:
    """Load a snapshot written by :func:`save_npz`.

    Arrays come back in the canonical CSR dtypes (int64 structure,
    int8 signs) and are marked read-only — :class:`SignedGraph` is a
    frozen dataclass whose cached ``degrees`` (and every balanced state
    derived via ``with_signs``) assume the loaded arrays never mutate.
    """

    def _frozen(arr: np.ndarray, dtype) -> np.ndarray:
        out = np.ascontiguousarray(arr, dtype=dtype)
        out.setflags(write=False)
        return out

    with np.load(path) as data:
        try:
            return SignedGraph(
                indptr=_frozen(data["indptr"], np.int64),
                adj_vertex=_frozen(data["adj_vertex"], np.int64),
                adj_edge=_frozen(data["adj_edge"], np.int64),
                edge_u=_frozen(data["edge_u"], np.int64),
                edge_v=_frozen(data["edge_v"], np.int64),
                edge_sign=_frozen(data["edge_sign"], np.int8),
            )
        except KeyError as exc:
            raise GraphFormatError(f"snapshot is missing array {exc}") from exc

"""Synthetic signed-graph generators.

These stand in for the paper's Amazon/SNAP inputs (see DESIGN.md §2):
the graphB+ algorithm's behaviour depends on the degree distribution,
diameter, and sign distribution, all of which the generators control.

All generators accept a ``seed`` (int, Generator, or None) and are
fully deterministic for a given seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_arrays
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator

__all__ = [
    "chung_lu_signed",
    "bipartite_ratings_graph",
    "erdos_renyi_signed",
    "complete_signed",
    "cycle_graph",
    "grid_graph",
    "planted_partition_signed",
    "random_signs",
    "ensure_connected",
]


def random_signs(m: int, negative_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """An ``int8`` ±1 array with the given expected negative fraction."""
    if not 0.0 <= negative_fraction <= 1.0:
        raise GraphFormatError("negative_fraction must be in [0, 1]")
    return np.where(rng.random(m) < negative_fraction, -1, 1).astype(np.int8)


def _powerlaw_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Expected-degree weights following a power law with the given
    exponent (classic Chung-Lu construction: ``w_i ∝ (i + i0)^(-1/(γ-1))``)."""
    if exponent <= 1.0:
        raise GraphFormatError("power-law exponent must be > 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    rng.shuffle(ranks)  # decouple vertex id from degree rank
    return ranks ** (-1.0 / (exponent - 1.0))


def _cap_weights(
    w: np.ndarray, draws: int, max_expected_degree: float | None
) -> np.ndarray:
    """Clip weights so the largest expected degree ≈ the requested cap.

    The expected degree of vertex *i* under endpoint sampling is
    ``draws · w_i / Σw``; clipping changes the sum, so iterate a few
    times (converges quickly because the tail mass is small).  Used to
    calibrate synthetic stand-ins to a dataset's published max degree.
    """
    if max_expected_degree is None:
        return w
    if max_expected_degree <= 0:
        raise GraphFormatError("max_expected_degree must be positive")
    w = w.astype(np.float64).copy()
    for _ in range(8):
        cap = max_expected_degree * w.sum() / draws
        if w.max() <= cap * 1.001:
            break
        np.minimum(w, cap, out=w)
    return w


def chung_lu_signed(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.5,
    negative_fraction: float = 0.2,
    max_expected_degree: float | None = None,
    seed: SeedLike = None,
) -> SignedGraph:
    """Power-law signed graph via Chung-Lu endpoint sampling.

    Endpoints of each edge are drawn independently with probability
    proportional to a power-law weight sequence, which reproduces the
    heavy-tailed degree distributions of the paper's social/ratings
    networks (a few very-high-degree hubs, shallow BFS trees).

    Self loops and duplicates are dropped, so the realized edge count
    is slightly below ``num_edges``; callers needing exact counts should
    oversample.
    """
    if num_vertices < 2:
        raise GraphFormatError("need at least 2 vertices")
    rng = as_generator(seed)
    w = _powerlaw_weights(num_vertices, exponent, rng)
    w = _cap_weights(w, 2 * num_edges, max_expected_degree)
    p = w / w.sum()
    # Oversample 15% to compensate for dropped loops/duplicates.
    m_try = int(num_edges * 1.15) + 8
    u = rng.choice(num_vertices, size=m_try, p=p)
    v = rng.choice(num_vertices, size=m_try, p=p)
    keep = u != v
    u, v = u[keep], v[keep]
    # Deduplicate here (keep="first") so the final trim hits the target m.
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    _, first = np.unique(lo * np.int64(num_vertices) + hi, return_index=True)
    first.sort()
    lo, hi = lo[first], hi[first]
    lo, hi = lo[:num_edges], hi[:num_edges]
    signs = random_signs(len(lo), negative_fraction, rng)
    return from_arrays(lo, hi, signs, num_vertices=num_vertices, dedup="first")


def bipartite_ratings_graph(
    num_users: int,
    num_items: int,
    num_ratings: int,
    user_exponent: float = 2.2,
    item_exponent: float = 2.0,
    negative_fraction: float = 0.18,
    max_expected_degree: float | None = None,
    seed: SeedLike = None,
) -> SignedGraph:
    """Amazon-style user–item ratings graph.

    Users occupy ids ``[0, num_users)`` and items
    ``[num_users, num_users + num_items)``.  Both sides have power-law
    activity/popularity, yielding the very-low average degree but very
    high max degree of the Amazon rows in Table 1.  Ratings are already
    mapped to signs (positive = rating above threshold).
    """
    rng = as_generator(seed)
    wu = _powerlaw_weights(num_users, user_exponent, rng)
    wi = _powerlaw_weights(num_items, item_exponent, rng)
    wu = _cap_weights(wu, num_ratings, max_expected_degree)
    wi = _cap_weights(wi, num_ratings, max_expected_degree)
    m_try = int(num_ratings * 1.15) + 8
    u = rng.choice(num_users, size=m_try, p=wu / wu.sum())
    i = rng.choice(num_items, size=m_try, p=wi / wi.sum()) + num_users
    key = u * np.int64(num_items) + (i - num_users)
    _, first = np.unique(key, return_index=True)
    first.sort()
    u, i = u[first][:num_ratings], i[first][:num_ratings]
    signs = random_signs(len(u), negative_fraction, rng)
    return from_arrays(u, i, signs, num_vertices=num_users + num_items, dedup="first")


def erdos_renyi_signed(
    num_vertices: int,
    num_edges: int,
    negative_fraction: float = 0.5,
    seed: SeedLike = None,
) -> SignedGraph:
    """Uniform random signed graph with exactly ``num_edges`` distinct edges."""
    n = num_vertices
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphFormatError(f"{num_edges} edges exceed the maximum {max_edges}")
    rng = as_generator(seed)
    # Sample distinct unordered pairs by index into the triangle.
    idx = rng.choice(max_edges, size=num_edges, replace=False)
    u, v = _triangle_unrank(idx, n)
    signs = random_signs(num_edges, negative_fraction, rng)
    return from_arrays(u, v, signs, num_vertices=n, dedup="first")


def _triangle_unrank(idx: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map linear indices into the strict upper triangle to (u, v) pairs."""
    idx = np.asarray(idx, dtype=np.float64)
    # Row r starts at offset r*n - r*(r+1)/2; invert the quadratic.
    b = 2 * n - 1
    u = np.floor((b - np.sqrt(b * b - 8 * idx)) / 2).astype(np.int64)
    offset = u * n - u * (u + 1) // 2
    v = (idx - offset).astype(np.int64) + u + 1
    return u, v


def complete_signed(
    num_vertices: int,
    negative_fraction: float = 0.5,
    seed: SeedLike = None,
) -> SignedGraph:
    """Complete signed graph K_n with random signs."""
    n = num_vertices
    u, v = np.triu_indices(n, k=1)
    rng = as_generator(seed)
    signs = random_signs(len(u), negative_fraction, rng)
    return from_arrays(u, v, signs, num_vertices=n, dedup="first")


def cycle_graph(signs: Sequence[int]) -> SignedGraph:
    """A single cycle ``0-1-...-k-0`` with the given edge signs.

    ``signs[i]`` labels edge ``i -(i+1 mod k)``.  The smallest graph
    with exactly one fundamental cycle — the unit fixture for balance
    parity tests.
    """
    k = len(signs)
    if k < 3:
        raise GraphFormatError("a cycle needs at least 3 edges")
    u = np.arange(k)
    v = (u + 1) % k
    return from_arrays(u, v, np.asarray(signs), num_vertices=k, dedup="first")


def grid_graph(
    rows: int,
    cols: int,
    negative_fraction: float = 0.3,
    seed: SeedLike = None,
) -> SignedGraph:
    """2D grid with random signs — a high-diameter stress case.

    Social graphs are shallow; grids are the opposite, exercising deep
    BFS trees and long fundamental cycles in the traversal kernels.
    """
    if rows < 1 or cols < 1:
        raise GraphFormatError("grid dimensions must be positive")
    ids = np.arange(rows * cols).reshape(rows, cols)
    right_u = ids[:, :-1].ravel()
    right_v = ids[:, 1:].ravel()
    down_u = ids[:-1, :].ravel()
    down_v = ids[1:, :].ravel()
    u = np.concatenate([right_u, down_u])
    v = np.concatenate([right_v, down_v])
    rng = as_generator(seed)
    signs = random_signs(len(u), negative_fraction, rng)
    return from_arrays(u, v, signs, num_vertices=rows * cols, dedup="first")


def planted_partition_signed(
    group_sizes: Sequence[int],
    intra_degree: float = 6.0,
    inter_degree: float = 2.0,
    flip_noise: float = 0.05,
    seed: SeedLike = None,
) -> SignedGraph:
    """Signed graph with a planted Harary bipartition structure.

    Vertices are split into groups; intra-group edges are positive and
    inter-group edges negative, then each sign flips independently with
    probability ``flip_noise``.  With zero noise the graph is exactly
    balanced w.r.t. the *union-of-groups* bipartitions, so the planted
    structure gives ground truth for bipartition and status tests.
    """
    sizes = np.asarray(group_sizes, dtype=np.int64)
    if len(sizes) < 2 or np.any(sizes <= 0):
        raise GraphFormatError("need at least two positive group sizes")
    rng = as_generator(seed)
    n = int(sizes.sum())
    group = np.repeat(np.arange(len(sizes)), sizes)

    us, vs, ss = [], [], []
    starts = np.concatenate([[0], np.cumsum(sizes)])
    # Intra-group positive edges.
    for g, size in enumerate(sizes):
        if size < 2:
            continue
        m_g = int(round(intra_degree * size / 2))
        base = starts[g]
        u = rng.integers(0, size, size=m_g) + base
        v = rng.integers(0, size, size=m_g) + base
        keep = u != v
        us.append(u[keep])
        vs.append(v[keep])
        ss.append(np.ones(int(keep.sum()), dtype=np.int8))
    # Inter-group negative edges.
    for g in range(len(sizes)):
        for h in range(g + 1, len(sizes)):
            m_gh = int(round(inter_degree * min(sizes[g], sizes[h]) / 2)) + 1
            u = rng.integers(0, sizes[g], size=m_gh) + starts[g]
            v = rng.integers(0, sizes[h], size=m_gh) + starts[h]
            us.append(u)
            vs.append(v)
            ss.append(-np.ones(m_gh, dtype=np.int8))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    s = np.concatenate(ss).astype(np.int64)
    flip = rng.random(len(s)) < flip_noise
    s[flip] = -s[flip]
    return from_arrays(u, v, s, num_vertices=n, dedup="first")


def ensure_connected(graph: SignedGraph, seed: SeedLike = None) -> SignedGraph:
    """Add one positive edge per extra component to make *graph* connected.

    Each added edge attaches a random vertex of a smaller component to a
    random vertex of the first component.  Used by generators/tests that
    need connectivity without the bias of discarding vertices.
    """
    from repro.graph.components import connected_components

    label = connected_components(graph)
    num_comp = int(label.max() + 1) if graph.num_vertices else 0
    if num_comp <= 1:
        return graph
    rng = as_generator(seed)
    anchors = []
    for c in range(num_comp):
        members = np.nonzero(label == c)[0]
        anchors.append(int(members[rng.integers(0, len(members))]))
    extra_u = np.full(num_comp - 1, anchors[0], dtype=np.int64)
    extra_v = np.asarray(anchors[1:], dtype=np.int64)
    u = np.concatenate([graph.edge_u, np.minimum(extra_u, extra_v)])
    v = np.concatenate([graph.edge_v, np.maximum(extra_u, extra_v)])
    s = np.concatenate([graph.edge_sign, np.ones(num_comp - 1, dtype=np.int8)])
    return from_arrays(u, v, s, num_vertices=graph.num_vertices, dedup="first")

"""Subgraph extraction: induced subgraphs and k-cores.

The paper's three "core5" review inputs are the 5-cores of the Amazon
review graphs (every user and product has at least five reviews —
McAuley's standard dense cut).  :func:`k_core` implements the classic
peeling algorithm with vectorized rounds, so the dataset catalog can
build its core5 stand-ins the same way the originals were built.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import csr_from_undirected
from repro.graph.csr import SignedGraph

__all__ = ["induced_subgraph", "k_core"]


def induced_subgraph(
    graph: SignedGraph,
    vertices: np.ndarray,
    return_edge_ids: bool = False,
):
    """The subgraph induced by *vertices*.

    Returns ``(subgraph, old_ids)`` with ``old_ids[i]`` the original id
    of subgraph vertex ``i``.  Vertex order is preserved (sorted by
    original id); duplicate input ids are rejected.  With
    ``return_edge_ids=True`` the result is ``(subgraph, old_ids,
    edge_ids)`` where ``edge_ids[e]`` is the host edge id of subgraph
    edge ``e`` — the scatter map that lets callers push per-edge
    results (balanced signs, agreements) back to the host graph without
    per-edge lookups.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise GraphFormatError("vertex ids out of range")
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(len(vertices))

    keep = (remap[graph.edge_u] >= 0) & (remap[graph.edge_v] >= 0)
    eu = remap[graph.edge_u[keep]]
    ev = remap[graph.edge_v[keep]]
    es = graph.edge_sign[keep]
    lo = np.minimum(eu, ev)
    hi = np.maximum(eu, ev)
    order = np.lexsort((hi, lo))
    sub = csr_from_undirected(len(vertices), lo[order], hi[order], es[order])
    if return_edge_ids:
        return sub, vertices, np.nonzero(keep)[0][order]
    return sub, vertices


def k_core(graph: SignedGraph, k: int) -> Tuple[SignedGraph, np.ndarray]:
    """The maximal subgraph in which every vertex has degree ≥ k.

    Iterative peeling: repeatedly delete all vertices below degree k
    (each round vectorized) until stable.  Returns ``(core, old_ids)``;
    the core may be empty.
    """
    if k < 0:
        raise GraphFormatError("k must be non-negative")
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    degree = np.diff(graph.indptr).astype(np.int64)

    while True:
        doomed = alive & (degree < k)
        if not doomed.any():
            break
        # Remove doomed vertices; decrement neighbors once per incident
        # edge to a still-alive endpoint.
        doomed_ids = np.nonzero(doomed)[0]
        alive[doomed_ids] = False
        # Gather all half-edges of doomed vertices in one shot.
        from repro.util.arrays import gather_adjacency

        pos, _src = gather_adjacency(graph.indptr, doomed_ids)
        nbrs = graph.adj_vertex[pos]
        np.subtract.at(degree, nbrs, 1)
        degree[doomed_ids] = 0

    return induced_subgraph(graph, np.nonzero(alive)[0])

"""Builders that turn raw edge input into a validated :class:`SignedGraph`.

The input conventions follow the paper's datasets: an edge list of
``(u, v, sign)`` triples where the sign is any nonzero number whose sign
bit carries the sentiment (ratings are mapped to signs upstream, in
:mod:`repro.graph.datasets`).  Building performs, in order:

1. endpoint validation (non-negative, no self loops),
2. canonicalization ``u < v``,
3. duplicate resolution (sign *product* by default — two conflicting
   reports of the same relationship cancel to "positive/neutral" the way
   repeated sentiment multiplies; ``dedup="first"``/``"last"``/``"sum"``
   are also available),
4. CSR assembly with adjacency lists sorted by neighbor id.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import SignedGraph

__all__ = ["from_edges", "from_arrays", "csr_from_undirected"]

_DEDUP_MODES = ("product", "first", "last", "sum")


def from_edges(
    edges: Iterable[Sequence[int]] | np.ndarray,
    num_vertices: int | None = None,
    dedup: str = "product",
) -> SignedGraph:
    """Build a :class:`SignedGraph` from an iterable of ``(u, v, sign)``.

    Parameters
    ----------
    edges:
        Iterable of triples, or an ``(m, 3)`` array.  Signs may be any
        nonzero values; only their sign bit is kept.
    num_vertices:
        Total vertex count.  Defaults to ``max endpoint + 1``.
    dedup:
        How to resolve parallel edges; see the module docstring.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise GraphFormatError(
            f"edge input must be (m, 3) of (u, v, sign); got shape {arr.shape}"
        )
    return from_arrays(
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        num_vertices=num_vertices,
        dedup=dedup,
    )


def from_arrays(
    u: np.ndarray,
    v: np.ndarray,
    sign: np.ndarray,
    num_vertices: int | None = None,
    dedup: str = "product",
) -> SignedGraph:
    """Vectorized builder from parallel endpoint/sign arrays."""
    if dedup not in _DEDUP_MODES:
        raise GraphFormatError(f"unknown dedup mode {dedup!r}; use one of {_DEDUP_MODES}")
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    sign = np.asarray(sign, dtype=np.float64).ravel()
    if not (len(u) == len(v) == len(sign)):
        raise GraphFormatError("u, v, sign arrays must have equal length")
    if len(u) and (u.min() < 0 or v.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    if np.any(u == v):
        bad = int(u[np.nonzero(u == v)[0][0]])
        raise GraphFormatError(f"self loop at vertex {bad} is not allowed")
    if np.any(sign == 0):
        raise GraphFormatError("edge signs must be nonzero")

    n = int(max(u.max(initial=-1), v.max(initial=-1)) + 1)
    if num_vertices is not None:
        if num_vertices < n:
            raise GraphFormatError(
                f"num_vertices={num_vertices} smaller than max endpoint + 1 = {n}"
            )
        n = int(num_vertices)

    # Canonical direction u < v.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    s = np.sign(sign).astype(np.int8)

    # Sort by (lo, hi) so duplicates are adjacent, then reduce each run.
    order = np.lexsort((hi, lo))
    lo, hi, s = lo[order], hi[order], s[order]
    if len(lo):
        new_run = np.empty(len(lo), dtype=bool)
        new_run[0] = True
        new_run[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        run_id = np.cumsum(new_run) - 1
        num_runs = int(run_id[-1] + 1)
        lo_u = lo[new_run]
        hi_u = hi[new_run]
        if dedup == "first":
            s_u = s[new_run]
        elif dedup == "last":
            last = np.empty(len(lo), dtype=bool)
            last[:-1] = new_run[1:]
            last[-1] = True
            s_u = s[last]
        else:  # product or sum
            acc = np.zeros(num_runs, dtype=np.int64)
            if dedup == "product":
                neg = np.zeros(num_runs, dtype=np.int64)
                np.add.at(neg, run_id, (s == -1).astype(np.int64))
                s_u = np.where(neg % 2 == 1, -1, 1).astype(np.int8)
            else:  # sum: sign of the summed sentiment, ties -> positive
                np.add.at(acc, run_id, s.astype(np.int64))
                s_u = np.where(acc < 0, -1, 1).astype(np.int8)
    else:
        lo_u = lo
        hi_u = hi
        s_u = s

    return csr_from_undirected(n, lo_u, hi_u, s_u.astype(np.int8))


def csr_from_undirected(
    n: int, eu: np.ndarray, ev: np.ndarray, esign: np.ndarray
) -> SignedGraph:
    """Assemble the CSR arrays from already-deduplicated undirected edges.

    ``eu/ev/esign`` must be canonical (``eu < ev``, no duplicates); this
    is the low-level entry used by builders and by graph surgery such as
    largest-CC extraction.
    """
    m = len(eu)
    eu = np.asarray(eu, dtype=np.int64)
    ev = np.asarray(ev, dtype=np.int64)
    esign = np.asarray(esign, dtype=np.int8)

    # Each undirected edge contributes two directed half-edges.
    src = np.concatenate([eu, ev])
    dst = np.concatenate([ev, eu])
    eid = np.concatenate([np.arange(m), np.arange(m)]).astype(np.int64)

    # Sort half-edges by (src, dst) to get neighbor-sorted CSR rows.
    order = np.lexsort((dst, src))
    src, dst, eid = src[order], dst[order], eid[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)

    return SignedGraph(
        indptr=indptr,
        adj_vertex=dst.astype(np.int64),
        adj_edge=eid,
        edge_u=eu,
        edge_v=ev,
        edge_sign=esign,
    )

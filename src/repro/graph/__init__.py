"""Signed-graph substrate: CSR storage, builders, IO, components,
generators, and the dataset catalog used by the benchmarks.
"""

from repro.graph.csr import SignedGraph
from repro.graph.build import from_edges, from_arrays
from repro.graph.components import (
    connected_components,
    largest_connected_component,
    num_connected_components,
)
from repro.graph.store import GraphStore, graph_fingerprint

__all__ = [
    "SignedGraph",
    "from_edges",
    "from_arrays",
    "connected_components",
    "largest_connected_component",
    "num_connected_components",
    "GraphStore",
    "graph_fingerprint",
]

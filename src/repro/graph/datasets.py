"""Dataset catalog: paper fixtures and Table-1 stand-ins.

The paper evaluates on 14 Amazon ratings graphs, 3 Amazon 5-core review
graphs, and 3 SNAP signed networks (Table 1).  Those downloads are not
available offline, so this module provides:

* **Worked-example fixtures** — the 4-vertex graph Σ of Fig. 1 (8
  spanning trees, 5-state frustration cloud) and a 10-vertex graph
  re-creating the Fig. 6 walkthrough (root R, relabeled ids 0–9, an
  edge ``0→7`` with range ``[7, 9]``, the ``6–7`` non-tree cycle).
* **A synthetic catalog** keyed by the paper's input names.  Each entry
  records the paper's full-scale statistics and builds a calibrated
  synthetic graph at a configurable scale (default 1/100 for the large
  inputs, full scale for the small ones).  Ratings inputs are bipartite
  user–item graphs; SNAP inputs are unipartite power-law graphs.

Every builder is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.build import from_edges
from repro.graph.csr import SignedGraph
from repro.graph.generators import bipartite_ratings_graph, chung_lu_signed
from repro.rng import SeedLike

__all__ = [
    "fig1_sigma",
    "fig6_graph",
    "fig6_tree_edges",
    "highland_tribes_like",
    "DatasetSpec",
    "CATALOG",
    "catalog_names",
    "load",
    "paper_stats",
]


# ----------------------------------------------------------------------
# Worked-example fixtures
# ----------------------------------------------------------------------
def fig1_sigma() -> SignedGraph:
    """The 4-vertex, 5-edge example graph Σ of Fig. 1.

    Structure: K4 minus one edge (the unique 4-vertex 5-edge simple
    graph), which has exactly 8 spanning trees — matching Fig. 1(b).
    The sign pattern is chosen so the frustration cloud contains
    exactly 5 unique nearest balanced states (Fig. 2) and the
    best-connected vertex has status 6/8 = 0.75 (Fig. 3); both anchors
    are asserted in the test suite.

    Vertex layout (matching the paper's drawing): 0 = top-left,
    1 = top-right, 2 = bottom-left, 3 = bottom-right; the single
    negative edge is the diagonal 0–3.  Exhaustive search over the 32
    sign patterns of this structure shows this one reproduces both
    anchors (and its frustration index is 1).
    """
    edges = [
        (0, 1, +1),
        (0, 2, +1),
        (0, 3, -1),
        (1, 3, +1),
        (2, 3, +1),
    ]
    return from_edges(edges, num_vertices=4)


# The Fig. 6 walkthrough tree, written as (parent, child) pairs over the
# paper's letter names mapped to our integer ids:
#   R=0, A=1, B=2, C=3, D=4, E=5, F=6, G=7, H=8, I=9
# Pre-order relabeling of this tree is the identity, so the ids below
# are simultaneously the "old" and "new" ids — making the expected
# ranges in the unit tests easy to read: edge 0→3 covers [3, 6],
# edge 0→7 covers [7, 9], edge 3→6 covers [6, 6], exactly the ranges
# narrated in §3 for the 6→7 cycle traversal.
_FIG6_TREE: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (1, 2),
    (0, 3),
    (3, 4),
    (3, 5),
    (3, 6),
    (0, 7),
    (7, 8),
    (7, 9),
)

# Non-tree edges close the fundamental cycles; 6–7 is the cycle the
# paper traverses step by step.
_FIG6_NONTREE: Tuple[Tuple[int, int, int], ...] = (
    (6, 7, -1),   # the worked cycle: 7 → 0 → 3 → 6
    (2, 4, +1),
    (5, 9, -1),
    (8, 9, +1),
)

_FIG6_TREE_SIGNS: Dict[Tuple[int, int], int] = {
    (0, 1): +1,
    (1, 2): -1,
    (0, 3): +1,
    (3, 4): +1,
    (3, 5): -1,
    (3, 6): -1,
    (0, 7): +1,
    (7, 8): +1,
    (7, 9): -1,
}


def fig6_graph() -> SignedGraph:
    """The 10-vertex walkthrough graph of Fig. 6 (re-created).

    The published figure is only available as an image; this fixture
    reproduces the *mechanism* it illustrates with the same shape: root
    R (=0), a BFS tree whose pre-order relabeling yields the ranges the
    paper narrates, and the non-tree edge 6–7 whose cycle traversal
    visits exactly 7 → 0 → 3 → 6.
    """
    edges = [(p, c, _FIG6_TREE_SIGNS[(p, c)]) for p, c in _FIG6_TREE]
    edges += list(_FIG6_NONTREE)
    return from_edges(edges, num_vertices=10)


def fig6_tree_edges() -> Tuple[Tuple[int, int], ...]:
    """The (parent, child) pairs of the Fig. 6 spanning tree."""
    return _FIG6_TREE


def highland_tribes_like(seed: SeedLike = 0) -> SignedGraph:
    """A 16-vertex, 58-edge signed graph shaped like the highland-tribes
    network the paper cites (Read's Gahuku-Gama alliances: 16 tribes,
    29 alliance + 29 enmity relations).

    Substitution note: the true edge list is not redistributable
    offline, so this is a synthetic stand-in with the same vertex/edge/
    sign counts and a comparable three-faction structure.  The paper
    only uses the dataset to illustrate spanning-tree blow-up
    (~4×10¹¹ trees); any dense 16-vertex graph exhibits the same blow-up.
    """
    from repro.graph.generators import ensure_connected
    from repro.rng import as_generator

    rng = as_generator(seed)
    # Three factions of sizes 6/5/5; alliances inside, enmity across.
    group = np.repeat([0, 1, 2], [6, 5, 5])
    pairs = [(u, v) for u in range(16) for v in range(u + 1, 16)]
    rng.shuffle(pairs)
    pos = [(u, v) for u, v in pairs if group[u] == group[v]][:29]
    neg = [(u, v) for u, v in pairs if group[u] != group[v]][:29]
    edges = [(u, v, +1) for u, v in pos] + [(u, v, -1) for u, v in neg]
    graph = from_edges(edges, num_vertices=16)
    return ensure_connected(graph, seed=rng)


# ----------------------------------------------------------------------
# Table-1 catalog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1 plus the recipe for its synthetic stand-in.

    ``paper_*`` fields are the published largest-connected-component
    statistics, used (a) to calibrate the generator and (b) by the
    Table 4 memory model, which is evaluated analytically at full scale.
    """

    name: str
    category: str  # "amazon-ratings" | "amazon-reviews" | "snap-signed"
    paper_vertices: int
    paper_edges: int
    paper_cycles: int
    paper_max_degree: int
    paper_avg_degree: float
    default_scale: float
    negative_fraction: float
    exponent: float

    def build(self, scale: float | None = None, seed: SeedLike = 0) -> SignedGraph:
        """Materialize the synthetic stand-in at the given scale.

        Scaling multiplies the vertex and edge counts; degree shape
        (exponent, sign mix) is preserved.  The result is the *whole*
        input — callers extract the largest connected component, as the
        paper does.
        """
        s = self.default_scale if scale is None else scale
        n = max(int(round(self.paper_vertices * s)), 16)
        m = max(int(round(self.paper_edges * s)), n)
        # Hub degrees scale with the sampled edge count; calibrate the
        # generator to the published max degree at this scale.
        max_deg = max(self.paper_max_degree * s, 8.0)
        if self.category in ("amazon-ratings", "amazon-reviews"):
            # Ratings graphs are user–item bipartite; McAuley's Amazon
            # data has roughly 4 users per item in the large categories
            # and denser review cores in the core5 cuts.
            num_items = max(n // 5, 8)
            num_users = n - num_items
            return bipartite_ratings_graph(
                num_users=num_users,
                num_items=num_items,
                num_ratings=m,
                user_exponent=self.exponent,
                item_exponent=max(self.exponent - 0.4, 1.6),
                negative_fraction=self.negative_fraction,
                max_expected_degree=max_deg,
                seed=seed,
            )
        return chung_lu_signed(
            num_vertices=n,
            num_edges=m,
            exponent=self.exponent,
            negative_fraction=self.negative_fraction,
            max_expected_degree=max_deg,
            seed=seed,
        )


def _spec(
    name: str,
    category: str,
    v: int,
    e: int,
    c: int,
    maxd: int,
    avgd: float,
    scale: float,
    neg: float = 0.18,
    exponent: float = 2.1,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        category=category,
        paper_vertices=v,
        paper_edges=e,
        paper_cycles=c,
        paper_max_degree=maxd,
        paper_avg_degree=avgd,
        default_scale=scale,
        negative_fraction=neg,
        exponent=exponent,
    )


#: The 20 inputs of Table 1.  Large ratings inputs default to 1/100
#: scale; the small review cores and S*_wiki run at full scale.
CATALOG: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # --- Amazon ratings (largest CC stats from Table 1) ---
        _spec("A*_Book", "amazon-ratings", 9_973_735, 22_268_630, 12_294_896, 43_201, 2.23, 0.01),
        _spec("A*_Electronics", "amazon-ratings", 4_523_296, 7_734_582, 3_211_287, 18_244, 1.71, 0.01),
        _spec("A*_Jewelry", "amazon-ratings", 3_796_967, 5_484_633, 1_687_667, 3_047, 1.44, 0.01, exponent=2.4),
        _spec("A*_TV", "amazon-ratings", 2_236_744, 4_573_784, 2_337_041, 11_906, 2.04, 0.01),
        _spec("A*_Vinyl", "amazon-ratings", 1_959_693, 3_684_143, 1_724_451, 5_755, 1.88, 0.01, exponent=2.2),
        _spec("A*_Outdoors", "amazon-ratings", 2_147_848, 3_075_419, 927_572, 6_016, 1.43, 0.01, exponent=2.3),
        _spec("A*_Android", "amazon-ratings", 1_373_018, 2_631_009, 1_257_992, 25_368, 1.92, 0.01, exponent=1.9),
        _spec("A*_Games", "amazon-ratings", 1_489_764, 2_142_593, 652_830, 10_281, 1.44, 0.01, exponent=2.2),
        _spec("A*_Automotive", "amazon-ratings", 950_831, 1_239_450, 288_620, 2_738, 1.30, 0.01, exponent=2.4),
        _spec("A*_Garden", "amazon-ratings", 735_815, 939_679, 203_865, 3_180, 1.28, 0.01, exponent=2.4),
        _spec("A*_Baby", "amazon-ratings", 559_040, 892_231, 333_192, 3_648, 1.60, 0.01, exponent=2.3),
        _spec("A*_Music", "amazon-ratings", 525_522, 702_584, 177_063, 1_953, 1.34, 0.01, exponent=2.4),
        _spec("A*_Video", "amazon-ratings", 433_702, 572_834, 139_133, 12_633, 1.32, 0.01, exponent=2.0),
        _spec("A*_Instruments", "amazon-ratings", 355_507, 457_140, 101_634, 3_523, 1.29, 0.01, exponent=2.3),
        # --- Amazon 5-core reviews (small; run at full scale) ---
        _spec("A*_Music_core5", "amazon-reviews", 9_109, 64_706, 55_598, 578, 7.10, 1.0, exponent=2.0),
        _spec("A*_Video_core5", "amazon-reviews", 6_815, 37_126, 30_312, 455, 5.45, 1.0, exponent=2.0),
        _spec("A*_Instruments_core5", "amazon-reviews", 2_329, 10_261, 7_933, 163, 4.41, 1.0, exponent=2.1),
        # --- SNAP signed networks (unipartite) ---
        _spec("S*_opinion", "snap-signed", 119_130, 704_267, 585_138, 3_558, 5.91, 0.1, neg=0.15, exponent=1.9),
        _spec("S*_slashdot", "snap-signed", 82_140, 500_481, 418_342, 2_548, 6.09, 0.1, neg=0.23, exponent=2.0),
        _spec("S*_wiki", "snap-signed", 7_539, 112_058, 104_520, 1_079, 14.86, 1.0, neg=0.22, exponent=1.8),
    ]
}


def catalog_names(category: str | None = None) -> list[str]:
    """Names of the catalog entries, optionally filtered by category."""
    return [
        name
        for name, spec in CATALOG.items()
        if category is None or spec.category == category
    ]


def load(name: str, scale: float | None = None, seed: SeedLike = 0) -> SignedGraph:
    """Build the synthetic stand-in for the named Table-1 input."""
    try:
        spec = CATALOG[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(CATALOG)}"
        ) from None
    return spec.build(scale=scale, seed=seed)


def paper_stats(name: str) -> DatasetSpec:
    """The published Table-1 statistics for the named input."""
    try:
        return CATALOG[name]
    except KeyError:
        raise DatasetError(f"unknown dataset {name!r}") from None

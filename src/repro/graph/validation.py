"""Structural validation helpers used by tests and by paranoid callers.

These check the CSR invariants that the rest of the library assumes
(sorted adjacency, symmetric half-edges, canonical undirected edges)
and the graph-theory facts the algorithms rely on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import SignedGraph

__all__ = ["validate_graph", "assert_same_structure"]


def validate_graph(graph: SignedGraph) -> None:
    """Raise :class:`GraphFormatError` if any CSR invariant is violated.

    Checks performed:

    * ``indptr`` is non-decreasing, starts at 0, ends at ``2m``;
    * every adjacency row is sorted and free of duplicates/self loops;
    * each undirected edge appears exactly once in each endpoint's row;
    * edges are canonical (``u < v``) and signs are ±1.
    """
    n, m = graph.num_vertices, graph.num_edges
    if graph.indptr[0] != 0 or graph.indptr[-1] != 2 * m:
        raise GraphFormatError("indptr must span exactly 2m half-edges")
    if np.any(np.diff(graph.indptr) < 0):
        raise GraphFormatError("indptr must be non-decreasing")
    if len(graph.adj_vertex) != 2 * m or len(graph.adj_edge) != 2 * m:
        raise GraphFormatError("adjacency arrays must have length 2m")
    if m and (graph.adj_vertex.min() < 0 or graph.adj_vertex.max() >= n):
        raise GraphFormatError("adjacency contains out-of-range vertex ids")
    if not np.all(np.abs(graph.edge_sign) == 1):
        raise GraphFormatError("edge signs must be +1 or -1")
    if np.any(graph.edge_u >= graph.edge_v):
        raise GraphFormatError("undirected edges must be canonical (u < v)")

    # Row-level checks, vectorized per row boundary.
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    if np.any(src == graph.adj_vertex):
        raise GraphFormatError("self loop found in adjacency")
    same_row = src[1:] == src[:-1]
    if np.any(same_row & (graph.adj_vertex[1:] <= graph.adj_vertex[:-1])):
        raise GraphFormatError("adjacency rows must be strictly sorted")

    # Half-edge symmetry: edge id e must appear once from u and once from v.
    counts = np.bincount(graph.adj_edge, minlength=m)
    if np.any(counts != 2):
        raise GraphFormatError("each undirected edge must have two half-edges")
    expected = graph.edge_u + graph.edge_v
    got = np.zeros(m, dtype=np.int64)
    np.add.at(got, graph.adj_edge, src)
    if np.any(expected != got):
        raise GraphFormatError("half-edge endpoints disagree with edge arrays")


def assert_same_structure(a: SignedGraph, b: SignedGraph) -> None:
    """Raise unless *a* and *b* share vertex/edge structure (signs may
    differ) — the precondition for comparing balanced states."""
    if (
        a.num_vertices != b.num_vertices
        or a.num_edges != b.num_edges
        or not np.array_equal(a.edge_u, b.edge_u)
        or not np.array_equal(a.edge_v, b.edge_v)
    ):
        raise GraphFormatError("graphs do not share the same structure")

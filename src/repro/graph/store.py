"""Zero-copy on-disk graph store: one flat file, N processes, one copy.

The paper's scalability argument (§3.2.1, Table 1) rests on keeping a
*single* O(n + m) CSR copy of the graph no matter how many workers
balance trees against it.  Pickling a :class:`SignedGraph` into every
pool worker — what :mod:`repro.parallel.pool` did before this module —
multiplies that copy by the worker count and repeats the serialization
on every supervisor pool rebuild.

:class:`GraphStore` fixes both: :meth:`GraphStore.pack` serializes the
six CSR arrays into a single flat, versioned, checksummed binary file,
and :meth:`GraphStore.open` reopens them as **read-only**
``np.memmap`` views.  Every process that opens the same store file maps
the same page-cache pages, so the graph's resident cost is one copy
machine-wide regardless of worker count, and handing a worker the graph
costs a path string instead of a pickle.

File layout (all integers little-endian)::

    bytes 0..3    magic  b"RSGS"
    bytes 4..7    uint32 format version (currently 1)
    bytes 8..15   uint64 length H of the JSON header
    bytes 16..    UTF-8 JSON header (sorted keys, no timestamps)
    ...           zero padding to the next 64-byte boundary
    payload       the six arrays, each aligned to 64 bytes

The header records each array's dtype, shape, and payload-relative
offset, plus a SHA-256 checksum of the raw payload bytes and the graph
content fingerprint (:func:`graph_fingerprint`, shared with the
checkpoint layer).  Packing the same graph twice produces bit-identical
files, so store files can themselves be fingerprinted and cached.

Opening is O(header): the arrays are mapped, not read.  Pass
``verify=True`` to additionally stream the payload through SHA-256 —
worth it once per machine for a freshly copied file, wasteful per
worker.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.errors import GraphStoreError
from repro.graph.csr import SignedGraph

__all__ = ["GraphStore", "StoreHeader", "graph_fingerprint"]

PathLike = Union[str, Path]

MAGIC = b"RSGS"
FORMAT_VERSION = 1
_ALIGN = 64
_PREAMBLE = struct.Struct("<4sIQ")  # magic, version, header length

# The canonical array order — also the serialization order, so the
# checksum is well-defined.
_ARRAYS: Tuple[Tuple[str, str], ...] = (
    ("indptr", "<i8"),
    ("adj_vertex", "<i8"),
    ("adj_edge", "<i8"),
    ("edge_u", "<i8"),
    ("edge_v", "<i8"),
    ("edge_sign", "|i1"),
)


def graph_fingerprint(graph: SignedGraph) -> str:
    """Content hash of the graph (structure + signs).

    This is the same fingerprint the checkpoint layer embeds in every
    campaign checkpoint (:mod:`repro.cloud.checkpoint` re-exports it),
    so a checkpoint, a store file, and an in-memory graph can all be
    cross-checked against each other.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(graph.indptr).tobytes())
    h.update(np.ascontiguousarray(graph.edge_u).tobytes())
    h.update(np.ascontiguousarray(graph.edge_v).tobytes())
    h.update(np.ascontiguousarray(graph.edge_sign).tobytes())
    return h.hexdigest()


def _align_up(offset: int, align: int = _ALIGN) -> int:
    return (offset + align - 1) // align * align


@dataclass(frozen=True)
class StoreHeader:
    """The parsed JSON header of a store file — everything needed to
    validate a store without mapping its payload."""

    version: int
    num_vertices: int
    num_edges: int
    fingerprint: str
    checksum: str
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int, int], ...]
    # (name, dtype, shape, payload-relative offset, nbytes) per array.


def _build_header(graph: SignedGraph) -> tuple[dict, list[np.ndarray]]:
    n, m = graph.num_vertices, graph.num_edges
    specs = []
    payloads: list[np.ndarray] = []
    cursor = 0
    sha = hashlib.sha256()
    for name, dtype in _ARRAYS:
        arr = np.ascontiguousarray(getattr(graph, name), dtype=np.dtype(dtype))
        cursor = _align_up(cursor)
        specs.append(
            {
                "name": name,
                "dtype": dtype,
                "shape": list(arr.shape),
                "offset": cursor,
                "nbytes": int(arr.nbytes),
            }
        )
        payloads.append(arr)
        sha.update(arr.tobytes())
        cursor += arr.nbytes
    header = {
        "version": FORMAT_VERSION,
        "num_vertices": int(n),
        "num_edges": int(m),
        "fingerprint": graph_fingerprint(graph),
        "checksum": sha.hexdigest(),
        "align": _ALIGN,
        "arrays": specs,
    }
    return header, payloads


def _parse_header(raw: dict, path: Path) -> StoreHeader:
    try:
        version = int(raw["version"])
        arrays = tuple(
            (
                str(spec["name"]),
                str(spec["dtype"]),
                tuple(int(x) for x in spec["shape"]),
                int(spec["offset"]),
                int(spec["nbytes"]),
            )
            for spec in raw["arrays"]
        )
        header = StoreHeader(
            version=version,
            num_vertices=int(raw["num_vertices"]),
            num_edges=int(raw["num_edges"]),
            fingerprint=str(raw["fingerprint"]),
            checksum=str(raw["checksum"]),
            arrays=arrays,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphStoreError(
            f"malformed graph-store header in {path}: {exc!r}"
        ) from exc
    names = [name for name, *_rest in header.arrays]
    if names != [name for name, _dt in _ARRAYS]:
        raise GraphStoreError(
            f"graph store {path} lists arrays {names}, expected "
            f"{[name for name, _dt in _ARRAYS]}"
        )
    return header


class GraphStore:
    """A packed CSR graph file opened as read-only memmap views.

    Construct with :meth:`pack` (serialize a graph) or :meth:`open`
    (map an existing file); the constructor itself is internal.
    """

    def __init__(
        self, path: Path, header: StoreHeader, data_start: int
    ) -> None:
        self.path = path
        self.header = header
        self._data_start = data_start
        self._graph: SignedGraph | None = None

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, graph: SignedGraph, path: PathLike) -> "GraphStore":
        """Serialize *graph* into a store file at *path* (atomic:
        temp file + fsync + ``os.replace``) and return the opened store.

        The output is deterministic — packing the same graph twice
        yields byte-identical files.
        """
        path = Path(path)
        header, payloads = _build_header(graph)
        blob = json.dumps(header, sort_keys=True, separators=(",", ":"))
        encoded = blob.encode("utf-8")
        preamble = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(encoded))
        data_start = _align_up(len(preamble) + len(encoded))
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(preamble)
                fh.write(encoded)
                fh.write(b"\x00" * (data_start - len(preamble) - len(encoded)))
                cursor = 0
                for spec, arr in zip(header["arrays"], payloads):
                    fh.write(b"\x00" * (spec["offset"] - cursor))
                    fh.write(arr.tobytes())
                    cursor = spec["offset"] + arr.nbytes
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink()
        return cls.open(path)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @staticmethod
    def read_header(path: PathLike) -> StoreHeader:
        """Parse and validate the header of the store file at *path*
        without mapping its payload (O(header) work)."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                preamble = fh.read(_PREAMBLE.size)
                if len(preamble) < _PREAMBLE.size:
                    raise GraphStoreError(
                        f"{path} is not a graph store: file too short"
                    )
                magic, version, header_len = _PREAMBLE.unpack(preamble)
                if magic != MAGIC:
                    raise GraphStoreError(
                        f"{path} is not a graph store: bad magic {magic!r}"
                    )
                if version != FORMAT_VERSION:
                    raise GraphStoreError(
                        f"graph store {path} has format version {version}; "
                        f"this build reads version {FORMAT_VERSION}"
                    )
                encoded = fh.read(header_len)
        except OSError as exc:
            raise GraphStoreError(
                f"cannot read graph store {path}: {exc}"
            ) from exc
        if len(encoded) < header_len:
            raise GraphStoreError(
                f"{path} is not a graph store: truncated header"
            )
        try:
            raw = json.loads(encoded.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise GraphStoreError(
                f"corrupt graph-store header in {path}: {exc}"
            ) from exc
        return _parse_header(raw, path)

    @classmethod
    def open(cls, path: PathLike, verify: bool = False) -> "GraphStore":
        """Map the store file at *path* read-only.

        Cheap by design: only the header is read eagerly; array pages
        fault in on first touch and are shared machine-wide through the
        page cache.  ``verify=True`` streams the payload through
        SHA-256 and raises :class:`~repro.errors.GraphStoreError` on a
        checksum mismatch.
        """
        path = Path(path)
        header = cls.read_header(path)
        with open(path, "rb") as fh:
            preamble = fh.read(_PREAMBLE.size)
            _magic, _version, header_len = _PREAMBLE.unpack(preamble)
        data_start = _align_up(_PREAMBLE.size + header_len)
        last_name, _dt, _shape, last_off, last_nbytes = header.arrays[-1]
        expected = data_start + last_off + last_nbytes
        actual = path.stat().st_size
        if actual < expected:
            raise GraphStoreError(
                f"graph store {path} is truncated: {actual} bytes on disk, "
                f"payload needs {expected} (missing tail of {last_name!r})"
            )
        store = cls(path, header, data_start)
        if verify:
            store.verify()
        return store

    def verify(self) -> None:
        """Stream the payload through SHA-256 and compare against the
        header checksum; raise on mismatch."""
        sha = hashlib.sha256()
        with open(self.path, "rb") as fh:
            for _name, _dtype, _shape, offset, nbytes in self.header.arrays:
                fh.seek(self._data_start + offset)
                remaining = nbytes
                while remaining:
                    chunk = fh.read(min(remaining, 1 << 20))
                    if not chunk:  # pragma: no cover - caught as truncation
                        raise GraphStoreError(
                            f"graph store {self.path} is truncated"
                        )
                    sha.update(chunk)
                    remaining -= len(chunk)
        if sha.hexdigest() != self.header.checksum:
            raise GraphStoreError(
                f"graph store {self.path} failed checksum verification "
                "(payload bytes do not match the header)"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The packed graph's content fingerprint (from the header)."""
        return self.header.fingerprint

    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def num_edges(self) -> int:
        return self.header.num_edges

    def graph(self) -> SignedGraph:
        """The packed graph, with every CSR array a read-only
        memmap-backed view (cached; repeated calls share one mapping).

        The arrays are plain ``np.ndarray`` views over the mapping (the
        ``memmap`` subclass is stripped) with ``writeable=False`` — the
        frozen-:class:`SignedGraph` immutability contract holds by
        construction, enforced by the OS this time.
        """
        if self._graph is None:
            arrays = {}
            for name, dtype, shape, offset, nbytes in self.header.arrays:
                if nbytes == 0:
                    # mmap cannot map zero bytes; an empty array needs
                    # no sharing anyway.
                    view = np.empty(shape, dtype=np.dtype(dtype))
                else:
                    mm = np.memmap(
                        self.path,
                        dtype=np.dtype(dtype),
                        mode="r",
                        offset=self._data_start + offset,
                        shape=shape,
                    )
                    view = mm.view(np.ndarray)
                view.flags.writeable = False
                arrays[name] = view
            graph = SignedGraph(**arrays)
            if (
                graph.num_vertices != self.header.num_vertices
                or graph.num_edges != self.header.num_edges
            ):
                raise GraphStoreError(
                    f"graph store {self.path} header counts "
                    f"({self.header.num_vertices} vertices, "
                    f"{self.header.num_edges} edges) disagree with its "
                    f"arrays ({graph.num_vertices}, {graph.num_edges})"
                )
            self._graph = graph
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphStore({str(self.path)!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, fingerprint={self.fingerprint[:12]}...)"
        )

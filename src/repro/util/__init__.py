"""Small shared utilities (vectorized array helpers)."""

from repro.util.arrays import concat_ranges, gather_adjacency

__all__ = ["concat_ranges", "gather_adjacency"]

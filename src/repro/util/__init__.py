"""Small shared utilities (vectorized array helpers, fault injection).

:mod:`repro.util.faults` is imported lazily by the crash-safety tests
rather than re-exported here — production code never needs it.
"""

from repro.util.arrays import concat_ranges, gather_adjacency

__all__ = ["concat_ranges", "gather_adjacency"]

"""Vectorized array helpers shared by the frontier-style kernels.

These implement the "gather all edges of a vertex set in one shot"
pattern that replaces per-vertex Python loops everywhere a CUDA kernel
would map threads to vertices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["concat_ranges", "gather_adjacency"]


def concat_ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(c)`` for every ``c`` in *counts*.

    Handles zero counts: ``concat_ranges([2, 0, 3])`` is
    ``[0, 1, 0, 1, 2]``.  This is the index arithmetic behind every
    vectorized CSR gather.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offsets where each non-empty run starts in the output.
    nonzero = counts > 0
    run_counts = counts[nonzero]
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    ends = np.cumsum(run_counts)[:-1]
    out[ends] = 1 - run_counts[:-1]
    return np.cumsum(out)


def gather_adjacency(
    indptr: np.ndarray,
    vertices: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the half-edge positions of a vertex set.

    Returns ``(positions, sources)`` where ``positions`` indexes into
    the CSR adjacency arrays and ``sources`` repeats each vertex once
    per incident half-edge.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    positions = np.repeat(starts, counts) + concat_ranges(counts)
    sources = np.repeat(vertices, counts)
    return positions, sources

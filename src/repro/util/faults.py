"""Reusable fault-injection harness for crash-safety tests.

The checkpoint layer (:mod:`repro.cloud.checkpoint`) routes its atomic
write through two module-level seams — ``_wrap_stream`` (applied to the
temp-file handle) and ``_replace`` (the publishing rename) — precisely
so these helpers can simulate crashes at the two interesting instants
without patching the real :mod:`os` module:

* :func:`kill_mid_write` — the process dies part-way through writing
  the temp file (a truncated ``<path>.tmp`` is left behind, the
  published checkpoint is untouched);
* :func:`kill_before_replace` — the temp file is fully written and
  fsynced but the process dies before ``os.replace`` publishes it (or,
  with ``after_calls``, mid-rotation).

Post-crash *file damage* is simulated directly on disk with
:func:`truncate_file` (torn tail) and :func:`flip_bits` (deterministic
bit rot), and :class:`WorkerCrash` is a picklable hook the pool driver
(:func:`repro.parallel.pool.sample_cloud_pool`) invokes per block so a
test can kill one specific worker — either by raising
:class:`SimulatedCrash` or by hard ``os._exit`` process death.

Beyond crashes, the harness simulates *resource* faults: the
``disk_full_*`` context managers route checkpoint / journal writes
through a :class:`DiskFullStream` that raises a genuine
``OSError(ENOSPC)`` (which the writers must degrade on, not die on),
:class:`SlowClient` trickles bytes at the serve daemon to exercise its
slow-client timeout, and :func:`kill_process` SIGKILLs a daemon
subprocess for the crash-only recovery chaos tests.

All injected crashes raise :class:`SimulatedCrash`, which deliberately
does **not** derive from :class:`~repro.errors.ReproError`: no library
handler may swallow it, just as no handler can catch a real SIGKILL.
"""

from __future__ import annotations

import errno
import os
import random
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Tuple, Union

__all__ = [
    "DiskFullStream",
    "SimulatedCrash",
    "SlowClient",
    "TruncatingStream",
    "WorkerCrash",
    "disk_full_checkpoints",
    "disk_full_journal",
    "kill_mid_write",
    "kill_before_replace",
    "kill_process",
    "truncate_file",
    "flip_bits",
]

PathLike = Union[str, Path]


class SimulatedCrash(RuntimeError):
    """Raised by injected faults to stand in for a process kill."""


class TruncatingStream:
    """File wrapper that crashes after *limit* bytes have been written.

    The bytes that fit are really written (and flushed), so the temp
    file is left in exactly the torn state a mid-write kill produces.
    """

    def __init__(self, fh: IO[bytes], limit: int) -> None:
        self._fh = fh
        self._limit = limit
        self._written = 0

    def write(self, data) -> int:
        """Write up to the byte budget, then die like a killed process."""
        data = bytes(data)
        room = self._limit - self._written
        if len(data) > room:
            if room > 0:
                self._fh.write(data[:room])
                self._written = self._limit
            self._fh.flush()
            raise SimulatedCrash(
                f"simulated kill after writing {self._written} bytes"
            )
        self._written += len(data)
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


@contextmanager
def kill_mid_write(limit_bytes: int = 128) -> Iterator[None]:
    """Within the block, any checkpoint save dies after *limit_bytes*
    of payload, leaving a truncated temp file and the previously
    published checkpoint untouched."""
    from repro.cloud import checkpoint

    previous = checkpoint._wrap_stream
    checkpoint._wrap_stream = lambda fh: TruncatingStream(fh, limit_bytes)
    try:
        yield
    finally:
        checkpoint._wrap_stream = previous


@contextmanager
def kill_before_replace(after_calls: int = 0) -> Iterator[None]:
    """Within the block, the checkpoint layer's *(after_calls+1)*-th
    rename dies.  With the default 0 and no rotation backups, that is
    the publishing ``os.replace`` itself: the temp file is complete but
    the checkpoint path still holds the previous version — exactly the
    window a kill between write and rename hits.  Larger values land
    the crash mid-rotation instead."""
    from repro.cloud import checkpoint

    previous = checkpoint._replace
    calls = 0

    def _crashing_replace(src, dst):
        nonlocal calls
        if calls >= after_calls:
            raise SimulatedCrash(
                f"simulated kill before replacing {dst}"
            )
        calls += 1
        previous(src, dst)

    checkpoint._replace = _crashing_replace
    try:
        yield
    finally:
        checkpoint._replace = previous


class DiskFullStream:
    """File wrapper whose writes fail with ``ENOSPC`` after a budget.

    Unlike :class:`TruncatingStream` (which simulates a *kill*, raising
    :class:`SimulatedCrash` that nothing may catch), this simulates the
    operating system refusing bytes: the raised :class:`OSError` is
    exactly what a full filesystem produces, so it exercises the
    degrade-don't-crash paths in the checkpoint and journal writers.
    """

    def __init__(self, fh: IO, limit: int = 0) -> None:
        """Fail writes once *limit* bytes have been accepted (0 = the
        very first write fails)."""
        self._fh = fh
        self._limit = limit
        self._written = 0

    def write(self, data) -> int:
        """Accept bytes up to the budget, then raise ``ENOSPC``."""
        size = len(data)
        if self._written + size > self._limit:
            room = self._limit - self._written
            if room > 0:
                self._fh.write(data[:room])
                self._written = self._limit
                self._fh.flush()
            raise OSError(errno.ENOSPC, "No space left on device (simulated)")
        self._written += size
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


@contextmanager
def disk_full_checkpoints(limit_bytes: int = 0) -> Iterator[None]:
    """Within the block, checkpoint saves hit ``ENOSPC`` after
    *limit_bytes* of payload — the checkpoint layer must clean up its
    temp file, record a ``disk_full`` event, and raise a
    :class:`~repro.errors.CheckpointError` (not a raw OSError)."""
    from repro.cloud import checkpoint

    previous = checkpoint._wrap_stream
    checkpoint._wrap_stream = lambda fh: DiskFullStream(fh, limit_bytes)
    try:
        yield
    finally:
        checkpoint._wrap_stream = previous


@contextmanager
def disk_full_journal(limit_bytes: int = 0) -> Iterator[None]:
    """Within the block, journal emits hit ``ENOSPC`` after
    *limit_bytes* — the journal must degrade to a silent no-op (drop
    events, count the failure) rather than crash its campaign."""
    from repro.perf import journal as journal_mod

    previous = journal_mod._wrap_stream
    budget = {"written": 0}

    def _wrap(fh):
        # One shared budget across emits: the "disk" has limit_bytes
        # free in total, not per line.
        stream = DiskFullStream(fh, limit_bytes)
        stream._written = budget["written"]

        class _Shared:
            def write(self, data):
                try:
                    return stream.write(data)
                finally:
                    budget["written"] = stream._written

            def __getattr__(self, name):
                return getattr(stream, name)

        return _Shared()

    journal_mod._wrap_stream = _wrap
    try:
        yield
    finally:
        journal_mod._wrap_stream = previous


class SlowClient:
    """A deliberately slow HTTP client for slow-loris style tests.

    Opens a raw socket to the daemon and trickles a request at
    *byte_delay* second intervals (or stalls entirely after
    ``stall_after`` bytes), so tests can assert that the server's
    per-connection timeout reaps the connection instead of letting it
    pin a handler thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        byte_delay: float = 0.2,
        stall_after: int | None = None,
    ) -> None:
        """Connect to ``host:port``; configure the trickle cadence."""
        import socket

        self.byte_delay = byte_delay
        self.stall_after = stall_after
        self.sock = socket.create_connection((host, port), timeout=30)

    def trickle(self, request: bytes) -> int:
        """Send *request* one byte at a time; returns bytes sent.

        Stops early (leaving the connection open and idle) once
        ``stall_after`` bytes have been sent — the stalled-forever
        client shape.
        """
        sent = 0
        for i in range(len(request)):
            if self.stall_after is not None and sent >= self.stall_after:
                break
            self.sock.sendall(request[i:i + 1])
            sent += 1
            time.sleep(self.byte_delay)
        return sent

    def close(self) -> None:
        """Close the raw socket (ignoring already-dead connections)."""
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SlowClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the socket on scope exit; never swallows exceptions."""
        self.close()
        return False


def kill_process(pid: int) -> None:
    """SIGKILL *pid* — the real thing, for subprocess chaos tests.

    A tiny wrapper so chaos tests read as intent (``kill_process``)
    rather than signal plumbing, and so the kill is uncatchable by
    construction — the daemon gets no chance to flush or checkpoint,
    which is exactly the crash-only recovery contract under test.
    """
    import signal as _signal

    os.kill(pid, _signal.SIGKILL)


def truncate_file(
    path: PathLike, keep_bytes: int | None = None, fraction: float = 0.5
) -> int:
    """Chop a file's tail, simulating a torn write or partial copy.

    Keeps *keep_bytes* bytes when given, else ``fraction`` of the
    current size.  Returns the resulting size.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = keep_bytes if keep_bytes is not None else int(size * fraction)
    keep = max(0, min(keep, size))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def flip_bits(path: PathLike, count: int = 32, seed: int = 0) -> None:
    """Deterministically XOR-flip *count* bits in the body of a file,
    simulating bit rot / a corrupted transfer.

    Flips land in the middle 80% of the file so the damage hits payload
    rather than only the container framing; with a fixed *seed* the
    damage is reproducible.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    rng = random.Random(seed)
    lo = len(data) // 10
    hi = max(lo + 1, len(data) - len(data) // 10)
    for _ in range(count):
        i = rng.randrange(lo, hi)
        data[i] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


#: Per-mode default for :class:`WorkerCrash`'s ``delay`` argument.
_CRASH_DELAYS = {"hang": 3600.0, "slow": 1.0, "interrupt": 0.0}


class WorkerCrash:
    """Picklable pool fault hook: fault the worker that picks up the
    block starting at *block_start*.

    Modes (the first two kill, the rest exercise the supervisor's
    retry/timeout ladder deterministically):

    * ``"raise"`` — raise :class:`SimulatedCrash` inside the worker
      (the exception travels back through the future; sibling workers
      keep running — the deterministic way to test salvage and
      retries).
    * ``"exit"`` — hard ``os._exit`` process death; the executor
      reports ``BrokenProcessPool`` for every unfinished future.
    * ``"interrupt"`` — sleep *delay* seconds (default 0), then raise
      :class:`KeyboardInterrupt`, reproducing a ^C that outruns
      ``except Exception`` handlers.
    * ``"hang"`` — sleep *delay* seconds (default 3600: longer than
      any sane ``block_timeout``), then raise :class:`SimulatedCrash`
      so a broken watchdog shows up as a failure rather than a silent
      pass.
    * ``"slow"`` — sleep *delay* seconds (default 1.0), then proceed
      *normally*: the block succeeds, it is merely late.  Distinguishes
      "slow but healthy" from "hung" in timeout tests.
    * ``"flaky"`` — fail the first *fails* attempts (default 2) with
      :class:`SimulatedCrash`, then succeed.  Attempts are counted in a
      one-byte-per-attempt file under *counter_dir* (required for this
      mode), so the count survives the process boundary between pool
      retries — exactly how a real transient fault behaves.

    The supervisor (:mod:`repro.parallel.supervisor`) deliberately
    treats :class:`SimulatedCrash` like any worker death: it is the
    injection target for the retry ladder, whereas the *checkpoint*
    layer must never swallow it.
    """

    def __init__(
        self,
        block_start: int,
        mode: str = "raise",
        delay: float | None = None,
        fails: int = 2,
        counter_dir: PathLike | None = None,
    ) -> None:
        if mode not in ("raise", "exit", "interrupt", "hang", "slow",
                        "flaky"):
            raise ValueError(f"unknown crash mode {mode!r}")
        if mode == "flaky" and counter_dir is None:
            raise ValueError(
                "mode='flaky' needs counter_dir: the attempt count must "
                "live on disk to survive worker process boundaries"
            )
        self.block_start = block_start
        self.mode = mode
        self.delay = (
            delay if delay is not None else _CRASH_DELAYS.get(mode, 0.0)
        )
        self.fails = fails
        self.counter_dir = str(counter_dir) if counter_dir is not None else None

    def _attempt_number(self) -> int:
        """Record one attempt in the cross-process counter file and
        return its 1-based number."""
        path = Path(self.counter_dir) / f"flaky_{self.block_start}.attempts"
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)
        return path.stat().st_size

    def __call__(self, block: Tuple[int, int, int]) -> None:
        if int(block[0]) != self.block_start:
            return
        if self.mode == "exit":
            os._exit(17)
        if self.mode == "interrupt":
            if self.delay > 0:
                time.sleep(self.delay)
            raise KeyboardInterrupt(f"simulated interrupt on block {block}")
        if self.mode == "hang":
            time.sleep(self.delay)
            raise SimulatedCrash(
                f"hung worker on block {block} outlived its {self.delay}s "
                "nap — no watchdog killed it"
            )
        if self.mode == "slow":
            time.sleep(self.delay)
            return
        if self.mode == "flaky":
            attempt = self._attempt_number()
            if attempt <= self.fails:
                raise SimulatedCrash(
                    f"flaky failure {attempt}/{self.fails} on block {block}"
                )
            return
        raise SimulatedCrash(f"simulated worker death on block {block}")

"""Reusable fault-injection harness for crash-safety tests.

The checkpoint layer (:mod:`repro.cloud.checkpoint`) routes its atomic
write through two module-level seams — ``_wrap_stream`` (applied to the
temp-file handle) and ``_replace`` (the publishing rename) — precisely
so these helpers can simulate crashes at the two interesting instants
without patching the real :mod:`os` module:

* :func:`kill_mid_write` — the process dies part-way through writing
  the temp file (a truncated ``<path>.tmp`` is left behind, the
  published checkpoint is untouched);
* :func:`kill_before_replace` — the temp file is fully written and
  fsynced but the process dies before ``os.replace`` publishes it (or,
  with ``after_calls``, mid-rotation).

Post-crash *file damage* is simulated directly on disk with
:func:`truncate_file` (torn tail) and :func:`flip_bits` (deterministic
bit rot), and :class:`WorkerCrash` is a picklable hook the pool driver
(:func:`repro.parallel.pool.sample_cloud_pool`) invokes per block so a
test can kill one specific worker — either by raising
:class:`SimulatedCrash` or by hard ``os._exit`` process death.

All injected crashes raise :class:`SimulatedCrash`, which deliberately
does **not** derive from :class:`~repro.errors.ReproError`: no library
handler may swallow it, just as no handler can catch a real SIGKILL.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Tuple, Union

__all__ = [
    "SimulatedCrash",
    "TruncatingStream",
    "WorkerCrash",
    "kill_mid_write",
    "kill_before_replace",
    "truncate_file",
    "flip_bits",
]

PathLike = Union[str, Path]


class SimulatedCrash(RuntimeError):
    """Raised by injected faults to stand in for a process kill."""


class TruncatingStream:
    """File wrapper that crashes after *limit* bytes have been written.

    The bytes that fit are really written (and flushed), so the temp
    file is left in exactly the torn state a mid-write kill produces.
    """

    def __init__(self, fh: IO[bytes], limit: int) -> None:
        self._fh = fh
        self._limit = limit
        self._written = 0

    def write(self, data) -> int:
        """Write up to the byte budget, then die like a killed process."""
        data = bytes(data)
        room = self._limit - self._written
        if len(data) > room:
            if room > 0:
                self._fh.write(data[:room])
                self._written = self._limit
            self._fh.flush()
            raise SimulatedCrash(
                f"simulated kill after writing {self._written} bytes"
            )
        self._written += len(data)
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


@contextmanager
def kill_mid_write(limit_bytes: int = 128) -> Iterator[None]:
    """Within the block, any checkpoint save dies after *limit_bytes*
    of payload, leaving a truncated temp file and the previously
    published checkpoint untouched."""
    from repro.cloud import checkpoint

    previous = checkpoint._wrap_stream
    checkpoint._wrap_stream = lambda fh: TruncatingStream(fh, limit_bytes)
    try:
        yield
    finally:
        checkpoint._wrap_stream = previous


@contextmanager
def kill_before_replace(after_calls: int = 0) -> Iterator[None]:
    """Within the block, the checkpoint layer's *(after_calls+1)*-th
    rename dies.  With the default 0 and no rotation backups, that is
    the publishing ``os.replace`` itself: the temp file is complete but
    the checkpoint path still holds the previous version — exactly the
    window a kill between write and rename hits.  Larger values land
    the crash mid-rotation instead."""
    from repro.cloud import checkpoint

    previous = checkpoint._replace
    calls = 0

    def _crashing_replace(src, dst):
        nonlocal calls
        if calls >= after_calls:
            raise SimulatedCrash(
                f"simulated kill before replacing {dst}"
            )
        calls += 1
        previous(src, dst)

    checkpoint._replace = _crashing_replace
    try:
        yield
    finally:
        checkpoint._replace = previous


def truncate_file(
    path: PathLike, keep_bytes: int | None = None, fraction: float = 0.5
) -> int:
    """Chop a file's tail, simulating a torn write or partial copy.

    Keeps *keep_bytes* bytes when given, else ``fraction`` of the
    current size.  Returns the resulting size.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = keep_bytes if keep_bytes is not None else int(size * fraction)
    keep = max(0, min(keep, size))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def flip_bits(path: PathLike, count: int = 32, seed: int = 0) -> None:
    """Deterministically XOR-flip *count* bits in the body of a file,
    simulating bit rot / a corrupted transfer.

    Flips land in the middle 80% of the file so the damage hits payload
    rather than only the container framing; with a fixed *seed* the
    damage is reproducible.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    rng = random.Random(seed)
    lo = len(data) // 10
    hi = max(lo + 1, len(data) - len(data) // 10)
    for _ in range(count):
        i = rng.randrange(lo, hi)
        data[i] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


class WorkerCrash:
    """Picklable pool fault hook: crash the worker that picks up the
    block starting at *block_start*.

    ``mode="raise"`` raises :class:`SimulatedCrash` inside the worker
    (the exception travels back through the future; sibling workers
    keep running — the deterministic way to test salvage).
    ``mode="exit"`` calls ``os._exit`` — hard process death; the
    executor reports ``BrokenProcessPool`` for every unfinished future.
    """

    def __init__(self, block_start: int, mode: str = "raise") -> None:
        if mode not in ("raise", "exit"):
            raise ValueError(f"unknown crash mode {mode!r}")
        self.block_start = block_start
        self.mode = mode

    def __call__(self, block: Tuple[int, int, int]) -> None:
        if int(block[0]) != self.block_start:
            return
        if self.mode == "exit":
            os._exit(17)
        raise SimulatedCrash(f"simulated worker death on block {block}")

"""graphB+ — discovering and balancing fundamental cycles in large
signed graphs.

A from-scratch Python reproduction of Alabandi, Tešić, Rusnak &
Burtscher, *"Discovering and Balancing Fundamental Cycles in Large
Signed Graphs"*, SC '21.

Quick start::

    from repro import from_edges, balance, sample_cloud

    graph = from_edges([(0, 1, +1), (0, 2, +1), (0, 3, -1),
                        (1, 3, +1), (2, 3, +1)])
    result = balance(graph, seed=0)          # one nearest balanced state
    cloud = sample_cloud(graph, 100, seed=0) # Alg. 2: 100 states
    print(cloud.status())                    # consensus status per vertex

Subpackages:

* :mod:`repro.graph`    — CSR signed graphs, generators, datasets, IO
* :mod:`repro.trees`    — spanning-tree samplers and enumeration
* :mod:`repro.core`     — the graphB+ algorithm (labeling, cycles, balancing)
* :mod:`repro.harary`   — Harary bipartitioning of balanced states
* :mod:`repro.cloud`    — frustration clouds and consensus attributes
* :mod:`repro.parallel` — workload profiling and simulated parallel machines
* :mod:`repro.analysis` — spectral comparator, election case study
* :mod:`repro.perf`     — counters, timers, memory model, reporting
"""

from repro.errors import (
    DatasetError,
    DisconnectedGraphError,
    EngineError,
    GraphFormatError,
    NotASpanningTreeError,
    NotBalancedError,
    ReproError,
)
from repro.graph import (
    SignedGraph,
    from_arrays,
    from_edges,
    largest_connected_component,
)
from repro.trees import SpanningTree, TreeSampler, bfs_tree, dfs_tree, wilson_tree
from repro.core import (
    BalanceResult,
    IncrementalBalancer,
    balance,
    balance_baseline,
    balance_forest,
    check_balance,
    is_balanced,
)
from repro.harary import HararyBipartition, harary_bipartition
from repro.cloud import (
    FrustrationCloud,
    exact_cloud,
    frustration_index_exact,
    sample_cloud,
)
from repro.analysis import analyze_consensus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphFormatError",
    "DisconnectedGraphError",
    "NotASpanningTreeError",
    "NotBalancedError",
    "DatasetError",
    "EngineError",
    # graph
    "SignedGraph",
    "from_edges",
    "from_arrays",
    "largest_connected_component",
    # trees
    "SpanningTree",
    "TreeSampler",
    "bfs_tree",
    "dfs_tree",
    "wilson_tree",
    # core
    "balance",
    "balance_forest",
    "balance_baseline",
    "BalanceResult",
    "IncrementalBalancer",
    "is_balanced",
    "check_balance",
    # harary
    "HararyBipartition",
    "harary_bipartition",
    # cloud
    "FrustrationCloud",
    "sample_cloud",
    "exact_cloud",
    "frustration_index_exact",
    # analysis
    "analyze_consensus",
]

"""Deterministic random-number plumbing.

All stochastic components of the library (tree sampling, graph
generators, schedulers) accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`as_generator`
normalizes those three spellings, and :func:`spawn` derives independent
child streams so that, e.g., each sampled spanning tree gets its own
reproducible stream regardless of how many trees preceded it.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn", "freeze_seed"]

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a nondeterministic generator, an ``int`` a seeded
    one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, index: int) -> np.random.Generator:
    """Derive the *index*-th independent child stream of *seed*.

    Unlike repeatedly calling the parent generator, the child stream for
    a given ``(seed, index)`` pair is stable even if other children were
    drawn in a different order — the property tree samplers rely on to
    make ``sample(k=100)[7]`` identical to ``sample_one(index=7)``.
    """
    if index < 0:
        raise ValueError(f"child index must be non-negative, got {index}")
    if isinstance(seed, np.random.Generator):
        # Fold the index into the parent's bit generator state by
        # spawning; Generator.spawn returns independent children.
        return seed.spawn(index + 1)[index]
    # ``SeedSequence(s).spawn(k)[i]`` is by construction
    # ``SeedSequence(s, spawn_key=(i,))`` — building the one child
    # directly keeps stream identity while making spawn O(1) instead of
    # O(index), which matters when campaigns resume at high indices.
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))


def freeze_seed(seed: SeedLike = None) -> int:
    """Collapse any seed spelling into a concrete 63-bit integer.

    Components that hand out *indexed* reproducible streams (e.g.
    :class:`repro.trees.sampler.TreeSampler`) freeze their seed once at
    construction so that stream *i* is identical no matter how many
    times or in what order it is requested — including when the
    original seed was ``None`` (fresh entropy) or a live generator.
    """
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return int(as_generator(seed).integers(0, 2**63 - 1))

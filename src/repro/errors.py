"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so downstream code can distinguish library failures
from programming mistakes with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphStoreError",
    "DisconnectedGraphError",
    "NotASpanningTreeError",
    "NotBalancedError",
    "DatasetError",
    "EngineError",
    "SupervisorError",
    "CheckpointError",
    "JournalError",
    "ServeError",
    "BalancedSearchError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """Raised when edge input is malformed (bad signs, self loops, etc.)."""


class GraphStoreError(GraphFormatError):
    """Raised when a packed graph-store file cannot be written, read, or
    trusted: bad magic, unsupported version, truncated payload, checksum
    or fingerprint mismatches, and malformed headers."""


class DisconnectedGraphError(ReproError):
    """Raised when an operation requires a connected graph but the input
    has more than one connected component.

    graphB+ (like the paper) processes the largest connected component;
    callers should extract it first via
    :func:`repro.graph.components.largest_connected_component`.
    """


class NotASpanningTreeError(ReproError):
    """Raised when a purported spanning tree fails validation
    (wrong edge count, cycle, edge not in the graph, ...)."""


class NotBalancedError(ReproError):
    """Raised when a graph expected to be balanced fails the Harary
    bipartition condition."""


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be materialized."""


class EngineError(ReproError):
    """Raised for invalid parallel-engine configurations (zero threads,
    unknown schedule, ...)."""


class SupervisorError(EngineError):
    """Raised by the self-healing campaign supervisor for invalid
    retry policies, and when a supervised campaign ends with no usable
    work at all (every block quarantined, or the deadline expired
    before anything completed).  When a :class:`RunReport` exists it is
    attached as the exception's ``report`` attribute."""

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class CheckpointError(ReproError):
    """Raised when a campaign checkpoint cannot be written, read, or
    safely resumed: corrupt/truncated files, fingerprint or shape
    mismatches against the graph, and campaign-parameter conflicts that
    would make a resumed run diverge from the original."""


class JournalError(ReproError):
    """Raised when a campaign event journal cannot be opened, or when a
    strict read encounters a corrupt line before the final (possibly
    torn) one."""


class BalancedSearchError(ReproError):
    """Raised by the balanced-subgraph workloads
    (:mod:`repro.balanced`) for invalid search parameters (negative
    tolerance, malformed side assignments, bad peel fractions)."""


class ServeError(ReproError):
    """Raised by the query daemon (:mod:`repro.serve`) for invalid
    serve configurations and for query-time failures the HTTP layer
    maps to 4xx/5xx responses (unknown vertex/edge ids, queries before
    the first snapshot, malformed deadline headers)."""

"""Harary bipartitioning of balanced states (§3, Fig. 6(h–i)).

For a balanced graph the vertices split into two camps such that every
positive edge stays inside a camp and every negative edge crosses —
the *Harary bipartition*.  The paper computes it by

1. ignoring the negative edges and labeling the connected components
   (the "agreement islands", Fig. 6(h)),
2. collapsing each component to a super-vertex and 2-coloring the
   collapsed graph with a BFS: even levels form one side, odd levels
   the other (Fig. 6(i)).

For a *balanced* input the collapsed graph is bipartite by
construction; :func:`harary_bipartition` verifies this and raises
:class:`NotBalancedError` otherwise, so it doubles as a balance check.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import NotBalancedError
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters

__all__ = [
    "HararyBipartition",
    "harary_bipartition",
    "positive_components",
    "sides_from_sign_to_root",
]


@dataclass(frozen=True)
class HararyBipartition:
    """A two-coloring of a balanced state.

    ``side`` assigns each vertex 0 or 1.  Side ids are normalized so
    vertex 0's component is on side 0, making equal states produce
    identical arrays.  ``components`` is the positive-subgraph
    component labeling from which the bipartition was built.
    """

    side: np.ndarray
    components: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.side)

    @cached_property
    def sizes(self) -> tuple[int, int]:
        """(|side 0|, |side 1|)."""
        ones = int(self.side.sum())
        return len(self.side) - ones, ones

    @cached_property
    def majority_side(self) -> int:
        """0 or 1: the larger side; ties return -1 (paper scores ties
        as δ = 0.5 for *both* sides in the status computation)."""
        a, b = self.sizes
        if a == b:
            return -1
        return 0 if a > b else 1

    def in_majority(self) -> np.ndarray:
        """Per-vertex status contribution δ_T(v): 1.0 for the larger
        side, 0.5 on ties, 0.0 otherwise (§2.3)."""
        maj = self.majority_side
        if maj == -1:
            return np.full(len(self.side), 0.5)
        return (self.side == maj).astype(np.float64)

    def key(self) -> bytes:
        """Hashable identity of the bipartition."""
        return self.side.tobytes()


def _check_signs(graph: SignedGraph, signs: np.ndarray | None) -> np.ndarray:
    """Normalize and validate an optional external sign array."""
    if signs is None:
        return graph.edge_sign
    signs = np.asarray(signs, dtype=np.int8)
    if signs.shape != (graph.num_edges,):
        raise NotBalancedError(
            f"sign array has shape {signs.shape}, expected ({graph.num_edges},)"
        )
    return signs


def positive_components(
    graph: SignedGraph, signs: np.ndarray | None = None
) -> np.ndarray:
    """Component labels of the subgraph keeping only positive edges.

    Multi-source min-label propagation with pointer jumping: every
    vertex starts as its own seed, each round pulls the smallest label
    across its positive edges and then compresses label chains
    (``label = label[label]``), so a fragmented state with thousands of
    agreement islands converges in O(log n) vectorized rounds instead
    of one Python pass per component.  Labels come out identical to a
    seed-in-id-order BFS: consecutive, ordered by each component's
    smallest vertex id.
    """
    n = graph.num_vertices
    signs = _check_signs(graph, signs)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    half_pos = signs[graph.adj_edge] > 0

    # Positive half-edges in CSR order: per-source segments stay
    # contiguous, so each round's per-vertex min is one reduceat.
    dst = graph.adj_vertex[half_pos]
    kept = np.concatenate([[0], np.cumsum(half_pos)])
    counts = kept[graph.indptr[1:]] - kept[graph.indptr[:-1]]
    has_pos = counts > 0
    seg_starts = np.concatenate([[0], np.cumsum(counts)])[:-1][has_pos]
    pos_vertices = np.nonzero(has_pos)[0]

    label = np.arange(n, dtype=np.int64)
    while True:
        cand = label.copy()
        if len(seg_starts):
            cand[pos_vertices] = np.minimum(
                cand[pos_vertices],
                np.minimum.reduceat(label[dst], seg_starts),
            )
        cand = cand[cand]
        if np.array_equal(cand, label):
            break
        label = cand
    # Labels are component-minimum vertex ids; renumber consecutively
    # (unique sorts by min id, matching the BFS seed order).
    _, out = np.unique(label, return_inverse=True)
    return out.astype(np.int64)


def sides_from_sign_to_root(s2r: np.ndarray) -> np.ndarray:
    """Harary sides straight from a balanced state's sign-to-root vector.

    For the balanced state of tree T, the sign of every edge equals
    ``s2r[u] * s2r[v]``, so positive edges join equal-``s2r`` vertices
    and negative edges join opposite ones — the two ``s2r`` sign
    classes *are* the Harary bipartition, which for a connected graph
    is unique up to a side swap.  Normalizing vertex 0 onto side 0
    therefore reproduces :func:`harary_bipartition`'s ``side`` array
    exactly, in O(n) with no positive-component BFS or collapsed-graph
    2-coloring (that oracle remains as the correctness check in the
    tests).

    Accepts a single ``(n,)`` vector or a stacked ``(B, n)`` batch;
    the output has the matching shape.
    """
    s2r = np.asarray(s2r, dtype=np.int8)
    ref = s2r[..., :1]  # each state's vertex 0, broadcast over the row
    return (s2r != ref).astype(np.int8)


def harary_bipartition(
    graph: SignedGraph,
    signs: np.ndarray | None = None,
    counters: Counters | None = None,
) -> HararyBipartition:
    """Compute the Harary bipartition of a balanced state.

    Parameters
    ----------
    graph:
        The structure; must be connected for the bipartition to be
        unique (up to side swap).
    signs:
        Balanced sign array to use instead of ``graph.edge_sign``
        (lets callers avoid materializing a :class:`SignedGraph` per
        balanced state).

    Raises
    ------
    NotBalancedError
        If some negative edge fails to cross the induced cut, i.e. the
        signs are not balanced.
    """
    n = graph.num_vertices
    use_signs = _check_signs(graph, signs)
    comp = positive_components(graph, use_signs)
    num_comp = int(comp.max() + 1) if n else 0
    if counters is not None:
        counters.parallel_region("harary.components", n)

    # Collapse: negative edges become edges between super-vertices.
    neg = np.nonzero(use_signs < 0)[0]
    cu = comp[graph.edge_u[neg]]
    cv = comp[graph.edge_v[neg]]
    inside = cu == cv
    if np.any(inside):
        e = int(neg[np.nonzero(inside)[0][0]])
        raise NotBalancedError(
            f"negative edge {e} connects vertices of the same positive "
            "component; the sign assignment is not balanced"
        )

    # 2-color the collapsed graph with a BFS over super-vertices,
    # implemented on (cu, cv) pairs via a simple adjacency dict — the
    # collapsed graph is tiny compared to Σ.
    side_of_comp = np.full(num_comp, -1, dtype=np.int8)
    adj: list[list[int]] = [[] for _ in range(num_comp)]
    for a, b in zip(cu.tolist(), cv.tolist()):
        adj[a].append(b)
        adj[b].append(a)
    for seed in range(num_comp):
        if side_of_comp[seed] != -1:
            continue
        side_of_comp[seed] = 0
        queue = [seed]
        while queue:
            c = queue.pop()
            for d in adj[c]:
                if side_of_comp[d] == -1:
                    side_of_comp[d] = 1 - side_of_comp[c]
                    queue.append(d)
                elif side_of_comp[d] == side_of_comp[c]:
                    raise NotBalancedError(
                        "collapsed negative-edge graph contains an odd "
                        "cycle; the sign assignment is not balanced"
                    )
    if counters is not None:
        counters.parallel_region("harary.two_coloring", num_comp)

    side = side_of_comp[comp]
    # Normalize: vertex 0 on side 0.
    if n and side[0] == 1:
        side = (1 - side).astype(np.int8)
    return HararyBipartition(side=side.astype(np.int8), components=comp)

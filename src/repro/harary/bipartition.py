"""Harary bipartitioning of balanced states (§3, Fig. 6(h–i)).

For a balanced graph the vertices split into two camps such that every
positive edge stays inside a camp and every negative edge crosses —
the *Harary bipartition*.  The paper computes it by

1. ignoring the negative edges and labeling the connected components
   (the "agreement islands", Fig. 6(h)),
2. collapsing each component to a super-vertex and 2-coloring the
   collapsed graph with a BFS: even levels form one side, odd levels
   the other (Fig. 6(i)).

For a *balanced* input the collapsed graph is bipartite by
construction; :func:`harary_bipartition` verifies this and raises
:class:`NotBalancedError` otherwise, so it doubles as a balance check.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import NotBalancedError
from repro.graph.csr import SignedGraph
from repro.perf.counters import Counters
from repro.util.arrays import gather_adjacency

__all__ = ["HararyBipartition", "harary_bipartition", "positive_components"]


@dataclass(frozen=True)
class HararyBipartition:
    """A two-coloring of a balanced state.

    ``side`` assigns each vertex 0 or 1.  Side ids are normalized so
    vertex 0's component is on side 0, making equal states produce
    identical arrays.  ``components`` is the positive-subgraph
    component labeling from which the bipartition was built.
    """

    side: np.ndarray
    components: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.side)

    @cached_property
    def sizes(self) -> tuple[int, int]:
        """(|side 0|, |side 1|)."""
        ones = int(self.side.sum())
        return len(self.side) - ones, ones

    @cached_property
    def majority_side(self) -> int:
        """0 or 1: the larger side; ties return -1 (paper scores ties
        as δ = 0.5 for *both* sides in the status computation)."""
        a, b = self.sizes
        if a == b:
            return -1
        return 0 if a > b else 1

    def in_majority(self) -> np.ndarray:
        """Per-vertex status contribution δ_T(v): 1.0 for the larger
        side, 0.5 on ties, 0.0 otherwise (§2.3)."""
        maj = self.majority_side
        if maj == -1:
            return np.full(len(self.side), 0.5)
        return (self.side == maj).astype(np.float64)

    def key(self) -> bytes:
        """Hashable identity of the bipartition."""
        return self.side.tobytes()


def _check_signs(graph: SignedGraph, signs: np.ndarray | None) -> np.ndarray:
    """Normalize and validate an optional external sign array."""
    if signs is None:
        return graph.edge_sign
    signs = np.asarray(signs, dtype=np.int8)
    if signs.shape != (graph.num_edges,):
        raise NotBalancedError(
            f"sign array has shape {signs.shape}, expected ({graph.num_edges},)"
        )
    return signs


def positive_components(
    graph: SignedGraph, signs: np.ndarray | None = None
) -> np.ndarray:
    """Component labels of the subgraph keeping only positive edges.

    Vectorized frontier BFS restricted to positive half-edges.
    """
    n = graph.num_vertices
    signs = _check_signs(graph, signs)
    half_pos = signs[graph.adj_edge] > 0

    label = np.full(n, -1, dtype=np.int64)
    comp = 0
    for seed in range(n):
        if label[seed] != -1:
            continue
        label[seed] = comp
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            pos, _src = gather_adjacency(graph.indptr, frontier)
            if len(pos) == 0:
                break
            pos = pos[half_pos[pos]]
            nbrs = graph.adj_vertex[pos]
            fresh = np.unique(nbrs[label[nbrs] == -1])
            if len(fresh) == 0:
                break
            label[fresh] = comp
            frontier = fresh
        comp += 1
    return label


def harary_bipartition(
    graph: SignedGraph,
    signs: np.ndarray | None = None,
    counters: Counters | None = None,
) -> HararyBipartition:
    """Compute the Harary bipartition of a balanced state.

    Parameters
    ----------
    graph:
        The structure; must be connected for the bipartition to be
        unique (up to side swap).
    signs:
        Balanced sign array to use instead of ``graph.edge_sign``
        (lets callers avoid materializing a :class:`SignedGraph` per
        balanced state).

    Raises
    ------
    NotBalancedError
        If some negative edge fails to cross the induced cut, i.e. the
        signs are not balanced.
    """
    n = graph.num_vertices
    use_signs = _check_signs(graph, signs)
    comp = positive_components(graph, use_signs)
    num_comp = int(comp.max() + 1) if n else 0
    if counters is not None:
        counters.parallel_region("harary.components", n)

    # Collapse: negative edges become edges between super-vertices.
    neg = np.nonzero(use_signs < 0)[0]
    cu = comp[graph.edge_u[neg]]
    cv = comp[graph.edge_v[neg]]
    inside = cu == cv
    if np.any(inside):
        e = int(neg[np.nonzero(inside)[0][0]])
        raise NotBalancedError(
            f"negative edge {e} connects vertices of the same positive "
            "component; the sign assignment is not balanced"
        )

    # 2-color the collapsed graph with a BFS over super-vertices,
    # implemented on (cu, cv) pairs via a simple adjacency dict — the
    # collapsed graph is tiny compared to Σ.
    side_of_comp = np.full(num_comp, -1, dtype=np.int8)
    adj: list[list[int]] = [[] for _ in range(num_comp)]
    for a, b in zip(cu.tolist(), cv.tolist()):
        adj[a].append(b)
        adj[b].append(a)
    for seed in range(num_comp):
        if side_of_comp[seed] != -1:
            continue
        side_of_comp[seed] = 0
        queue = [seed]
        while queue:
            c = queue.pop()
            for d in adj[c]:
                if side_of_comp[d] == -1:
                    side_of_comp[d] = 1 - side_of_comp[c]
                    queue.append(d)
                elif side_of_comp[d] == side_of_comp[c]:
                    raise NotBalancedError(
                        "collapsed negative-edge graph contains an odd "
                        "cycle; the sign assignment is not balanced"
                    )
    if counters is not None:
        counters.parallel_region("harary.two_coloring", num_comp)

    side = side_of_comp[comp]
    # Normalize: vertex 0 on side 0.
    if n and side[0] == 1:
        side = (1 - side).astype(np.int8)
    return HararyBipartition(side=side.astype(np.int8), components=comp)

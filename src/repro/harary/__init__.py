"""Harary bipartitioning of balanced states and cut extraction."""

from repro.harary.bipartition import (
    HararyBipartition,
    harary_bipartition,
    positive_components,
    sides_from_sign_to_root,
)
from repro.harary.cuts import crossing_edges, cut_size, harary_cut, verify_cut

__all__ = [
    "HararyBipartition",
    "harary_bipartition",
    "positive_components",
    "sides_from_sign_to_root",
    "harary_cut",
    "crossing_edges",
    "verify_cut",
    "cut_size",
]

"""Harary cutsets: the negative edge sets of balanced states.

In a balanced state every negative edge crosses the bipartition, so the
negative edge set *is* the Harary cut (Fig. 1(b) calls these the
negative-edge cutsets).  These helpers extract and sanity-check cuts
and map a cut back onto the *original* graph's sentiments, which is
what the frustration-cloud analysis consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotBalancedError
from repro.graph.csr import SignedGraph
from repro.harary.bipartition import HararyBipartition

__all__ = ["harary_cut", "verify_cut", "cut_size", "crossing_edges"]


def harary_cut(graph: SignedGraph, signs: np.ndarray) -> np.ndarray:
    """Edge ids of the Harary cut of the balanced state *signs*."""
    signs = np.asarray(signs, dtype=np.int8)
    return np.nonzero(signs < 0)[0]


def crossing_edges(graph: SignedGraph, bipartition: HararyBipartition) -> np.ndarray:
    """Edge ids crossing the given bipartition."""
    side = bipartition.side
    return np.nonzero(side[graph.edge_u] != side[graph.edge_v])[0]


def verify_cut(
    graph: SignedGraph, signs: np.ndarray, bipartition: HararyBipartition
) -> None:
    """Assert the defining cut property of a balanced state.

    Every negative edge must cross the bipartition and every positive
    edge must not; raises :class:`NotBalancedError` otherwise.
    """
    signs = np.asarray(signs, dtype=np.int8)
    side = bipartition.side
    crosses = side[graph.edge_u] != side[graph.edge_v]
    bad_neg = (signs < 0) & ~crosses
    bad_pos = (signs > 0) & crosses
    if np.any(bad_neg):
        e = int(np.nonzero(bad_neg)[0][0])
        raise NotBalancedError(f"negative edge {e} does not cross the cut")
    if np.any(bad_pos):
        e = int(np.nonzero(bad_pos)[0][0])
        raise NotBalancedError(f"positive edge {e} crosses the cut")


def cut_size(graph: SignedGraph, signs: np.ndarray) -> int:
    """Number of edges in the Harary cut (= negative edges)."""
    return len(harary_cut(graph, signs))

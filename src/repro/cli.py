"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
stats        Table-1-style statistics of a signed graph file
balance      compute one nearest balanced state and report the switches
cloud        sample a frustration cloud; write status/influence CSV
frustration  frustration-index bounds (exact / local search / cloud)
dataset      materialize a Table-1 synthetic stand-in to a file
graph        pack/inspect zero-copy mmap graph stores (``graph pack``)
model        modeled serial/OpenMP/CUDA campaign times (Tables 2–3)
memory       Table-4 memory model for given sizes or a named dataset
journal      summarize a campaign event journal (``cloud --journal``)
serve        crash-only HTTP query daemon with background cloud growth
balanced     balanced-subgraph discovery (``extract`` / ``tolerance``)

Graph files are auto-detected by extension: ``.mtx`` (Matrix Market),
``.tsv`` (KONECT), ``.npz`` (repro snapshot), ``.rsgs`` (packed
zero-copy graph store), anything else is parsed as a ``u v sign`` edge
list.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from repro.errors import ReproError

__all__ = ["main", "build_parser", "load_graph_file"]


def load_graph_file(path: str):
    """Load a signed graph, dispatching on the file extension."""
    from repro.graph.io import load_npz, read_edgelist
    from repro.graph.io_formats import read_konect, read_matrix_market

    suffix = Path(path).suffix.lower()
    if suffix == ".mtx":
        return read_matrix_market(path)
    if suffix == ".tsv":
        return read_konect(path)
    if suffix == ".npz":
        return load_npz(path)
    if suffix == ".rsgs":
        from repro.graph.store import GraphStore

        return GraphStore.open(path).graph()
    return read_edgelist(path)


def _write_graph(graph, path: str) -> None:
    from repro.graph.io import save_npz, write_edgelist
    from repro.graph.io_formats import write_konect, write_matrix_market

    suffix = Path(path).suffix.lower()
    if suffix == ".mtx":
        write_matrix_market(graph, path)
    elif suffix == ".tsv":
        write_konect(graph, path)
    elif suffix == ".npz":
        save_npz(graph, path)
    else:
        write_edgelist(graph, path)


def _lcc(graph):
    from repro.graph.components import largest_connected_component

    sub, ids = largest_connected_component(graph)
    return sub, ids


# ----------------------------------------------------------------------
# Subcommand implementations (each returns an exit code)
# ----------------------------------------------------------------------
def _cmd_stats(args) -> int:
    graph = load_graph_file(args.input)
    print(f"input: {args.input}")
    print(f"  vertices:           {graph.num_vertices:,}")
    print(f"  edges:              {graph.num_edges:,}")
    print(f"  negative edges:     {graph.num_negative_edges:,} "
          f"({graph.num_negative_edges / max(graph.num_edges, 1):.1%})")
    sub, _ = _lcc(graph)
    print("largest connected component:")
    print(f"  vertices:           {sub.num_vertices:,}")
    print(f"  edges:              {sub.num_edges:,}")
    print(f"  fundamental cycles: {sub.num_fundamental_cycles:,}")
    print(f"  max degree:         {sub.max_degree:,}")
    print(f"  avg degree:         {sub.avg_degree:.2f}")
    if args.profile:
        from repro.graph.stats import profile_graph

        print("profile:")
        for line in profile_graph(sub).render().splitlines():
            print(f"  {line}")
    return 0


def _cmd_balance(args) -> int:
    from repro.core import balance
    from repro.harary import harary_bipartition

    graph = load_graph_file(args.input)
    sub, ids = _lcc(graph)
    result = balance(sub, kernel=args.kernel, seed=args.seed)
    print(f"balanced {sub.num_fundamental_cycles:,} fundamental cycles; "
          f"{result.num_flips:,} edge sign(s) switched")
    bip = harary_bipartition(sub, result.signs)
    print(f"Harary bipartition sizes: {bip.sizes}")
    if args.show_flips:
        for e in np.nonzero(result.flipped)[0][: args.show_flips]:
            u = int(ids[sub.edge_u[e]])
            v = int(ids[sub.edge_v[e]])
            print(f"  flipped {u} {v}")
    if args.output:
        _write_graph(result.balanced_graph, args.output)
        print(f"balanced state written to {args.output}")
    return 0


def _policy_from_args(args):
    """Build a supervisor :class:`RetryPolicy` from the cloud flags, or
    ``None`` when none of them were given (plain unsupervised run)."""
    if (
        args.retries is None
        and args.block_timeout is None
        and args.deadline is None
        and not args.no_degrade
    ):
        return None
    from repro.parallel.supervisor import RetryPolicy

    return RetryPolicy(
        max_retries=args.retries if args.retries is not None else 2,
        block_timeout=args.block_timeout,
        deadline=args.deadline,
        degrade=not args.no_degrade,
    )


def _print_run_report(cloud) -> None:
    report = getattr(cloud, "run_report", None)
    if report is None:
        return
    print(f"supervisor: {report.summary()}")
    for entry in report.quarantined:
        print(f"  quarantined block {entry['block']} after "
              f"{entry['attempts']} attempt(s): {entry['error']}")
    if report.deadline_hit:
        print("  deadline reached; rerun with --resume to finish the "
              "remaining blocks")


def _resolve_graph_store(args, sub):
    """Open (or pack) the campaign's graph store, when one is in play.

    Returns an open :class:`~repro.graph.store.GraphStore` or ``None``.
    ``--graph-store PATH`` opens PATH when it exists (its fingerprint
    must match the campaign graph) and packs the graph there when it
    does not.  ``--shard-workers`` without ``--graph-store`` packs into
    a content-addressed file under the system temp directory, so
    repeated sharded runs of the same graph reuse one mapping.
    """
    if not getattr(args, "graph_store", None) and not getattr(
        args, "shard_workers", None
    ):
        return None
    import tempfile

    from repro.graph.store import GraphStore, graph_fingerprint

    fingerprint = graph_fingerprint(sub)
    path = args.graph_store
    if path is None:
        path = str(
            Path(tempfile.gettempdir())
            / f"repro-graph-{fingerprint[:16]}.rsgs"
        )
    path = Path(path)
    if path.exists():
        store = GraphStore.open(path)
        if store.fingerprint != fingerprint:
            raise ReproError(
                f"graph store {path} holds a different graph than "
                f"{args.input} (fingerprint mismatch); repack it with "
                "`repro graph pack` or point --graph-store elsewhere"
            )
        print(f"graph store: {path} (opened, zero-copy)")
    else:
        store = GraphStore.pack(sub, path)
        print(f"graph store: {path} (packed, "
              f"{path.stat().st_size:,} bytes)")
    return store


def _run_cloud_campaign(args, sub, policy):
    """Run the cloud campaign the flags describe; returns the cloud.

    Factored out of :func:`_cmd_cloud` so the observability scopes
    (``--journal`` / ``--trace-out``) can wrap exactly the campaign.
    """
    from repro.cloud import sample_cloud
    from repro.cloud.cloud import auto_batch_size
    from repro.parallel.pool import sample_cloud_pool

    if args.shard_workers is not None:
        if args.shard_workers < 1:
            raise ReproError("--shard-workers must be positive")
        if args.workers != 1:
            raise ReproError(
                "pass either --workers or --shard-workers, not both "
                "(--shard-workers implies the worker count)"
            )
        args.workers = args.shard_workers
        if args.steal_chunks is None:
            # Enough chunks that a straggler block delays only itself.
            args.steal_chunks = min(8 * args.shard_workers, args.states)
    store = _resolve_graph_store(args, sub)

    # Fresh campaigns fall back to the historical defaults; on --resume,
    # parameters the user did not spell out are inherited from (and
    # explicit ones validated against) the checkpoint's campaign.
    method = args.method if args.method is not None else "bfs"
    seed = args.seed if args.seed is not None else 0
    # --batch-size auto resolves against the (sub)graph up front so
    # every driver — and the checkpoint metadata — sees a concrete int.
    if args.batch_size == "auto":
        args.batch_size = auto_batch_size(sub.num_vertices)
        print(f"auto batch size: {args.batch_size}")
    batch_size = args.batch_size if args.batch_size is not None else 1
    swaps = (
        args.swaps_per_state if args.swaps_per_state is not None else 1
    )
    if args.resume:
        from repro.cloud.checkpoint import (
            recover_cloud,
            resume_cloud,
            validate_campaign,
        )

        cloud, meta, source = recover_cloud(args.resume, sub)
        print(f"resuming from {source} ({cloud.num_states} states)")
        if meta is not None and meta.done_blocks is not None:
            # Pool-salvage checkpoint: rerun only the missing blocks.
            params = validate_campaign(
                meta, method=args.method, seed=args.seed,
                batch_size=args.batch_size,
                swaps_per_state=args.swaps_per_state,
            )
            return sample_cloud_pool(
                sub, args.states, workers=max(args.workers, 1),
                method=params["method"], kernel=params["kernel"],
                seed=params["seed"], batch_size=params["batch_size"],
                store_states=params["store_states"],
                swaps_per_state=params["swaps_per_state"],
                checkpoint_path=args.checkpoint,
                keep_checkpoints=args.keep_checkpoints,
                resume_from=source,
                policy=policy,
                graph_store=store,
                steal_chunks=args.steal_chunks,
                flight_dir=args.flight_dir,
            )
        return resume_cloud(
            cloud,
            args.states,
            method=args.method,
            seed=args.seed,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            batch_size=args.batch_size,
            keep_checkpoints=args.keep_checkpoints,
            swaps_per_state=args.swaps_per_state,
        )
    if args.workers > 1 or policy is not None or store is not None:
        # A retry policy routes even --workers 1 through the pool
        # driver: the supervisor's in-process ladder lives there.
        return sample_cloud_pool(
            sub, args.states, workers=args.workers,
            method=method, seed=seed,
            batch_size=batch_size,
            swaps_per_state=swaps,
            checkpoint_path=args.checkpoint,
            keep_checkpoints=args.keep_checkpoints,
            policy=policy,
            graph_store=store,
            steal_chunks=args.steal_chunks,
            flight_dir=args.flight_dir,
        )
    return sample_cloud(
        sub, args.states, method=method, seed=seed,
        batch_size=batch_size,
        swaps_per_state=swaps,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        keep_checkpoints=args.keep_checkpoints,
    )


def _cmd_cloud(args) -> int:
    import contextlib

    from repro.perf.registry import set_metrics_enabled

    if args.no_metrics:
        set_metrics_enabled(False)
        if args.trace_out:
            print("warning: --trace-out records nothing under "
                  "--no-metrics (spans are off)", file=sys.stderr)
    graph = load_graph_file(args.input)
    sub, ids = _lcc(graph)
    policy = _policy_from_args(args)
    collector = None
    with contextlib.ExitStack() as scopes:
        if args.journal:
            from repro.perf.journal import journaling

            scopes.enter_context(journaling(args.journal))
        if args.trace_out:
            from repro.perf.tracing import collecting_trace

            collector = scopes.enter_context(collecting_trace())
        if args.flight_dir:
            from repro.perf.flight import (
                get_flight_recorder,
                install_flight_recorder,
                set_flight_recorder,
            )

            scopes.callback(set_flight_recorder, get_flight_recorder())
            install_flight_recorder(args.flight_dir, role="campaign-driver")
        cloud = _run_cloud_campaign(args, sub, policy)
    if args.journal:
        print(f"event journal written to {args.journal}")
    if args.trace_out:
        from repro.perf.trace_export import spans_to_events, write_chrome_trace

        events = spans_to_events(collector.events())
        write_chrome_trace(events, args.trace_out)
        print(f"Chrome trace written to {args.trace_out} "
              f"({len(collector)} spans)")
    _print_run_report(cloud)
    snap = getattr(cloud, "metrics", None)
    if args.trace:
        from repro.perf.export import phase_table

        print(phase_table(snap) if snap else "phase breakdown\n"
              "  (no metrics recorded; drop --no-metrics to collect them)")
    if args.metrics_out:
        from repro.perf.export import write_metrics

        write_metrics(snap or {}, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    status = cloud.status()
    print(f"cloud of {cloud.num_states} states over {sub.num_vertices:,} vertices")
    print(f"  status:    mean {status.mean():.3f} "
          f"[{status.min():.3f}, {status.max():.3f}]")
    print(f"  frustration index <= {cloud.frustration_upper_bound():,}")
    if args.output:
        from repro.cloud.export import write_vertex_csv

        write_vertex_csv(cloud, args.output, original_ids=ids)
        print(f"per-vertex attributes written to {args.output}")
    if args.edge_output:
        from repro.cloud.export import write_edge_csv

        write_edge_csv(cloud, args.edge_output, original_ids=ids)
        print(f"per-edge attributes written to {args.edge_output}")
    return 0


def _cmd_graph_pack(args) -> int:
    from repro.graph.store import GraphStore

    graph = load_graph_file(args.input)
    if args.no_lcc:
        packed = graph
    else:
        packed, _ = _lcc(graph)
        if packed.num_vertices != graph.num_vertices:
            print(f"packing largest connected component: "
                  f"{packed.num_vertices:,}/{graph.num_vertices:,} vertices "
                  f"(--no-lcc packs everything)")
    store = GraphStore.pack(packed, args.output)
    if args.verify:
        store.verify()
    size = Path(args.output).stat().st_size
    print(f"packed {packed.num_vertices:,} vertices / "
          f"{packed.num_edges:,} edges into {args.output} ({size:,} bytes"
          f"{', checksum verified' if args.verify else ''})")
    print(f"  fingerprint: {store.fingerprint}")
    return 0


def _cmd_graph_info(args) -> int:
    from repro.graph.store import GraphStore

    header = GraphStore.read_header(args.store)
    print(f"graph store: {args.store}")
    print(f"  format version: {header.version}")
    print(f"  vertices:       {header.num_vertices:,}")
    print(f"  edges:          {header.num_edges:,}")
    print(f"  fingerprint:    {header.fingerprint}")
    print(f"  checksum:       {header.checksum}")
    payload = sum(nbytes for *_rest, nbytes in header.arrays)
    print(f"  payload:        {payload:,} bytes in {len(header.arrays)} "
          "arrays")
    for name, dtype, shape, offset, nbytes in header.arrays:
        print(f"    {name:12s} {dtype:6s} shape={shape} "
              f"offset={offset} ({nbytes:,} bytes)")
    return 0


def _cmd_frustration(args) -> int:
    from repro.cloud import (
        frustration_index_exact,
        frustration_local_search,
        sample_cloud,
    )

    graph = load_graph_file(args.input)
    sub, _ = _lcc(graph)
    if args.exact:
        fr, _ = frustration_index_exact(sub)
        print(f"exact frustration index: {fr}")
    heur, _ = frustration_local_search(sub, restarts=args.restarts, seed=args.seed)
    print(f"local-search upper bound: {heur}")
    if args.states:
        bound = sample_cloud(sub, args.states, seed=args.seed).frustration_upper_bound()
        print(f"cloud upper bound ({args.states} states): {bound}")
    return 0


def _cmd_dataset(args) -> int:
    from repro.graph.datasets import CATALOG, load

    if args.list:
        for name, spec in CATALOG.items():
            print(f"{name:24s} {spec.category:16s} "
                  f"paper: {spec.paper_vertices:>10,} v  "
                  f"{spec.paper_edges:>11,} e  scale {spec.default_scale:g}")
        return 0
    if not args.name:
        print("dataset: provide a name or --list", file=sys.stderr)
        return 2
    graph = load(args.name, scale=args.scale, seed=args.seed)
    print(f"built {args.name}: {graph}")
    if args.output:
        _write_graph(graph, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_model(args) -> int:
    from repro.parallel import (
        CUDA_MACHINE,
        OPENMP_MACHINE,
        SERIAL_MACHINE,
        model_run_multi,
    )

    graph = load_graph_file(args.input)
    sub, _ = _lcc(graph)
    machines = {
        "serial": SERIAL_MACHINE,
        "openmp": OPENMP_MACHINE,
        "cuda": CUDA_MACHINE,
    }
    runs = model_run_multi(
        sub, machines, num_trees=args.trees, sample_trees=args.sample_trees,
        seed=args.seed,
    )
    print(f"modeled graphB+ campaign: {args.trees} BFS trees, "
          f"{runs['serial'].num_cycles_per_tree:,.0f} cycles/tree")
    for name, run in runs.items():
        print(f"  {name:>7s}: {run.graphb_seconds:10.2f} s   "
              f"{run.throughput_mcps:8.1f} Mcycles/s")
    if args.timeline or args.trace_out:
        from repro.parallel import collect_workload
        from repro.trees import TreeSampler

        tree = TreeSampler(sub, seed=args.seed).tree(0)
        w = collect_workload(sub, tree)
        degrees = np.diff(sub.indptr)
        events = []
        for pid, (name, machine) in enumerate(machines.items(), start=1):
            _times, profile = machine.profile(w)
            if args.timeline:
                print()
                print(profile.report(degrees=degrees))
            if args.trace_out:
                from repro.perf.trace_export import profile_to_events

                events.extend(profile_to_events(profile, pid=pid))
        if args.trace_out:
            from repro.perf.trace_export import write_chrome_trace

            write_chrome_trace(events, args.trace_out)
            print(f"\nChrome trace written to {args.trace_out} "
                  f"({len(events)} events)")
    return 0


def _cmd_journal(args) -> int:
    from repro.perf.journal import render_summary, summarize_journal

    summary = summarize_journal(args.journal)
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _trace_show(args) -> int:
    """``repro trace show FILE``: summarize a Chrome trace document."""
    import json

    from repro.perf.trace_export import load_chrome_trace

    if not args.trace_file:
        print("trace show: provide the trace JSON path", file=sys.stderr)
        return 2
    doc = load_chrome_trace(args.trace_file)
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    by_trace: dict = {}
    by_name: dict = {}
    pids = set()
    for e in events:
        pids.add(e["pid"])
        args_ = e.get("args", {})
        tid = args_.get("trace_id")
        if tid:
            by_trace.setdefault(tid, []).append(e)
        name = e["name"]
        total, calls = by_name.get(name, (0.0, 0))
        by_name[name] = (total + float(e.get("dur", 0.0)) / 1e6, calls + 1)
    summary = {
        "file": args.trace_file,
        "events": len(events),
        "processes": sorted(pids),
        "traces": {
            tid: {
                "spans": len(evs),
                "processes": sorted({e["pid"] for e in evs}),
                "wall_seconds": round(
                    (max(e["ts"] + e["dur"] for e in evs)
                     - min(e["ts"] for e in evs)) / 1e6, 6),
            }
            for tid, evs in sorted(by_trace.items())
        },
        "spans": {
            name: {"seconds": round(total, 6), "calls": calls}
            for name, (total, calls) in sorted(
                by_name.items(), key=lambda kv: kv[1][0], reverse=True)
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{args.trace_file}: {len(events)} span events across "
          f"{len(pids)} process(es)")
    for tid, info in summary["traces"].items():
        procs = ", ".join(str(p) for p in info["processes"])
        print(f"  trace {tid}: {info['spans']} spans over "
              f"{info['wall_seconds']:.4f}s on pids [{procs}]")
    print("  hottest spans:")
    for name, stat in list(summary["spans"].items())[:10]:
        print(f"    {name:<24} {stat['seconds']:>10.4f}s  "
              f"x{stat['calls']}")
    return 0


def _cmd_trace(args) -> int:
    if args.input == "show":
        return _trace_show(args)

    from repro.core.trace import trace_cycle
    from repro.trees import TreeSampler

    graph = load_graph_file(args.input)
    sub, _ = _lcc(graph)
    tree = TreeSampler(sub, seed=args.seed).tree(0)
    non_tree = tree.non_tree_edge_ids()
    if len(non_tree) == 0:
        print("the graph is a tree: no fundamental cycles to trace")
        return 0
    count = min(args.cycles, len(non_tree))
    for e in non_tree[:count]:
        print(trace_cycle(sub, tree, int(e)).describe())
        print()
    return 0


def _cmd_flight(args) -> int:
    """``repro flight dump PATH``: print crash flight-recorder dumps."""
    import json
    import os

    from repro.perf.flight import find_flight_dumps, read_flight_dump

    paths = (
        find_flight_dumps(args.path)
        if os.path.isdir(args.path)
        else [args.path]
    )
    if not paths:
        print(f"no flight dumps under {args.path}", file=sys.stderr)
        return 1
    shown = 0
    for path in paths:
        try:
            doc = read_flight_dump(path)
        except Exception as exc:  # torn/alien file: report, keep going
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            continue
        shown += 1
        if args.json:
            print(json.dumps(doc, sort_keys=True))
            continue
        inflight = doc.get("inflight")
        print(f"{path}: pid {doc['pid']}, {len(doc['events'])} events")
        if inflight:
            detail = {k: v for k, v in inflight.items() if k != "since"}
            print(f"  IN FLIGHT at last dump: {detail}")
        else:
            print("  nothing in flight at last dump")
        for event in doc["events"][-args.events:]:
            fields = {k: v for k, v in event.items()
                      if k not in ("kind", "wall")}
            print(f"    {event['kind']}: {fields}")
    return 0 if shown else 1


def _cmd_communities(args) -> int:
    from repro.cloud import consensus_communities, polarization, sample_cloud

    graph = load_graph_file(args.input)
    sub, ids = _lcc(graph)
    cloud = sample_cloud(sub, args.states, seed=args.seed)
    labels = consensus_communities(cloud, threshold=args.threshold)
    sizes = np.bincount(labels)
    order = np.argsort(sizes)[::-1]
    print(f"{int(labels.max()) + 1} consensus communities at "
          f"co-side threshold {args.threshold} ({args.states} states)")
    print(f"graph polarization: {polarization(cloud):.3f}")
    for rank, c in enumerate(order[: args.top]):
        print(f"  community #{rank + 1}: {int(sizes[c])} vertices")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("vertex,community\n")
            for i in range(sub.num_vertices):
                fh.write(f"{int(ids[i])},{int(labels[i])}\n")
        print(f"memberships written to {args.output}")
    return 0


def _cmd_convergence(args) -> int:
    from repro.cloud.convergence import split_half_agreement, status_trajectory

    graph = load_graph_file(args.input)
    sub, _ = _lcc(graph)
    cps = sorted({max(args.max_states // (2**k), 4) for k in range(4)})
    traj = status_trajectory(sub, cps, seed=args.seed)
    print("status convergence (max per-vertex change between checkpoints):")
    for cp, change in zip(traj.checkpoints, traj.max_step_change):
        shown = "-" if np.isinf(change) else f"{change:.4f}"
        print(f"  {int(cp):>6d} states: {shown}")
    r = split_half_agreement(sub, args.max_states, seed=args.seed + 1)
    print(f"split-half reliability at {args.max_states} states: {r:.3f}")
    return 0


def _cmd_memory(args) -> int:
    from repro.perf.memory import cuda_device_mb, cuda_host_mb, openmp_host_mb

    if args.dataset:
        from repro.graph.datasets import paper_stats

        spec = paper_stats(args.dataset)
        n, m = spec.paper_vertices, spec.paper_edges
        print(f"{args.dataset} at full published size: n={n:,}, m={m:,}")
    else:
        if args.vertices is None or args.edges is None:
            print("memory: provide --dataset or both --vertices/--edges",
                  file=sys.stderr)
            return 2
        n, m = args.vertices, args.edges
    print(f"  OpenMP host: {openmp_host_mb(n, m):12.1f} MB")
    print(f"  CUDA device: {cuda_device_mb(n, m):12.1f} MB")
    print(f"  CUDA host:   {cuda_host_mb(n, m):12.1f} MB")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    graph = load_graph_file(args.input)
    sub, _ids = _lcc(graph)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        target_states=args.states,
        grow_step=args.grow_step,
        grow=not args.no_grow,
        grow_delay_ms=args.grow_delay_ms,
        method=args.method,
        kernel=args.kernel,
        seed=args.seed,
        batch_size=args.batch_size,
        swaps_per_state=args.swaps_per_state,
        checkpoint=args.checkpoint,
        keep_checkpoints=args.keep_checkpoints,
        journal=args.journal,
        qps=args.qps,
        burst=args.burst,
        cache_size=args.cache_size,
        breaker_p99_ms=args.breaker_p99_ms,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
        drain_budget=args.drain_budget,
        request_timeout=args.request_timeout,
        access_log=args.access_log,
        debug_trace=args.debug_trace,
        flight_dir=args.flight_dir,
        trace_max_events=args.trace_max_events,
        grow_workers=args.grow_workers,
    )
    return run_server(sub, config)


def _balanced_output(report, args) -> None:
    """Write a balanced-workload report as JSON or per-vertex CSV.

    The format follows ``--format`` when given, else the output path's
    extension (``.csv`` means CSV, anything else JSON).
    """
    import json

    path = Path(args.output)
    fmt = args.format
    if fmt is None:
        fmt = "csv" if path.suffix.lower() == ".csv" else "json"
    if fmt == "json":
        path.write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    else:
        best = report.best
        lines = ["vertex,side"]
        lines.extend(
            f"{int(v)},{int(s)}"
            for v, s in zip(best.vertices, best.sides)
        )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"{fmt} report written to {args.output}")


def _cmd_balanced(args) -> int:
    from repro.balanced import run_balanced

    workload = args.balanced_command
    tolerance = getattr(args, "tolerance", 0)
    # .rsgs inputs go to the runner as paths so pool workers share the
    # zero-copy mapping; everything else is loaded here.
    if Path(args.input).suffix.lower() == ".rsgs":
        source = args.input
    else:
        source = load_graph_file(args.input)
    report = run_balanced(
        source,
        workload=workload,
        tolerance=tolerance,
        restarts=args.restarts,
        seed=args.seed,
        peel_frac=args.peel_frac,
        polish=not args.no_polish,
        workers=args.workers,
    )
    best = report.best
    print(f"{workload}: kept {best.num_vertices:,}/"
          f"{report.num_vertices:,} vertices, {best.num_edges:,} edges "
          f"({best.unsatisfied_edges:,} unsatisfied, tolerance "
          f"{report.tolerance}) from seed '{best.seed_label}' "
          f"in {report.wall_seconds:.3f}s")
    for row in report.per_seed:
        print(f"  seed {row['label']:10s} {row['num_vertices']:6,} "
              f"vertices {row['num_edges']:7,} edges "
              f"{row['unsatisfied_edges']:5,} unsatisfied")
    if report.degraded_restarts:
        print(f"  ({report.degraded_restarts} restart(s) degraded to "
              "in-process execution after worker failures)")
    if args.metrics_out:
        from repro.perf.export import write_metrics
        from repro.perf.registry import get_registry

        write_metrics(get_registry().snapshot(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.output:
        _balanced_output(report, args)
    return 0


# ----------------------------------------------------------------------
def _batch_size_arg(value: str):
    """--batch-size accepts a positive int or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid batch size {value!r}: expected an integer or 'auto'"
        )
    if parsed < 1:
        raise argparse.ArgumentTypeError("batch size must be positive")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="graphB+ — balance signed graphs and analyze consensus",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="graph statistics (Table-1 style)")
    p.add_argument("input")
    p.add_argument("--profile", action="store_true",
                   help="also fit degree percentiles / power-law / assortativity")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("balance", help="compute one nearest balanced state")
    p.add_argument("input")
    p.add_argument("--kernel", choices=["walk", "lockstep", "parity"],
                   default="lockstep")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--show-flips", type=int, default=0, metavar="K",
                   help="print up to K switched edges")
    p.add_argument("--output", help="write the balanced state to a file")
    p.set_defaults(func=_cmd_balance)

    p = sub.add_parser("cloud", help="sample a frustration cloud (Alg. 2)")
    p.add_argument("input")
    p.add_argument("--states", type=int, default=100)
    _tree_methods = ["bfs", "bfs-low-degree", "dfs", "wilson", "swap"]
    p.add_argument("--method", choices=_tree_methods,
                   default=None,
                   help="tree sampling method (default bfs; 'swap' derives "
                        "each tree from the previous one by edge swaps — "
                        "much faster, statistically equivalent; with "
                        "--resume, inherited from the checkpoint's campaign)")
    p.add_argument("--tree-method", dest="method", choices=_tree_methods,
                   help="alias for --method")
    p.add_argument("--swaps-per-state", type=int, default=None, metavar="N",
                   help="edge swaps applied per state with --method swap "
                        "(default 1; more swaps decorrelate successive "
                        "states at more cost per state)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--graph-store", metavar="PATH",
                   help="run the campaign against a packed zero-copy "
                        "graph store: workers mmap PATH read-only and "
                        "share one page-cache copy of the graph instead "
                        "of receiving pickled copies; packed from the "
                        "input's largest connected component when PATH "
                        "does not exist yet")
    p.add_argument("--shard-workers", type=int, default=None, metavar="N",
                   help="sharded campaign shorthand: N store-backed "
                        "workers with work-stealing over fine block "
                        "ranges (~8 chunks per worker); packs a "
                        "content-addressed store under the temp dir "
                        "when --graph-store is not given")
    p.add_argument("--steal-chunks", type=int, default=None, metavar="K",
                   help="split the campaign into K fine contiguous "
                        "blocks feeding the shared worker queue (work "
                        "stealing); default: static one-block-per-worker "
                        "partitioning, or 8 per worker with "
                        "--shard-workers")
    p.add_argument("--batch-size", type=_batch_size_arg, default=None,
                   metavar="B",
                   help="balance B spanning trees per kernel invocation "
                        "(the tree-batched engine; default 1 = sequential; "
                        "'auto' picks a cache-sized batch for the graph; "
                        "with --resume, inherited from the checkpoint)")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default 0; with --resume, inherited "
                        "from the checkpoint's campaign)")
    p.add_argument("--output", help="write the per-vertex attribute CSV")
    p.add_argument("--edge-output", help="write the per-edge attribute CSV")
    p.add_argument("--checkpoint",
                   help="write crash-safe NPZ cloud checkpoints (atomic "
                        "write; on a pool-worker crash, completed blocks "
                        "are salvaged here)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="re-checkpoint every N new states (sequential "
                        "campaigns; pools checkpoint on completion/crash)")
    p.add_argument("--keep-checkpoints", type=int, default=2, metavar="K",
                   help="rotate the last K good checkpoints "
                        "(path, path.1, ...; default 2)")
    p.add_argument("--resume",
                   help="resume a campaign from an NPZ checkpoint, falling "
                        "back to its newest loadable rotation backup; "
                        "mismatched --method/--seed/--batch-size fail loudly")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="run under the self-healing supervisor: retry each "
                        "failed block up to N times with exponential "
                        "backoff before quarantining it")
    p.add_argument("--block-timeout", type=float, default=None, metavar="S",
                   help="supervisor watchdog: kill and retry any block "
                        "running longer than S seconds (implies --retries 2 "
                        "unless given)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="stop the campaign cleanly after S seconds, "
                        "checkpointing completed blocks for --resume "
                        "(implies --retries 2 unless given)")
    p.add_argument("--no-degrade", action="store_true",
                   help="never fall back to in-process execution for "
                        "blocks that exhaust their pool retries; "
                        "quarantine them instead")
    p.add_argument("--trace", action="store_true",
                   help="print the per-phase time breakdown (tree "
                        "sampling, kernels, Harary folds, checkpoints) "
                        "after the campaign")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the campaign's metrics snapshot to PATH "
                        "(Prometheus text format for .prom, JSON "
                        "otherwise)")
    p.add_argument("--no-metrics", action="store_true",
                   help="disable metrics/span collection entirely "
                        "(near-zero instrumentation overhead)")
    p.add_argument("--journal", metavar="PATH",
                   help="append structured campaign events (start, block "
                        "completions, retries, checkpoints, convergence "
                        "snapshots) to a crash-safe JSONL journal; "
                        "inspect it with `repro journal summarize`")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the campaign's span timeline as Chrome "
                        "trace JSON (open in Perfetto / chrome://tracing)")
    p.add_argument("--flight-dir", metavar="DIR",
                   help="arm crash flight recorders in the driver and "
                        "every pool worker; a killed process leaves "
                        "DIR/flight-<pid>.json naming its in-flight "
                        "block (`repro flight dump DIR`)")
    p.set_defaults(func=_cmd_cloud)

    p = sub.add_parser("frustration", help="frustration-index bounds")
    p.add_argument("input")
    p.add_argument("--exact", action="store_true",
                   help="exact enumeration (n <= 24 only)")
    p.add_argument("--states", type=int, default=0,
                   help="also report the cloud bound over N states")
    p.add_argument("--restarts", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_frustration)

    p = sub.add_parser("dataset", help="materialize a Table-1 stand-in")
    p.add_argument("name", nargs="?")
    p.add_argument("--list", action="store_true")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output")
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("graph",
                       help="pack or inspect zero-copy mmap graph stores")
    graph_sub = p.add_subparsers(dest="graph_command", required=True)
    gp = graph_sub.add_parser(
        "pack",
        help="serialize a graph into a flat checksummed store file that "
             "campaign workers mmap read-only (zero pickling)")
    gp.add_argument("input", help="graph file (any supported format)")
    gp.add_argument("output", help="store file to write (.rsgs)")
    gp.add_argument("--no-lcc", action="store_true",
                    help="pack the whole graph instead of its largest "
                         "connected component (campaigns need a "
                         "connected graph)")
    gp.add_argument("--verify", action="store_true",
                    help="re-read the packed payload and verify its "
                         "checksum before reporting success")
    gp.set_defaults(func=_cmd_graph_pack)
    gi = graph_sub.add_parser(
        "info", help="print a store file's header (no payload read)")
    gi.add_argument("store", help="packed store file")
    gi.set_defaults(func=_cmd_graph_info)

    p = sub.add_parser("model", help="modeled serial/OpenMP/CUDA campaign")
    p.add_argument("input")
    p.add_argument("--trees", type=int, default=1000)
    p.add_argument("--sample-trees", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeline", action="store_true",
                   help="print each machine's execution-timeline profile "
                        "(occupancy, load imbalance, launch overhead, "
                        "straggler vertices with degrees)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the modeled machine timelines as Chrome "
                        "trace JSON (one process per machine)")
    p.set_defaults(func=_cmd_model)

    p = sub.add_parser("journal",
                       help="inspect a campaign event journal (JSONL)")
    p.add_argument("action", choices=["summarize"],
                   help="summarize: replay the journal into campaign "
                        "counters and reconcile with the run report")
    p.add_argument("journal", help="path to a --journal JSONL file")
    p.add_argument("--json", action="store_true",
                   help="print the summary as JSON instead of text")
    p.set_defaults(func=_cmd_journal)

    p = sub.add_parser(
        "trace",
        help="narrate cycle traversals (Fig. 6 style), or `trace show "
             "FILE` to summarize a Chrome trace",
    )
    p.add_argument("input",
                   help="graph file to narrate, or the literal word "
                        "'show' to inspect a recorded trace")
    p.add_argument("trace_file", nargs="?", default=None,
                   help="with 'show': path to a --trace-out / "
                        "/debug/trace Chrome trace JSON")
    p.add_argument("--cycles", type=int, default=3,
                   help="number of fundamental cycles to narrate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="with 'show': print the summary as JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "flight",
        help="read crash flight-recorder dumps (--flight-dir)",
        description="Dump the black boxes: print every readable "
                    "flight-<pid>.json under DIR (or one file), "
                    "including what each process had in flight when "
                    "it last dumped.",
    )
    p.add_argument("action", choices=["dump"],
                   help="dump: print the recorded events per process")
    p.add_argument("path", help="a flight dump file or the directory "
                                "holding flight-*.json dumps")
    p.add_argument("--json", action="store_true",
                   help="print raw dump documents as JSON lines")
    p.add_argument("--events", type=int, default=8,
                   help="trailing ring events to show per process "
                        "(default 8)")
    p.set_defaults(func=_cmd_flight)

    p = sub.add_parser("communities", help="consensus communities from the cloud")
    p.add_argument("input")
    p.add_argument("--states", type=int, default=50)
    p.add_argument("--threshold", type=float, default=0.9)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write vertex,community CSV")
    p.set_defaults(func=_cmd_communities)

    p = sub.add_parser("convergence", help="status sampling-convergence check")
    p.add_argument("input")
    p.add_argument("--max-states", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_convergence)

    p = sub.add_parser("memory", help="Table-4 memory model")
    p.add_argument("--dataset")
    p.add_argument("--vertices", type=int)
    p.add_argument("--edges", type=int)
    p.set_defaults(func=_cmd_memory)

    p = sub.add_parser(
        "serve",
        help="crash-only frustration-cloud query daemon (HTTP)",
        description="Serve consensus queries over HTTP while growing the "
                    "cloud in the background.  Boot always recovers from "
                    "the checkpoint chain (crash-only); SIGTERM drains "
                    "in-flight requests, checkpoints, and exits 0.",
    )
    p.add_argument("input")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default 0 = pick an ephemeral port "
                        "and print it)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port to PATH (atomic; for "
                        "scripts/tests discovering an ephemeral port)")
    p.add_argument("--states", type=int, default=256,
                   help="grow the cloud to this many states (default 256)")
    p.add_argument("--grow-step", type=int, default=16,
                   help="states sampled per background growth round "
                        "(also the checkpoint/snapshot cadence)")
    p.add_argument("--no-grow", action="store_true",
                   help="serve the recovered checkpoint only; no "
                        "background growth")
    p.add_argument("--grow-delay-ms", type=float, default=0.0,
                   help="pause between growth rounds (throttles growth "
                        "on busy hosts)")
    p.add_argument("--method",
                   choices=["bfs", "bfs-low-degree", "dfs", "wilson",
                            "swap"],
                   default=None,
                   help="tree sampling method (default: inherit from the "
                        "checkpoint's campaign, else bfs)")
    p.add_argument("--kernel", choices=["walk", "lockstep", "parity"],
                   default=None,
                   help="balancing kernel (default: inherit, else lockstep)")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed (default: inherit, else 0)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="trees per batched kernel call (default: inherit, "
                        "else 1)")
    p.add_argument("--swaps-per-state", type=int, default=None,
                   help="edge swaps per state for --method swap")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="checkpoint chain to recover from at boot and "
                        "rewrite every growth round")
    p.add_argument("--keep-checkpoints", type=int, default=2,
                   help="rotated checkpoint files to keep (default 2)")
    p.add_argument("--journal", metavar="PATH",
                   help="append lifecycle/degradation events to this "
                        "JSONL journal")
    p.add_argument("--qps", type=float, default=0.0,
                   help="admission-control rate in queries/sec "
                        "(default 0 = unlimited)")
    p.add_argument("--burst", type=int, default=32,
                   help="admission token-bucket burst size (default 32)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="LRU result-cache entries (0 disables; "
                        "default 1024)")
    p.add_argument("--breaker-p99-ms", type=float, default=0.0,
                   help="open the growth-shedding circuit breaker when "
                        "query p99 exceeds this many ms (0 disables)")
    p.add_argument("--breaker-window", type=int, default=128,
                   help="requests in the breaker's sliding p99 window")
    p.add_argument("--breaker-cooldown", type=float, default=2.0,
                   help="healthy seconds before a tripped breaker closes")
    p.add_argument("--drain-budget", type=float, default=10.0,
                   help="seconds SIGTERM waits for in-flight requests "
                        "(default 10)")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   help="per-connection socket timeout bounding slow "
                        "clients (default 10s)")
    p.add_argument("--access-log", metavar="PATH",
                   help="append one structured JSONL line per query "
                        "(request_id, path, status, latency_ms, cache, "
                        "outcome); off by default")
    p.add_argument("--debug-trace", action="store_true",
                   help="collect request-scoped spans and enable the "
                        "/debug/trace and /debug/grow endpoints")
    p.add_argument("--flight-dir", metavar="DIR",
                   help="arm crash flight recorders (daemon + growth "
                        "pool workers); dumps land as DIR/flight-<pid>"
                        ".json, readable via `repro flight dump DIR`")
    p.add_argument("--trace-max-events", type=int, default=4096,
                   help="span-buffer bound while --debug-trace is on "
                        "(default 4096; oldest requests drop first)")
    p.add_argument("--grow-workers", type=int, default=1,
                   help="processes per growth round (>1 fans rounds "
                        "over the supervised pool; default 1)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "balanced",
        help="balanced-subgraph discovery workloads",
        description="Find large (near-)balanced vertex subsets: "
                    "'extract' deletes vertices until the induced "
                    "subgraph is exactly balanced; 'tolerance' allows "
                    "each kept vertex up to t unbalanced incident "
                    "edges.",
    )
    bsub = p.add_subparsers(dest="balanced_command", required=True)

    def _balanced_common(bp) -> None:
        bp.add_argument("input",
                        help="graph file; .rsgs stores are mapped "
                             "zero-copy and shared with pool workers")
        bp.add_argument("--restarts", type=int, default=4,
                        help="spanning-tree seed restarts besides the "
                             "spectral seed (default 4)")
        bp.add_argument("--seed", type=int, default=0)
        bp.add_argument("--peel-frac", type=float, default=0.25,
                        help="fraction of over-budget vertices removed "
                             "per peel round (default 0.25; smaller = "
                             "slower, slightly larger subgraphs)")
        bp.add_argument("--no-polish", action="store_true",
                        help="skip the local-search re-admission pass")
        bp.add_argument("--workers", type=int, default=0,
                        help="distribute restarts over N pool workers "
                             "(default 0 = single-process; results are "
                             "identical either way)")
        bp.add_argument("--output", metavar="PATH",
                        help="write the report (JSON) or the kept "
                             "vertex/side table (CSV) to PATH")
        bp.add_argument("--format", choices=["json", "csv"], default=None,
                        help="output format (default: by PATH extension)")
        bp.add_argument("--metrics-out", metavar="PATH",
                        help="write the metrics-registry JSON snapshot "
                             "(balanced_extract > eigen/rounding/polish "
                             "spans) to PATH")
        bp.set_defaults(func=_cmd_balanced)

    be = bsub.add_parser(
        "extract",
        help="largest exactly-balanced subgraph (arXiv:2002.00775)",
    )
    _balanced_common(be)

    bt = bsub.add_parser(
        "tolerance",
        help="balanced subgraph with per-vertex tolerance "
             "(arXiv:2402.05006)",
    )
    bt.add_argument("--tolerance", "-t", type=int, default=1,
                    metavar="T",
                    help="max unbalanced incident edges per kept vertex "
                         "(default 1)")
    _balanced_common(bt)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro flight dump | head`);
        # a truncated listing is the reader's choice, not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

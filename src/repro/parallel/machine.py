"""Simulated CPU machine: serial and OpenMP-analog cost models.

No multi-core CPU is available in this reproduction environment, so the
Serial / OpenMP columns of Tables 2–3 and Figs. 7–10 are produced by a
transparent cost model that replays the *measured* per-tree workload
(see :mod:`repro.parallel.workload`) on a machine description shaped
like the paper's testbed (16-core Threadripper 2950X, 32 HT threads):

* every op (adjacency-word access) costs ``op_seconds``;
* each parallel region pays a fork/join overhead — the paper names
  this as the reason small inputs stop scaling (§6.3);
* threads beyond the physical core count contribute only
  ``hyperthread_gain`` of a core, because the workload is memory
  bandwidth bound and hyperthreads add no bandwidth (§6.3);
* the cycle-processing region is scheduled dynamically over the
  per-vertex task list (§3.3.2), so one very heavy vertex limits the
  speedup exactly as it would on hardware.

The defaults below were calibrated once against the four published
small-graph runtimes of Table 2 (see EXPERIMENTS.md for the residuals)
and are then held fixed for every experiment.

``times(w)`` returns scalar :class:`PhaseTimes`; ``profile(w)``
additionally returns a :class:`~repro.perf.timeline.MachineProfile`
with the cycle-region schedule timeline, fork/join ledger, and
straggler attribution.  The profiled phase times are bit-identical to
the unprofiled ones — profiling only *observes* the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import EngineError
from repro.parallel.schedule import (
    makespan_dynamic,
    makespan_guided,
    makespan_static,
)
from repro.parallel.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.timeline import MachineProfile

__all__ = ["PhaseTimes", "CpuMachine", "SERIAL_MACHINE", "OPENMP_MACHINE"]


@dataclass(frozen=True)
class PhaseTimes:
    """Modeled seconds per pipeline phase for one tree.

    ``graphb`` (labeling + cycle processing) is what the paper's
    runtime tables report; tree generation and bipartitioning are
    measured separately for the Fig. 11 breakdown.
    """

    tree_generation: float
    labeling: float
    cycle_processing: float
    bipartition: float

    @property
    def graphb(self) -> float:
        """graphB+ time (the paper's reported metric, §5)."""
        return self.labeling + self.cycle_processing

    @property
    def total(self) -> float:
        return (
            self.tree_generation
            + self.labeling
            + self.cycle_processing
            + self.bipartition
        )

    def scaled(self, factor: float) -> "PhaseTimes":
        """All phases multiplied by *factor* (campaign extrapolation)."""
        return PhaseTimes(
            tree_generation=self.tree_generation * factor,
            labeling=self.labeling * factor,
            cycle_processing=self.cycle_processing * factor,
            bipartition=self.bipartition * factor,
        )


def _attach_owner_attribution(timeline, owners: np.ndarray,
                              owner_costs: np.ndarray):
    """Rewrite schedule-timeline segments to name the vertex that owns
    (or dominates) each chunk — the raw material of straggler reports."""
    from repro.perf.timeline import TimelineSegment

    def rewrite(seg):
        meta = dict(seg.meta)
        first = meta.get("first_task")
        if first is not None:
            ntasks = meta.get("num_tasks", 1)
            block = owner_costs[first:first + ntasks]
            heaviest = first + int(np.argmax(block)) if len(block) else first
            meta["vertex"] = int(owners[heaviest])
            meta["vertex_cost"] = float(owner_costs[heaviest])
        elif 0 <= seg.task < len(owners):
            meta["vertex"] = int(owners[seg.task])
            meta["vertex_cost"] = float(owner_costs[seg.task])
        return TimelineSegment(
            seg.name, seg.worker, seg.start, seg.end, seg.task, meta
        )

    return timeline.relabel(rewrite)


@dataclass(frozen=True)
class CpuMachine:
    """Cost model of the paper's CPU under a given thread count.

    ``threads=1`` with zero fork/join is the serial C++ code; 16 or 32
    threads model the OpenMP runs.
    """

    threads: int = 1
    physical_cores: int = 16
    op_seconds: float = 1.6e-9
    fork_join_seconds: float = 30.0e-6
    dynamic_chunk: int = 16
    hyperthread_gain: float = 0.15
    parallel_efficiency: float = 0.60
    schedule: str = "dynamic"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise EngineError("threads must be >= 1")
        if self.schedule not in ("dynamic", "static", "guided"):
            raise EngineError(f"unknown schedule {self.schedule!r}")

    # ------------------------------------------------------------------
    @property
    def effective_workers(self) -> float:
        """Thread count corrected for hyperthreading and parallel
        efficiency (memory-bandwidth ceiling)."""
        t = self.threads
        phys = min(t, self.physical_cores)
        extra = max(t - self.physical_cores, 0)
        return max((phys + self.hyperthread_gain * extra) * self.parallel_efficiency, 1.0)

    def _region(self, work_ops: float) -> float:
        """Seconds for one embarrassingly parallel region."""
        if self.threads == 1:
            return work_ops * self.op_seconds
        return (
            self.fork_join_seconds
            + work_ops * self.op_seconds / self.effective_workers
        )

    def _cycle_span(self, owner_costs: np.ndarray, workers: int,
                    timeline: bool = False):
        """Cycle-region schedule span (in ops) under this machine's
        schedule policy."""
        if self.schedule == "dynamic":
            return makespan_dynamic(owner_costs, workers,
                                    chunk=self.dynamic_chunk,
                                    timeline=timeline)
        if self.schedule == "guided":
            return makespan_guided(owner_costs, workers,
                                   min_chunk=self.dynamic_chunk,
                                   timeline=timeline)
        return makespan_static(owner_costs, workers, timeline=timeline)

    def times(
        self, w: Workload, profile: Optional["MachineProfile"] = None
    ) -> PhaseTimes:
        """Modeled per-tree phase times for workload *w*.

        Passing a :class:`~repro.perf.timeline.MachineProfile` records
        the cycle-region schedule timeline and the fork/join ledger into
        it without changing any returned number.
        """
        # --- Labeling: one region per level per pass (Alg. 4), plus a
        # vectorized init region.  Per-item cost: ~3 ops.
        if self.threads == 1:
            labeling = w.label_ops * self.op_seconds
            if profile is not None:
                profile.add_launch("labeling", "serial_pass",
                                   labeling, 0.0, items=int(w.label_ops))
        else:
            labeling = self._region(float(w.num_vertices))  # init counts
            if profile is not None:
                profile.add_launch("labeling", "init",
                                   self._region(float(w.num_vertices)),
                                   self.fork_join_seconds,
                                   items=w.num_vertices)
            for direction, levels in (
                ("bottom_up", w.level_items[1:]),
                ("top_down", w.level_items[:-1]),
            ):
                for items in levels:
                    seconds = self._region(3.0 * float(items))
                    labeling += seconds
                    if profile is not None:
                        profile.add_launch("labeling", direction, seconds,
                                           self.fork_join_seconds,
                                           items=int(items))

        # --- Cycle processing: one region, dynamically scheduled over
        # the per-vertex task list.
        owners, owner_costs = w.owner_costs
        workers = int(round(self.effective_workers)) or 1
        if self.threads == 1:
            cycles = float(w.cycle_costs.sum()) * self.op_seconds
            if profile is not None:
                _span, tl = self._cycle_span(owner_costs, 1, timeline=True)
                tl = tl.scaled(self.op_seconds)
        else:
            if profile is None:
                span = self._cycle_span(owner_costs, workers)
            else:
                span, tl = self._cycle_span(owner_costs, workers,
                                            timeline=True)
                tl = tl.scaled(self.op_seconds).shifted(self.fork_join_seconds)
            cycles = self.fork_join_seconds + span * self.op_seconds
        if profile is not None:
            tl.label = f"{self.schedule} x{workers if self.threads > 1 else 1}"
            profile.add_timeline(
                "cycle_processing",
                _attach_owner_attribution(tl, owners, owner_costs),
            )
            profile.add_launch(
                "cycle_processing", self.schedule, cycles,
                0.0 if self.threads == 1 else self.fork_join_seconds,
                items=len(owner_costs),
            )

        # --- Tree generation: one region per BFS level.
        if self.threads == 1:
            treegen = float(w.treegen_ops) * self.op_seconds
            if profile is not None:
                profile.add_launch("tree_generation", "serial_bfs",
                                   treegen, 0.0, items=int(w.treegen_ops))
        else:
            per_level = float(w.treegen_ops) / max(len(w.level_items), 1)
            treegen = sum(
                self._region(per_level) for _ in range(len(w.level_items))
            )
            if profile is not None:
                for _ in range(len(w.level_items)):
                    profile.add_launch("tree_generation", "bfs_level",
                                       self._region(per_level),
                                       self.fork_join_seconds,
                                       items=int(per_level))

        # --- Harary bipartition + status: a few frontier regions.
        harary = self._region(float(w.harary_ops))
        if self.threads > 1:
            harary += 3 * self.fork_join_seconds  # CC / coloring / status sweeps
        if profile is not None:
            profile.add_launch(
                "bipartition", "harary", harary,
                0.0 if self.threads == 1 else 4 * self.fork_join_seconds,
                items=int(w.harary_ops), launches=4,
            )

        return PhaseTimes(
            tree_generation=treegen,
            labeling=labeling,
            cycle_processing=cycles,
            bipartition=harary,
        )

    def profile(self, w: Workload) -> tuple[PhaseTimes, "MachineProfile"]:
        """``times(w)`` plus the populated machine profile."""
        from repro.perf.timeline import MachineProfile

        name = "serial" if self.threads == 1 else f"openmp[{self.threads}]"
        prof = MachineProfile(name)
        return self.times(w, profile=prof), prof


#: The paper's serial C++ configuration.
SERIAL_MACHINE = CpuMachine(threads=1)

#: The paper's 16-core OpenMP configuration.
OPENMP_MACHINE = CpuMachine(threads=16)

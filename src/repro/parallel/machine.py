"""Simulated CPU machine: serial and OpenMP-analog cost models.

No multi-core CPU is available in this reproduction environment, so the
Serial / OpenMP columns of Tables 2–3 and Figs. 7–10 are produced by a
transparent cost model that replays the *measured* per-tree workload
(see :mod:`repro.parallel.workload`) on a machine description shaped
like the paper's testbed (16-core Threadripper 2950X, 32 HT threads):

* every op (adjacency-word access) costs ``op_seconds``;
* each parallel region pays a fork/join overhead — the paper names
  this as the reason small inputs stop scaling (§6.3);
* threads beyond the physical core count contribute only
  ``hyperthread_gain`` of a core, because the workload is memory
  bandwidth bound and hyperthreads add no bandwidth (§6.3);
* the cycle-processing region is scheduled dynamically over the
  per-vertex task list (§3.3.2), so one very heavy vertex limits the
  speedup exactly as it would on hardware.

The defaults below were calibrated once against the four published
small-graph runtimes of Table 2 (see EXPERIMENTS.md for the residuals)
and are then held fixed for every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError
from repro.parallel.schedule import (
    makespan_dynamic,
    makespan_guided,
    makespan_static,
)
from repro.parallel.workload import Workload

__all__ = ["PhaseTimes", "CpuMachine", "SERIAL_MACHINE", "OPENMP_MACHINE"]


@dataclass(frozen=True)
class PhaseTimes:
    """Modeled seconds per pipeline phase for one tree.

    ``graphb`` (labeling + cycle processing) is what the paper's
    runtime tables report; tree generation and bipartitioning are
    measured separately for the Fig. 11 breakdown.
    """

    tree_generation: float
    labeling: float
    cycle_processing: float
    bipartition: float

    @property
    def graphb(self) -> float:
        """graphB+ time (the paper's reported metric, §5)."""
        return self.labeling + self.cycle_processing

    @property
    def total(self) -> float:
        return (
            self.tree_generation
            + self.labeling
            + self.cycle_processing
            + self.bipartition
        )

    def scaled(self, factor: float) -> "PhaseTimes":
        """All phases multiplied by *factor* (campaign extrapolation)."""
        return PhaseTimes(
            tree_generation=self.tree_generation * factor,
            labeling=self.labeling * factor,
            cycle_processing=self.cycle_processing * factor,
            bipartition=self.bipartition * factor,
        )


@dataclass(frozen=True)
class CpuMachine:
    """Cost model of the paper's CPU under a given thread count.

    ``threads=1`` with zero fork/join is the serial C++ code; 16 or 32
    threads model the OpenMP runs.
    """

    threads: int = 1
    physical_cores: int = 16
    op_seconds: float = 1.6e-9
    fork_join_seconds: float = 30.0e-6
    dynamic_chunk: int = 16
    hyperthread_gain: float = 0.15
    parallel_efficiency: float = 0.60
    schedule: str = "dynamic"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise EngineError("threads must be >= 1")
        if self.schedule not in ("dynamic", "static", "guided"):
            raise EngineError(f"unknown schedule {self.schedule!r}")

    # ------------------------------------------------------------------
    @property
    def effective_workers(self) -> float:
        """Thread count corrected for hyperthreading and parallel
        efficiency (memory-bandwidth ceiling)."""
        t = self.threads
        phys = min(t, self.physical_cores)
        extra = max(t - self.physical_cores, 0)
        return max((phys + self.hyperthread_gain * extra) * self.parallel_efficiency, 1.0)

    def _region(self, work_ops: float) -> float:
        """Seconds for one embarrassingly parallel region."""
        if self.threads == 1:
            return work_ops * self.op_seconds
        return (
            self.fork_join_seconds
            + work_ops * self.op_seconds / self.effective_workers
        )

    def times(self, w: Workload) -> PhaseTimes:
        """Modeled per-tree phase times for workload *w*."""
        # --- Labeling: one region per level per pass (Alg. 4), plus a
        # vectorized init region.  Per-item cost: ~3 ops.
        if self.threads == 1:
            labeling = w.label_ops * self.op_seconds
        else:
            labeling = self._region(float(w.num_vertices))  # init counts
            for items in w.level_items[1:]:          # bottom-up
                labeling += self._region(3.0 * float(items))
            for items in w.level_items[:-1]:         # top-down
                labeling += self._region(3.0 * float(items))

        # --- Cycle processing: one region, dynamically scheduled over
        # the per-vertex task list.
        _owners, owner_costs = w.owner_costs
        if self.threads == 1:
            cycles = float(w.cycle_costs.sum()) * self.op_seconds
        else:
            workers = int(round(self.effective_workers)) or 1
            if self.schedule == "dynamic":
                span = makespan_dynamic(owner_costs, workers, chunk=self.dynamic_chunk)
            elif self.schedule == "guided":
                span = makespan_guided(owner_costs, workers, min_chunk=self.dynamic_chunk)
            else:
                span = makespan_static(owner_costs, workers)
            cycles = self.fork_join_seconds + span * self.op_seconds

        # --- Tree generation: one region per BFS level.
        if self.threads == 1:
            treegen = float(w.treegen_ops) * self.op_seconds
        else:
            per_level = float(w.treegen_ops) / max(len(w.level_items), 1)
            treegen = sum(
                self._region(per_level) for _ in range(len(w.level_items))
            )

        # --- Harary bipartition + status: a few frontier regions.
        harary = self._region(float(w.harary_ops))
        if self.threads > 1:
            harary += 3 * self.fork_join_seconds  # CC / coloring / status sweeps

        return PhaseTimes(
            tree_generation=treegen,
            labeling=labeling,
            cycle_processing=cycles,
            bipartition=harary,
        )


#: The paper's serial C++ configuration.
SERIAL_MACHINE = CpuMachine(threads=1)

#: The paper's 16-core OpenMP configuration.
OPENMP_MACHINE = CpuMachine(threads=16)

"""Multi-node scaling model (§3.3's distributed layer, quantified).

The paper sketches the MPI deployment — every node gets the graph and a
subset of tree roots, balances independently, and a single
``MPI_Reduce`` combines the per-vertex majority counters — but reports
no multi-node numbers.  This model fills that in:

* per-node time = (trees assigned to the node) × (per-tree pipeline
  time on the node's machine model), with the usual ceil-imbalance when
  trees don't divide evenly;
* one-time costs: broadcasting the graph (CSR bytes over the
  interconnect bandwidth) and the final counter reduction
  (tree-structured: ``log2(nodes)`` rounds of an n-word message);
* the result is a classic strong-scaling curve with a bandwidth-bound
  startup floor — exactly what an SC audience would expect the sketch
  to produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EngineError
from repro.parallel.engine import Machine
from repro.parallel.workload import Workload

__all__ = ["ClusterModel", "ClusterEstimate"]


@dataclass(frozen=True)
class ClusterEstimate:
    """Modeled campaign times for one node count."""

    nodes: int
    compute_seconds: float
    broadcast_seconds: float
    reduce_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.broadcast_seconds + self.reduce_seconds


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster of nodes running one machine model each.

    ``link_bytes_per_second`` defaults to ~11 GB/s (100 Gb/s
    InfiniBand); ``latency_seconds`` is the per-message overhead of the
    collective rounds.
    """

    node_machine: Machine
    link_bytes_per_second: float = 11.0e9
    latency_seconds: float = 5.0e-6

    def estimate(
        self,
        workload: Workload,
        num_trees: int,
        nodes: int,
        graph_bytes: float | None = None,
    ) -> ClusterEstimate:
        """Model a ``num_trees`` campaign on ``nodes`` nodes.

        ``graph_bytes`` defaults to the Table-4 OpenMP-host footprint of
        the workload's graph (what each node must receive).
        """
        if nodes < 1:
            raise EngineError("need at least one node")
        if num_trees < 1:
            raise EngineError("need at least one tree")
        per_tree = self.node_machine.times(workload).total
        my_trees = math.ceil(num_trees / nodes)
        compute = my_trees * per_tree

        if graph_bytes is None:
            from repro.perf.memory import OPENMP_HOST

            graph_bytes = OPENMP_HOST.bytes(
                workload.num_vertices, workload.num_edges
            )
        rounds = math.ceil(math.log2(nodes)) if nodes > 1 else 0
        # Scatter the graph once (pipelined broadcast ~ one full copy
        # per round is pessimistic; use bandwidth-optimal 2x copy cost).
        broadcast = (
            0.0
            if nodes == 1
            else 2.0 * graph_bytes / self.link_bytes_per_second
            + rounds * self.latency_seconds
        )
        # Reduce one 8-byte counter per vertex, tree-structured.
        counter_bytes = 8.0 * workload.num_vertices
        reduce = (
            0.0
            if nodes == 1
            else rounds
            * (self.latency_seconds + counter_bytes / self.link_bytes_per_second)
        )
        return ClusterEstimate(
            nodes=nodes,
            compute_seconds=compute,
            broadcast_seconds=broadcast,
            reduce_seconds=reduce,
        )

    def scaling_curve(
        self,
        workload: Workload,
        num_trees: int,
        node_counts: list[int],
    ) -> list[ClusterEstimate]:
        """Estimates for each node count (a strong-scaling sweep)."""
        return [
            self.estimate(workload, num_trees, nodes) for nodes in node_counts
        ]

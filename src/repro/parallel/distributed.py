"""Simulated distributed-memory driver (§3.3's MPI pattern).

The paper's multi-node parallelization is embarrassingly simple: give
every rank the whole graph and a subset of the tree roots, let each
rank balance its trees and count per-vertex majority membership, then
``MPI_Reduce`` the counters.  We reproduce that dataflow in-process:
ranks are simulated sequentially (a single core is available), but the
partitioning, per-rank accumulation, and reduction are the real thing —
and because :class:`TreeSampler` hands out tree *i* deterministically,
the reduced result is bit-identical to the single-driver cloud, which
is exactly the property an MPI deployment needs and what the tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike
from repro.trees.sampler import TreeSampler

__all__ = ["RankResult", "distributed_status", "partition_indices"]


@dataclass(frozen=True)
class RankResult:
    """What one rank would send to the reduction."""

    rank: int
    num_states: int
    majority_counts: np.ndarray  # Σ δ_T(v) over this rank's trees


def partition_indices(num_items: int, num_ranks: int) -> list[np.ndarray]:
    """Strided partition of tree indices over ranks (the paper hands
    each compute node 'a subset of the tree roots').

    Only non-empty partitions are returned: with more ranks than items
    (or ``num_items == 0``) the surplus ranks simply get no slice,
    instead of zero-length partitions that downstream journal/timeline
    accounting would count as real (empty) blocks of work.
    """
    if num_ranks < 1:
        raise EngineError("need at least one rank")
    if num_items < 0:
        raise EngineError("num_items must be non-negative")
    parts = [np.arange(num_items)[r::num_ranks] for r in range(num_ranks)]
    return [p for p in parts if len(p)]


def _run_rank(
    graph: SignedGraph,
    sampler: TreeSampler,
    indices: np.ndarray,
    rank: int,
    kernel: str,
) -> RankResult:
    """Balance this rank's trees and accumulate majority counts."""
    cloud = FrustrationCloud(graph)
    for i in indices.tolist():
        tree = sampler.tree(i)
        result = balance(graph, tree, kernel=kernel)
        cloud.add_result(result)
    counts = (
        cloud.status() * cloud.num_states
        if cloud.num_states
        else np.zeros(graph.num_vertices)
    )
    return RankResult(
        rank=rank, num_states=cloud.num_states, majority_counts=counts
    )


def distributed_status(
    graph: SignedGraph,
    num_states: int,
    num_ranks: int,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = 0,
) -> np.ndarray:
    """Per-vertex status computed with the rank-partitioned dataflow.

    Equivalent to ``sample_cloud(graph, num_states, ...).status()`` for
    the same seed — the reduction step is a plain sum of the per-rank
    majority counters divided by the total state count (the single
    ``MPI_Reduce`` of §3.3).
    """
    sampler = TreeSampler(graph, method=method, seed=seed)
    parts = partition_indices(num_states, num_ranks)
    results = [
        _run_rank(graph, sampler, idx, rank, kernel)
        for rank, idx in enumerate(parts)
    ]
    total_states = sum(r.num_states for r in results)
    if total_states == 0:
        raise EngineError("no states were produced")
    reduced = np.zeros(graph.num_vertices, dtype=np.float64)
    for r in results:
        reduced += r.majority_counts
    return reduced / total_states

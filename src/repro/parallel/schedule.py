"""Schedule simulators: how long does a task list take on T workers?

The OpenMP code uses a *dynamic* schedule for cycle processing (§3.3.2)
because per-vertex work is highly skewed.  These simulators compute the
makespan of a task list under the schedules graphB+ discusses, which is
what the CPU machine model charges for each parallel region — and what
the scheduling ablation compares.

Every policy shares one validation path (:func:`validate_schedule`):
nonpositive worker counts and negative or non-finite costs raise
:class:`~repro.errors.EngineError`; empty task lists cost 0.0.

Passing ``timeline=True`` makes a policy also return its per-worker
assignment timeline — ``(makespan, ExecutionTimeline)`` — with one
segment per task (or per chunk, with the task range in the segment
metadata).  The scalar makespan is computed by the exact same
arithmetic either way, so machine models built on these policies are
bit-identical with and without profiling; timeline collection is pure
addition and the default ``timeline=False`` path never imports or
touches :mod:`repro.perf.timeline`.
"""

from __future__ import annotations

import heapq
from typing import Tuple, Union

import numpy as np

from repro.errors import EngineError

__all__ = [
    "validate_schedule",
    "makespan_dynamic",
    "makespan_static",
    "makespan_guided",
    "makespan_bounds",
]

#: Scalar or (scalar, timeline) depending on the ``timeline`` flag.
MakespanResult = Union[float, Tuple[float, "ExecutionTimeline"]]  # noqa: F821


def validate_schedule(costs: np.ndarray, workers: int) -> np.ndarray:
    """Shared edge-case policy for every ``makespan_*`` simulator.

    Returns *costs* as a 1-D float64 array.  Raises
    :class:`~repro.errors.EngineError` for ``workers < 1``, for arrays
    of dimension != 1, and for negative or non-finite costs (a negative
    task duration silently corrupts every schedule).
    """
    if workers < 1:
        raise EngineError("need at least one worker")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise EngineError(f"cost array must be 1-D, got shape {costs.shape}")
    if len(costs) and (not np.isfinite(costs).all() or costs.min() < 0.0):
        raise EngineError("task costs must be finite and non-negative")
    return costs


def _empty_timeline(workers: int, label: str):
    from repro.perf.timeline import ExecutionTimeline

    return ExecutionTimeline(workers, label=label)


def _serial_timeline(costs: np.ndarray, label: str):
    """Sequential one-worker timeline (the ``workers == 1`` shortcut)."""
    from repro.perf.timeline import ExecutionTimeline

    tl = ExecutionTimeline(1, label=label)
    t = 0.0
    for i, c in enumerate(costs):
        c = float(c)
        tl.add(f"task[{i}]", 0, t, t + c, task=i)
        t += c
    return tl


def makespan_dynamic(
    costs: np.ndarray, workers: int, chunk: int = 1, timeline: bool = False
) -> MakespanResult:
    """Makespan of greedy dynamic scheduling (OpenMP ``schedule(dynamic)``).

    Tasks are dealt out in chunks of ``chunk`` consecutive tasks; each
    idle worker grabs the next chunk.  Simulated exactly with a heap of
    worker finish times — O(k log T) for k chunks.  With
    ``timeline=True``, returns ``(makespan, ExecutionTimeline)`` with
    one segment per chunk (``meta['first_task']``/``meta['num_tasks']``
    record the chunk's task range).
    """
    costs = validate_schedule(costs, workers)
    if len(costs) == 0:
        return (0.0, _empty_timeline(workers, "dynamic")) if timeline else 0.0
    if workers == 1:
        span = float(costs.sum())
        return (span, _serial_timeline(costs, "dynamic")) if timeline else span
    if chunk > 1:
        pad = (-len(costs)) % chunk
        padded = np.pad(costs, (0, pad))
        chunk_costs = padded.reshape(-1, chunk).sum(axis=1)
    else:
        chunk_costs = costs
    if not timeline:
        finish = [0.0] * workers
        heapq.heapify(finish)
        for c in chunk_costs:
            t = heapq.heappop(finish)
            heapq.heappush(finish, t + float(c))
        return max(finish)

    from repro.perf.timeline import ExecutionTimeline

    tl = ExecutionTimeline(workers, label="dynamic")
    slots = [(0.0, w) for w in range(workers)]
    heapq.heapify(slots)
    for i, c in enumerate(chunk_costs):
        t, w = heapq.heappop(slots)
        end = t + float(c)
        first = i * chunk
        ntasks = min(chunk, len(costs) - first)
        tl.add(
            f"chunk[{i}]", w, t, end,
            task=first if chunk == 1 else -1,
            first_task=first, num_tasks=ntasks,
        )
        heapq.heappush(slots, (end, w))
    return max(t for t, _w in slots), tl


def makespan_static(
    costs: np.ndarray, workers: int, timeline: bool = False
) -> MakespanResult:
    """Makespan of a static block schedule (``schedule(static)``):
    contiguous equal-count blocks, no work stealing — the ablation's
    strawman for skewed workloads.  With ``timeline=True``, returns
    ``(makespan, ExecutionTimeline)`` with one segment per task."""
    costs = validate_schedule(costs, workers)
    if len(costs) == 0:
        return (0.0, _empty_timeline(workers, "static")) if timeline else 0.0
    blocks = np.array_split(costs, workers)
    span = max(float(b.sum()) for b in blocks)
    if not timeline:
        return span

    from repro.perf.timeline import ExecutionTimeline

    tl = ExecutionTimeline(workers, label="static")
    task = 0
    for w, block in enumerate(blocks):
        t = 0.0
        for c in block:
            c = float(c)
            tl.add(f"task[{task}]", w, t, t + c, task=task)
            t += c
            task += 1
    return span, tl


def makespan_guided(
    costs: np.ndarray, workers: int, min_chunk: int = 1, timeline: bool = False
) -> MakespanResult:
    """Makespan of OpenMP ``schedule(guided)``: each idle worker grabs
    ``max(remaining / workers, min_chunk)`` consecutive tasks, so chunks
    shrink as the queue drains — large chunks amortize overhead early,
    small chunks balance the tail.  With ``timeline=True``, returns
    ``(makespan, ExecutionTimeline)`` with one segment per chunk."""
    costs = validate_schedule(costs, workers)
    total = len(costs)
    if total == 0:
        return (0.0, _empty_timeline(workers, "guided")) if timeline else 0.0
    if workers == 1:
        span = float(costs.sum())
        return (span, _serial_timeline(costs, "guided")) if timeline else span
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    if not timeline:
        finish = [0.0] * workers
        heapq.heapify(finish)
        taken = 0
        while taken < total:
            size = max((total - taken) // workers, min_chunk)
            size = min(size, total - taken)
            chunk_cost = float(prefix[taken + size] - prefix[taken])
            taken += size
            t = heapq.heappop(finish)
            heapq.heappush(finish, t + chunk_cost)
        return max(finish)

    from repro.perf.timeline import ExecutionTimeline

    tl = ExecutionTimeline(workers, label="guided")
    slots = [(0.0, w) for w in range(workers)]
    heapq.heapify(slots)
    taken = 0
    i = 0
    while taken < total:
        size = max((total - taken) // workers, min_chunk)
        size = min(size, total - taken)
        chunk_cost = float(prefix[taken + size] - prefix[taken])
        t, w = heapq.heappop(slots)
        end = t + chunk_cost
        tl.add(
            f"chunk[{i}]", w, t, end,
            first_task=taken, num_tasks=size,
        )
        heapq.heappush(slots, (end, w))
        taken += size
        i += 1
    return max(t for t, _w in slots), tl


def makespan_bounds(costs: np.ndarray, workers: int) -> tuple[float, float]:
    """(lower, upper) bounds on any schedule's makespan:
    ``max(total/T, max task)`` and the greedy 2-approximation."""
    costs = validate_schedule(costs, workers)
    if len(costs) == 0:
        return 0.0, 0.0
    lower = max(float(costs.sum()) / workers, float(costs.max()))
    upper = float(costs.sum()) / workers + float(costs.max())
    return lower, upper

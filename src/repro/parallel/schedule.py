"""Schedule simulators: how long does a task list take on T workers?

The OpenMP code uses a *dynamic* schedule for cycle processing (§3.3.2)
because per-vertex work is highly skewed.  These simulators compute the
makespan of a task list under the schedules graphB+ discusses, which is
what the CPU machine model charges for each parallel region — and what
the scheduling ablation compares.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import EngineError

__all__ = [
    "makespan_dynamic",
    "makespan_static",
    "makespan_guided",
    "makespan_bounds",
]


def makespan_dynamic(costs: np.ndarray, workers: int, chunk: int = 1) -> float:
    """Makespan of greedy dynamic scheduling (OpenMP ``schedule(dynamic)``).

    Tasks are dealt out in chunks of ``chunk`` consecutive tasks; each
    idle worker grabs the next chunk.  Simulated exactly with a heap of
    worker finish times — O(k log T) for k chunks.
    """
    if workers < 1:
        raise EngineError("need at least one worker")
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) == 0:
        return 0.0
    if workers == 1:
        return float(costs.sum())
    if chunk > 1:
        pad = (-len(costs)) % chunk
        padded = np.pad(costs, (0, pad))
        chunk_costs = padded.reshape(-1, chunk).sum(axis=1)
    else:
        chunk_costs = costs
    finish = [0.0] * workers
    heapq.heapify(finish)
    for c in chunk_costs:
        t = heapq.heappop(finish)
        heapq.heappush(finish, t + float(c))
    return max(finish)


def makespan_static(costs: np.ndarray, workers: int) -> float:
    """Makespan of a static block schedule (``schedule(static)``):
    contiguous equal-count blocks, no work stealing — the ablation's
    strawman for skewed workloads."""
    if workers < 1:
        raise EngineError("need at least one worker")
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) == 0:
        return 0.0
    blocks = np.array_split(costs, workers)
    return max(float(b.sum()) for b in blocks)


def makespan_guided(
    costs: np.ndarray, workers: int, min_chunk: int = 1
) -> float:
    """Makespan of OpenMP ``schedule(guided)``: each idle worker grabs
    ``max(remaining / workers, min_chunk)`` consecutive tasks, so chunks
    shrink as the queue drains — large chunks amortize overhead early,
    small chunks balance the tail."""
    if workers < 1:
        raise EngineError("need at least one worker")
    costs = np.asarray(costs, dtype=np.float64)
    total = len(costs)
    if total == 0:
        return 0.0
    if workers == 1:
        return float(costs.sum())
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    finish = [0.0] * workers
    heapq.heapify(finish)
    taken = 0
    while taken < total:
        size = max((total - taken) // workers, min_chunk)
        size = min(size, total - taken)
        chunk_cost = float(prefix[taken + size] - prefix[taken])
        taken += size
        t = heapq.heappop(finish)
        heapq.heappush(finish, t + chunk_cost)
    return max(finish)


def makespan_bounds(costs: np.ndarray, workers: int) -> tuple[float, float]:
    """(lower, upper) bounds on any schedule's makespan:
    ``max(total/T, max task)`` and the greedy 2-approximation."""
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) == 0:
        return 0.0, 0.0
    lower = max(float(costs.sum()) / workers, float(costs.max()))
    upper = float(costs.sum()) / workers + float(costs.max())
    return lower, upper

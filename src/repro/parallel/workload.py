"""Workload extraction: the per-tree work profile the machine models consume.

The simulated OpenMP/CUDA machines (DESIGN.md §2) do not guess — they
replay the *actual* work of balancing one tree:

* per-level item counts of the two labeling passes (Alg. 4),
* per-cycle traversal costs, measured as the number of tree-edge
  range checks the faithful walker performs (cycle length for the
  upward parent-first steps + child scans on descents — bounded by the
  on-cycle tree degrees the lockstep kernel records),
* the owner vertex of each cycle (the paper parallelizes cycle
  processing over vertices, with each vertex's non-tree edges handled
  by one thread / one warp),
* linear op counts for tree generation and Harary bipartitioning.

Everything is collected by one lockstep run with statistics enabled, so
profiling a tree costs the same as balancing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.cycles_vectorized import process_cycles_lockstep
from repro.graph.csr import SignedGraph
from repro.trees.properties import level_widths
from repro.trees.tree import SpanningTree

__all__ = ["Workload", "collect_workload"]


@dataclass(frozen=True)
class Workload:
    """Work profile of balancing one spanning tree of one graph.

    Cost unit: one *op* is one adjacency-word access (range check,
    neighbor load, or count update).  The machine models convert ops to
    seconds with their per-op latencies.
    """

    num_vertices: int
    num_edges: int
    num_cycles: int
    level_items: np.ndarray      # vertices per tree level (labeling passes)
    cycle_costs: np.ndarray      # ops per fundamental cycle
    cycle_owner: np.ndarray      # owning vertex per cycle
    treegen_ops: int             # BFS tree construction (≈ 2m + n)
    harary_ops: int              # bipartition + status update (≈ 2m + 2n)

    @cached_property
    def cycle_ops(self) -> int:
        """Total cycle-processing ops."""
        return int(self.cycle_costs.sum())

    @cached_property
    def label_ops(self) -> int:
        """Total labeling ops: both passes touch every vertex once,
        and the top-down pass also touches every tree edge."""
        return int(3 * self.level_items.sum())

    @cached_property
    def owner_costs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(owners, costs)``: cycle cost aggregated by owning vertex —
        the schedulable task list for vertex-parallel cycle processing."""
        owners, inverse = np.unique(self.cycle_owner, return_inverse=True)
        costs = np.zeros(len(owners), dtype=np.float64)
        np.add.at(costs, inverse, self.cycle_costs)
        return owners, costs

    @cached_property
    def max_owner_cost(self) -> float:
        """Largest per-vertex cycle workload (the critical path of the
        vertex-parallel schedule; driven by the max degree — §6.2's
        r = 0.96 correlation)."""
        _owners, costs = self.owner_costs
        return float(costs.max()) if len(costs) else 0.0


def collect_workload(
    graph: SignedGraph,
    tree: SpanningTree,
    scan_fraction: float = 0.27,
) -> Workload:
    """Profile the balancing of *tree* on *graph*.

    ``scan_fraction`` models how much of a vertex's tree-degree the
    walker scans per visited vertex: upward parent-first steps are
    O(1), and descending steps scan children in order until the
    covering range is found, so only part of each on-cycle tree degree
    is touched.  The default 0.27 was measured against the faithful
    walker's exact ``cycle.edges_scanned`` counter (α = 0.25–0.29 on
    the calibration inputs; see EXPERIMENTS.md):

    ``cost(cycle) = length + scan_fraction · Σ tree_deg(v on cycle)``.
    """
    _signs, _flipped, stats = process_cycles_lockstep(
        graph, tree, collect_stats=True
    )
    assert stats is not None
    cycle_costs = (
        stats.lengths.astype(np.float64)
        + scan_fraction * stats.tree_degree_sums.astype(np.float64)
    )
    non_tree = tree.non_tree_edge_ids()
    # The paper processes each non-tree edge in one direction only; the
    # owning vertex is the canonical first endpoint.
    cycle_owner = graph.edge_u[non_tree]

    n, m = graph.num_vertices, graph.num_edges
    return Workload(
        num_vertices=n,
        num_edges=m,
        num_cycles=len(non_tree),
        level_items=level_widths(tree).astype(np.int64),
        cycle_costs=cycle_costs,
        cycle_owner=cycle_owner,
        treegen_ops=2 * m + n,
        harary_ops=2 * m + 2 * n,
    )

"""Parallel execution layer: workload profiling, schedule simulators,
simulated CPU/GPU machine models, the campaign modeler, the simulated
distributed (MPI-pattern) status driver, and the self-healing campaign
supervisor (retries, timeouts, backoff, graceful degradation).
"""

from repro.parallel.workload import Workload, collect_workload
from repro.parallel.schedule import (
    makespan_bounds,
    makespan_dynamic,
    makespan_guided,
    makespan_static,
    validate_schedule,
)
from repro.parallel.machine import (
    OPENMP_MACHINE,
    SERIAL_MACHINE,
    CpuMachine,
    PhaseTimes,
)
from repro.parallel.simgpu import CUDA_MACHINE, GpuMachine
from repro.parallel.engine import (
    Machine,
    ModeledRun,
    measure_python_seconds,
    model_run,
    model_run_multi,
)
from repro.parallel.distributed import (
    RankResult,
    distributed_status,
    partition_indices,
)
from repro.parallel.pool import sample_cloud_pool
from repro.parallel.supervisor import (
    FaultEvent,
    RetryPolicy,
    RunReport,
    run_supervised,
)
from repro.parallel.mpi_model import ClusterEstimate, ClusterModel

__all__ = [
    "Workload",
    "collect_workload",
    "makespan_dynamic",
    "makespan_static",
    "makespan_guided",
    "makespan_bounds",
    "validate_schedule",
    "CpuMachine",
    "GpuMachine",
    "PhaseTimes",
    "SERIAL_MACHINE",
    "OPENMP_MACHINE",
    "CUDA_MACHINE",
    "Machine",
    "ModeledRun",
    "model_run",
    "model_run_multi",
    "measure_python_seconds",
    "RankResult",
    "distributed_status",
    "partition_indices",
    "sample_cloud_pool",
    "RetryPolicy",
    "RunReport",
    "FaultEvent",
    "run_supervised",
    "ClusterModel",
    "ClusterEstimate",
]

"""Process-pool cloud sampling — real cross-tree parallelism.

The simplest parallelization of Alg. 2 runs different trees on
different workers (§3.3's opening observation).  This driver does that
with a :class:`concurrent.futures.ProcessPoolExecutor`: each worker
builds and balances a block of tree indices, accumulates a local
:class:`FrustrationCloud`, and the parent merges the per-worker
clouds — producing results **identical** to the sequential
:func:`repro.cloud.sample_cloud` for the same seed (tested), because
:class:`TreeSampler` hands out tree *i* deterministically.

The graph is shipped to each worker exactly once, through the
executor's *initializer* (one pickle per worker process), instead of
being re-pickled into every submitted block; blocks then travel as a
few integers.  Within a worker, ``batch_size > 1`` runs the
tree-batched engine on each block, stacking the worker's trees into
shared vectorized kernels.

On this reproduction's single-core container the pool adds overhead
rather than speed; the value here is the verified-deterministic
parallel dataflow a multi-core deployment would use as-is.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, freeze_seed
from repro.trees.sampler import TreeSampler

__all__ = ["sample_cloud_pool"]

# Per-process graph slot, populated once by the executor initializer so
# submitted tasks don't each re-pickle the (potentially large) graph.
_WORKER_GRAPH: SignedGraph | None = None


def _init_worker(graph: SignedGraph) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def _run_block(
    graph: SignedGraph,
    method: str,
    kernel: str,
    seed: int,
    indices: list[int],
    store_states: bool,
    batch_size: int,
) -> FrustrationCloud:
    """Balance the given tree indices and return the local cloud."""
    sampler = TreeSampler(graph, method=method, seed=seed)
    cloud = FrustrationCloud(graph, store_states=store_states)
    if batch_size > 1:
        from repro.core.parity_batch import balance_batch
        from repro.harary.bipartition import sides_from_sign_to_root

        for lo in range(0, len(indices), batch_size):
            batch = sampler.batch(indices[lo : lo + batch_size])
            signs, s2r = balance_batch(graph, batch)
            cloud.add_batch(signs, sides_from_sign_to_root(s2r))
    else:
        for i in indices:
            cloud.add_result(balance(graph, sampler.tree(i), kernel=kernel))
    return cloud


def _worker(
    method: str,
    kernel: str,
    seed: int,
    indices: list[int],
    store_states: bool,
    batch_size: int,
) -> FrustrationCloud:
    """Pool entry point: run a block against the initializer's graph."""
    if _WORKER_GRAPH is None:  # pragma: no cover - initializer always ran
        raise EngineError("worker process has no graph; initializer missing")
    return _run_block(
        _WORKER_GRAPH, method, kernel, seed, indices, store_states, batch_size
    )


def sample_cloud_pool(
    graph: SignedGraph,
    num_states: int,
    workers: int = 2,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = 0,
    store_states: bool = False,
    batch_size: int = 1,
) -> FrustrationCloud:
    """Alg. 2 with tree-level process parallelism.

    Equivalent to ``sample_cloud(graph, num_states, method, kernel,
    seed)`` up to the (unordered) flip-count log.  ``workers=1`` runs
    in-process without spawning.  ``batch_size > 1`` additionally runs
    the tree-batched engine inside each worker.
    """
    if num_states < 1:
        raise EngineError("num_states must be positive")
    if workers < 1:
        raise EngineError("workers must be positive")
    if batch_size < 1:
        raise EngineError("batch_size must be positive")
    frozen = freeze_seed(seed)
    blocks = [
        list(range(num_states))[w::workers] for w in range(workers)
    ]
    blocks = [b for b in blocks if b]

    if workers == 1 or len(blocks) == 1:
        return _run_block(
            graph, method, kernel, frozen, list(range(num_states)),
            store_states, batch_size,
        )

    merged = FrustrationCloud(graph, store_states=store_states)
    with ProcessPoolExecutor(
        max_workers=len(blocks), initializer=_init_worker, initargs=(graph,)
    ) as pool:
        futures = [
            pool.submit(
                _worker, method, kernel, frozen, block, store_states,
                batch_size,
            )
            for block in blocks
        ]
        for future in futures:
            merged.merge(future.result())
    return merged

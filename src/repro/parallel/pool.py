"""Process-pool cloud sampling — real cross-tree parallelism.

The simplest parallelization of Alg. 2 runs different trees on
different workers (§3.3's opening observation).  This driver does that
with a :class:`concurrent.futures.ProcessPoolExecutor`: each worker
builds and balances a block of tree indices, accumulates a local
:class:`FrustrationCloud`, and the parent merges the per-worker
clouds — producing results equivalent to the sequential
:func:`repro.cloud.sample_cloud` for the same seed (tested), because
:class:`TreeSampler` hands out tree *i* deterministically.

The graph reaches each worker exactly once, through the executor's
*initializer*, and blocks travel as three integers ``(start, stop,
step)`` — never a materialized index list.  Two initializers exist:
the legacy one ships a pickle of the graph per worker process, and the
zero-copy one (``graph_store=...``) ships only a path to a packed
:class:`~repro.graph.store.GraphStore` file that every worker reopens
as read-only ``np.memmap`` views — N workers then share one page-cache
copy of the graph, and pool rebuilds cost a header read instead of a
re-pickle.  Either way the worker slot records the graph's content
fingerprint, and every task carries the campaign's expected
fingerprint, so a stale slot (executor reuse after degradation, a
rebuilt pool, a swapped store file) is detected — and, for
store-backed workers, healed by reopening the mapping — instead of
silently computing against the wrong graph.  Within a worker,
``batch_size > 1`` runs the tree-batched engine on each block,
stacking the worker's trees into shared vectorized kernels.

Work-stealing: ``steal_chunks=K`` splits the campaign into K fine
contiguous blocks (pick ``K ≈ 4–8× workers``) that all enter the
executor's shared task queue up front; idle workers pull the next
block the moment they finish one, so a straggler block delays only
itself instead of serializing the whole tail the way a static
one-block-per-worker split does.  The parent journals which worker ran
each block and a ``steal_summary`` event with the per-worker block/
state tallies, so imbalance is visible after the fact.

Crash safety: when ``checkpoint_path`` is given and a worker dies, the
parent salvages every block that *did* complete into an atomic
checkpoint whose campaign metadata records exactly which
``(start, stop, step)`` blocks it contains; ``resume_from`` later
reruns only the missing indices and merges them in, so a crashed
campaign loses at most the in-flight blocks.  Sequential
:func:`~repro.cloud.checkpoint.resume_cloud` refuses such salvage
checkpoints (they are not a contiguous prefix of the campaign).

On this reproduction's single-core container the pool adds overhead
rather than speed; the value here is the verified-deterministic
parallel dataflow a multi-core deployment would use as-is.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Callable, Sequence, Tuple, Union

import numpy as np

from repro.cloud.cloud import BATCHED_KERNELS, FrustrationCloud
from repro.core.balancer import balance
from repro.errors import CheckpointError, EngineError, SupervisorError
from repro.graph.csr import SignedGraph
from repro.graph.store import GraphStore, graph_fingerprint
from repro.perf.flight import (
    get_flight_recorder,
    install_flight_recorder,
    set_flight_recorder,
)
from repro.perf.journal import journal_event
from repro.perf.registry import collecting, get_registry
from repro.perf.tracectx import (
    TraceContext,
    current_trace,
    pop_trace,
    push_trace,
)
from repro.perf.tracing import (
    TraceCollector,
    absorb_shard,
    collector_shard,
    get_trace_collector,
    set_trace_collector,
    span,
)
from repro.rng import SeedLike, freeze_seed
from repro.trees.sampler import TreeSampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.parallel.supervisor import RetryPolicy

__all__ = ["sample_cloud_pool"]

Block = Tuple[int, int, int]
StoreLike = Union[str, "Path", GraphStore]

# Per-process graph slot, populated once by an executor initializer so
# submitted tasks don't each re-ship the (potentially large) graph.
# The fingerprint makes the slot verifiable: every task carries the
# campaign's expected fingerprint, so a stale slot never silently
# serves the wrong graph.  _WORKER_STORE remembers the backing store
# path (when there is one) so a stale store-backed slot can heal
# itself by reopening the mapping.
_WORKER_GRAPH: SignedGraph | None = None
_WORKER_FINGERPRINT: str | None = None
_WORKER_STORE: str | None = None


#: Bound on the span events one block shard ships back with its cloud
#: (a straggler block can close thousands of tree_sample spans; the
#: shard keeps the first N and counts the rest as dropped).
_SHARD_MAX_EVENTS = 512


def _init_worker_flight(flight_dir: str | None) -> None:
    """Reset fork-inherited observability state and arm the worker's
    flight recorder when the campaign asked for one.

    Fork-start workers inherit the parent's trace collector and flight
    recorder by memory copy; both are the *parent's* identity (its
    dump path, its in-memory event sink) and must not be trusted here —
    the collector especially, because a worker only ships a span shard
    when no collector is installed.
    """
    set_trace_collector(None)
    set_flight_recorder(None)
    if flight_dir is not None:
        install_flight_recorder(flight_dir, role="pool-worker")


def _init_worker(
    graph: SignedGraph,
    fingerprint: str | None = None,
    flight_dir: str | None = None,
) -> None:
    """Legacy initializer: install a pickled graph in the worker slot."""
    global _WORKER_GRAPH, _WORKER_FINGERPRINT, _WORKER_STORE
    _init_worker_flight(flight_dir)
    _WORKER_GRAPH = graph
    _WORKER_FINGERPRINT = (
        fingerprint if fingerprint is not None else graph_fingerprint(graph)
    )
    _WORKER_STORE = None


def _init_worker_store(
    path: str,
    fingerprint: str | None = None,
    flight_dir: str | None = None,
) -> None:
    """Zero-copy initializer: map the packed graph store read-only.

    The arrays are ``np.memmap`` views, so every worker on the machine
    shares one page-cache copy of the graph; only the path and the
    expected fingerprint cross the process boundary.
    """
    global _WORKER_GRAPH, _WORKER_FINGERPRINT, _WORKER_STORE
    _init_worker_flight(flight_dir)
    store = GraphStore.open(path)
    if fingerprint is not None and store.fingerprint != fingerprint:
        raise EngineError(
            f"graph store {path} holds fingerprint "
            f"{store.fingerprint[:12]}..., campaign expects "
            f"{fingerprint[:12]}... (was the store repacked mid-campaign?)"
        )
    _WORKER_GRAPH = store.graph()
    _WORKER_FINGERPRINT = store.fingerprint
    _WORKER_STORE = str(path)


def _reset_worker_slot() -> None:
    """Clear the per-process graph slot (parent-side before in-process
    or degraded execution, and tests) so stale state cannot leak into a
    later campaign that reuses this process."""
    global _WORKER_GRAPH, _WORKER_FINGERPRINT, _WORKER_STORE
    _WORKER_GRAPH = None
    _WORKER_FINGERPRINT = None
    _WORKER_STORE = None


def _worker_graph(fingerprint: str | None) -> SignedGraph:
    """The worker-slot graph, fingerprint-checked against the task.

    A store-backed slot that is empty or stale heals itself by
    reopening the mapping; a pickle-backed mismatch is unrecoverable in
    the worker and raises (the parent's rebuild ladder takes over).
    """
    global _WORKER_GRAPH, _WORKER_FINGERPRINT
    if _WORKER_GRAPH is not None and (
        fingerprint is None or fingerprint == _WORKER_FINGERPRINT
    ):
        return _WORKER_GRAPH
    if _WORKER_STORE is not None:
        store = GraphStore.open(_WORKER_STORE)
        if fingerprint is not None and store.fingerprint != fingerprint:
            raise EngineError(
                f"graph store {_WORKER_STORE} holds fingerprint "
                f"{store.fingerprint[:12]}..., task expects "
                f"{fingerprint[:12]}..."
            )
        _WORKER_GRAPH = store.graph()
        _WORKER_FINGERPRINT = store.fingerprint
        return _WORKER_GRAPH
    if _WORKER_GRAPH is None:
        raise EngineError("worker process has no graph; initializer missing")
    raise EngineError(
        f"worker graph slot is stale: holds fingerprint "
        f"{(_WORKER_FINGERPRINT or 'unknown')[:12]}..., task expects "
        f"{(fingerprint or 'unknown')[:12]}..."
    )


def _run_block(
    graph: SignedGraph,
    method: str,
    kernel: str,
    seed: int,
    block: Block,
    store_states: bool,
    batch_size: int,
    fault: Callable[[Block], None] | None = None,
    swaps_per_state: int = 1,
    trace: dict | None = None,
) -> FrustrationCloud:
    """Balance the tree indices ``range(*block)`` and return the local
    cloud.  *fault* is the fault-injection hook (see
    :mod:`repro.util.faults`), invoked with the block before any work.

    *trace* is a :meth:`~repro.perf.tracectx.TraceContext.to_dict`
    payload naming the parent span this block hangs under.  In a worker
    process (no trace collector installed) the block records its spans
    into a bounded local collector and ships them back as
    ``cloud.trace_shard``; in the parent (in-process / degraded
    execution) spans chain under the ambient context directly.
    """
    recorder = get_flight_recorder()
    if recorder is not None:
        # Dumped before any work: a SIGKILL mid-block leaves a dump
        # naming exactly this block.
        recorder.mark_inflight(what="block", block=list(block),
                               method=method)
    if fault is not None:
        fault(block)
    indices = range(*block)
    sampler = TreeSampler(
        graph, method=method, seed=seed, swaps_per_state=swaps_per_state
    )
    cloud = FrustrationCloud(graph, store_states=store_states)
    ctx = TraceContext.from_dict(trace) if trace is not None else None
    shard: TraceCollector | None = None
    if ctx is not None and get_trace_collector() is None:
        shard = TraceCollector(_SHARD_MAX_EVENTS)
        set_trace_collector(shard)
    if ctx is not None:
        push_trace(ctx)
    try:
        cloud = _run_block_body(
            graph, method, kernel, sampler, indices, cloud, batch_size
        )
    finally:
        if ctx is not None:
            pop_trace()
        if shard is not None:
            set_trace_collector(None)
    if shard is not None:
        # Dynamic attribute like `metrics` below: survives pickling, so
        # the parent can stitch the worker's spans into its collector.
        cloud.trace_shard = collector_shard(shard)
    if recorder is not None:
        recorder.clear_inflight(block=list(block), states=cloud.num_states)
    return cloud


def _run_block_body(
    graph: SignedGraph,
    method: str,
    kernel: str,
    sampler: TreeSampler,
    indices: range,
    cloud: FrustrationCloud,
    batch_size: int,
) -> FrustrationCloud:
    """The measured heart of :func:`_run_block` (split out so the trace
    scope installed around it stays readable)."""
    # Detached metrics window: the snapshot rides back with the cloud
    # and the parent merges it exactly once (merge=True here would
    # double-count blocks that degrade to in-process execution).
    with collecting(merge=False) as metrics, span("block"):
        if method == "swap":
            from repro.harary.bipartition import sides_from_sign_to_root

            # Chain states are pure functions of (seed, index), so any
            # block shape is correct; the worker enters the chain at its
            # block's segment and walks it forward in chunks.
            for lo in range(0, len(indices), batch_size):
                chunk = indices[lo : lo + batch_size]
                with span("tree_sample"):
                    signs, s2r = sampler.swap_states(chunk)
                with span("harary"):
                    cloud.add_batch(signs, sides_from_sign_to_root(s2r))
        elif batch_size > 1:
            from repro.core.parity_batch import balance_batch
            from repro.harary.bipartition import sides_from_sign_to_root

            for lo in range(0, len(indices), batch_size):
                with span("tree_sample"):
                    batch = sampler.batch(indices[lo : lo + batch_size])
                with span("parity_kernel"):
                    signs, s2r = balance_batch(graph, batch)
                with span("harary"):
                    cloud.add_batch(signs, sides_from_sign_to_root(s2r))
        else:
            for i in indices:
                with span("tree_sample"):
                    tree = sampler.tree(i)
                result = balance(graph, tree, kernel=kernel)
                with span("harary"):
                    cloud.add_result(result)
        # Counted inside the detached window, so the block's state
        # count travels with its snapshot through salvage and resume.
        get_registry().count("cloud.states_total", cloud.num_states)
    cloud.metrics = metrics.snapshot()
    # Which process ran the block: dynamic attributes survive pickling
    # (like `metrics` above), so the parent can attribute every block
    # to a worker for the steal accounting.
    cloud.worker_pid = os.getpid()
    return cloud


def _worker(
    method: str,
    kernel: str,
    seed: int,
    block: Block,
    store_states: bool,
    batch_size: int,
    fault: Callable[[Block], None] | None = None,
    swaps_per_state: int = 1,
    fingerprint: str | None = None,
    trace: dict | None = None,
) -> FrustrationCloud:
    """Pool entry point: run a block against the worker-slot graph
    (fingerprint-checked; see :func:`_worker_graph`)."""
    graph = _worker_graph(fingerprint)
    return _run_block(
        graph, method, kernel, seed, block, store_states,
        batch_size, fault, swaps_per_state, trace,
    )


def _absorb_metrics(local: FrustrationCloud) -> None:
    """Fold a block cloud's metrics snapshot — and its span shard, when
    the parent is collecting a trace — into the active registry/
    collector, exactly once (both are cleared after merging, so
    re-merging a cloud — e.g. salvage followed by resume — is a
    no-op)."""
    snap = getattr(local, "metrics", None)
    if snap:
        get_registry().merge_snapshot(snap)
        local.metrics = None
    shard = getattr(local, "trace_shard", None)
    if shard:
        collector = get_trace_collector()
        if collector is not None:
            absorb_shard(collector, shard)
        local.trace_shard = None


def _merge_intervals(done: Sequence[Block]) -> list[tuple[int, int]]:
    intervals = sorted((s, e) for s, e, _ in done)
    merged: list[tuple[int, int]] = []
    for s, e in intervals:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def _compress_runs(indices: np.ndarray) -> list[Block]:
    """Greedily compress a sorted index array into arithmetic blocks."""
    blocks: list[Block] = []
    i, n = 0, len(indices)
    while i < n:
        if i == n - 1:
            blocks.append((int(indices[i]), int(indices[i]) + 1, 1))
            break
        step = int(indices[i + 1] - indices[i])
        j = i + 1
        while j + 1 < n and int(indices[j + 1] - indices[j]) == step:
            j += 1
        blocks.append((int(indices[i]), int(indices[j]) + 1, step))
        i = j + 1
    return blocks


def _remaining_blocks(
    done: Sequence[Block], target: int, workers: int
) -> list[Block]:
    """The campaign indices of ``[0, target)`` not covered by *done*,
    as ``(start, stop, step)`` blocks ready to hand to workers.

    Fast paths keep the common shapes compact: no prior work (fresh
    strided split), a contiguous prefix (strided tail), and
    same-stride salvage blocks (per-residue tails).  Anything else
    falls back to materializing the remaining set once in the parent
    and compressing it into arithmetic runs.
    """
    target = int(target)
    done = [
        (int(s), int(e), int(st)) for s, e, st in done if int(e) > int(s)
    ]
    if not done:
        return [(w, target, workers) for w in range(min(workers, target))]
    steps = {st for _s, _e, st in done}
    if steps == {1}:
        merged = _merge_intervals(done)
        if len(merged) == 1 and merged[0][0] == 0:
            start = min(merged[0][1], target)
            return [
                (start + w, target, workers)
                for w in range(min(workers, target - start))
            ]
    elif len(steps) == 1:
        stride = steps.pop()
        stops: dict[int, int] = {}
        for s, e, _st in done:
            r = s % stride
            stops[r] = max(stops.get(r, 0), e)
        remaining: list[Block] = []
        for r in range(stride):
            if r in stops:
                behind = max(stops[r] - r, 0)
                nxt = r + stride * ((behind + stride - 1) // stride)
            else:
                nxt = r
            if nxt < target:
                remaining.append((nxt, target, stride))
        return remaining
    covered = np.zeros(target, dtype=bool)
    for s, e, st in done:
        covered[s:e:st] = True
    return _compress_runs(np.nonzero(~covered)[0])


def _block_len(block: Block) -> int:
    return len(range(*block))


def _contiguous_blocks(target: int, workers: int) -> list[Block]:
    """Split ``[0, target)`` into up to *workers* contiguous step-1
    blocks of near-equal size.

    The strided split is pathological for the swap chain: a stride-w
    block touches every w-th index, and reaching index ``k`` means
    walking the chain through all of ``k``'s segment predecessors — so
    each worker would replay almost the whole chain.  Contiguous blocks
    keep the replay to at most ``segment_length - 1`` states per block.
    """
    workers = min(workers, target)
    blocks: list[Block] = []
    lo = 0
    for w in range(workers):
        hi = lo + (target - lo) // (workers - w)
        if hi > lo:
            blocks.append((lo, hi, 1))
        lo = hi
    return blocks


def _split_blocks(blocks: Sequence[Block], num_chunks: int) -> list[Block]:
    """Subdivide *blocks* into about *num_chunks* same-stride pieces.

    Used by the work-stealing path on resume: the remaining blocks
    (arbitrary strides from a salvage checkpoint) are split
    proportionally to their index counts so the executor queue holds
    fine-grained work.  Zero-length inputs are dropped, never emitted.
    """
    blocks = [b for b in blocks if _block_len(b) > 0]
    total = sum(_block_len(b) for b in blocks)
    if total == 0 or num_chunks <= len(blocks):
        return list(blocks)
    out: list[Block] = []
    for start, _stop, step in blocks:
        n = _block_len((start, _stop, step))
        share = max(1, round(num_chunks * n / total))
        lo = 0
        for w in range(share):
            hi = lo + (n - lo) // (share - w)
            if hi > lo:
                out.append((start + lo * step, start + hi * step, step))
            lo = hi
    return out


def _chain_segment_start(index: int, segment_length: int = 256) -> int:
    """The swap-chain segment start covering *index* (recorded on block
    journal events so operators can see a block's chain entry point)."""
    return index - index % segment_length


def sample_cloud_pool(
    graph: SignedGraph,
    num_states: int,
    workers: int = 2,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = 0,
    store_states: bool = False,
    batch_size: int = 1,
    checkpoint_path=None,
    keep_checkpoints: int = 1,
    resume_from=None,
    fault: Callable[[Block], None] | None = None,
    policy: "RetryPolicy | None" = None,
    swaps_per_state: int = 1,
    graph_store: StoreLike | None = None,
    steal_chunks: int | None = None,
    flight_dir: str | None = None,
) -> FrustrationCloud:
    """Alg. 2 with tree-level process parallelism.

    Equivalent to ``sample_cloud(graph, num_states, method, kernel,
    seed)`` up to the (unordered) flip-count log.  ``workers=1`` runs
    in-process without spawning.  ``batch_size > 1`` additionally runs
    the tree-batched engine inside each worker.

    ``checkpoint_path`` writes a self-describing checkpoint when the
    campaign completes — and, if a worker crashes mid-campaign (or the
    parent is interrupted), a *salvage* checkpoint holding every block
    that did complete (the raised :class:`~repro.errors.EngineError`
    names it; a :class:`KeyboardInterrupt` is re-raised unchanged after
    the salvage is written).  ``resume_from`` loads such a checkpoint
    (falling back through its rotation backups), validates the campaign
    parameters against the stored metadata, reruns only the missing
    index blocks, and merges.  *fault* is a fault-injection hook for
    the crash tests (see :class:`repro.util.faults.WorkerCrash`); it is
    invoked in the worker with each ``(start, stop, step)`` block
    before processing.

    ``policy`` enables the self-healing supervisor
    (:mod:`repro.parallel.supervisor`): failed blocks are retried with
    backoff, hung blocks are timed out and their workers killed, a
    broken pool is rebuilt, stubborn blocks degrade to in-process
    execution, poison blocks are quarantined instead of sinking the
    campaign, and a campaign ``deadline`` checkpoints and stops
    cleanly.  The structured :class:`~repro.parallel.supervisor.
    RunReport` is attached to the returned cloud as
    ``cloud.run_report``.  When blocks were quarantined or abandoned to
    the deadline, the returned cloud holds fewer than ``num_states``
    states and its checkpoint records ``done_blocks`` (and the
    quarantined blocks), so ``resume_from`` re-attempts exactly the
    missing work.

    ``graph_store`` (a path or an open
    :class:`~repro.graph.store.GraphStore`) switches the pool to the
    zero-copy initializer: workers map the packed store file read-only
    instead of receiving a pickled graph, sharing one page-cache copy
    machine-wide.  The store's fingerprint must match *graph* (which is
    still used for the parent-side merge and checkpointing) — pass
    ``store.graph()`` as *graph* to guarantee it.

    ``steal_chunks=K`` enables work-stealing: the campaign is split
    into K fine contiguous blocks (recommend ``4–8 × workers``) that
    feed the executor's shared queue, so idle workers immediately pull
    the next block and stragglers delay only themselves.  Results stay
    bit-identical to the sequential campaign — blocks merge in sorted
    index order regardless of which worker ran them.

    ``flight_dir`` arms a crash flight recorder in every worker process
    (and uses the parent's, if one is installed, for in-process
    blocks): each block dumps ``flight-<pid>.json`` there before it
    starts, so a killed worker leaves a readable record naming its
    in-flight block (see :mod:`repro.perf.flight`).

    When a trace collector is installed in the parent
    (:func:`~repro.perf.tracing.collecting_trace` / ``--trace-out``),
    the campaign's trace context rides every task payload; workers
    ship their spans back as bounded shards on the block clouds, and
    the parent stitches them — rebased onto its own clock, under the
    same trace_id — into one causal tree across all paths (pool,
    steal, degraded, salvage, resume).
    """
    from repro.cloud.checkpoint import (
        CampaignMeta,
        recover_cloud,
        save_cloud,
        validate_campaign,
    )

    if num_states < 1:
        raise EngineError("num_states must be positive")
    if workers < 1:
        raise EngineError("workers must be positive")
    if batch_size < 1:
        raise EngineError("batch_size must be positive")
    if swaps_per_state < 1:
        raise EngineError("swaps_per_state must be positive")
    if method != "swap" and batch_size > 1 and kernel not in BATCHED_KERNELS:
        raise EngineError(
            f"kernel {kernel!r} has no batched implementation; use "
            f"batch_size=1 or one of {BATCHED_KERNELS}"
        )
    if steal_chunks is not None and steal_chunks < 1:
        raise EngineError("steal_chunks must be positive")
    frozen = freeze_seed(seed)
    fingerprint = graph_fingerprint(graph)

    store: GraphStore | None = None
    if graph_store is not None:
        with span("store_open"):
            store = (
                graph_store
                if isinstance(graph_store, GraphStore)
                else GraphStore.open(graph_store)
            )
            if store.fingerprint != fingerprint:
                raise EngineError(
                    f"graph store {store.path} holds a different graph "
                    f"(fingerprint {store.fingerprint[:12]}...) than the "
                    "one passed to sample_cloud_pool; pass store.graph() "
                    "to guarantee agreement"
                )

    base: FrustrationCloud | None = None
    prior_blocks: tuple[Block, ...] = ()
    if resume_from is not None:
        base, meta, _source = recover_cloud(resume_from, graph)
        if meta is not None:
            validate_campaign(
                meta,
                method=method,
                kernel=kernel,
                seed=frozen,
                batch_size=batch_size,
                store_states=store_states,
                swaps_per_state=swaps_per_state,
            )
            prior_blocks = meta.done_blocks or ((0, base.num_states, 1),)
            recorded = meta.graph_store
            if recorded is not None and os.path.exists(recorded):
                # The original campaign ran against a packed store; if
                # it is still around, its header must describe the same
                # graph we are about to continue with (a repacked store
                # means someone changed the graph under the campaign).
                if GraphStore.read_header(recorded).fingerprint != fingerprint:
                    raise CheckpointError(
                        f"checkpoint records graph store {recorded}, whose "
                        "current contents hold a different graph "
                        "(fingerprint mismatch); refusing to resume "
                        "against it"
                    )
        else:
            prior_blocks = ((0, base.num_states, 1),)
        blocks = _remaining_blocks(prior_blocks, num_states, workers)
        if steal_chunks is not None:
            blocks = _split_blocks(blocks, steal_chunks)
    elif steal_chunks is not None:
        # Work-stealing: many fine contiguous blocks feed the shared
        # executor queue; contiguous also keeps swap-chain replay
        # bounded (see _contiguous_blocks).
        blocks = _contiguous_blocks(num_states, steal_chunks)
    elif method == "swap":
        # Contiguous partition: strided blocks would make every swap
        # worker replay nearly the whole chain (see _contiguous_blocks).
        blocks = _contiguous_blocks(num_states, workers)
    else:
        blocks = _remaining_blocks((), num_states, workers)

    campaign = CampaignMeta(
        method=method,
        kernel=kernel,
        seed=frozen,
        batch_size=batch_size,
        store_states=store_states,
        swaps_per_state=swaps_per_state,
        graph_store=str(store.path) if store is not None else None,
    )
    base_states = base.num_states if base is not None else 0
    expected = base_states + sum(_block_len(b) for b in blocks)
    if expected != num_states:
        raise CheckpointError(
            f"resume accounting mismatch: checkpoint holds {base_states} "
            f"states and {sum(_block_len(b) for b in blocks)} remain, but "
            f"the target is {num_states} (was the checkpoint produced by a "
            "larger campaign?)"
        )

    def _finalize(cloud: FrustrationCloud) -> FrustrationCloud:
        cloud.metrics = get_registry().snapshot()
        if checkpoint_path is not None:
            save_cloud(
                cloud, checkpoint_path, campaign=campaign,
                keep=keep_checkpoints,
            )
        cloud.campaign_meta = campaign
        return cloud

    def _merge_completed(
        completed: list[tuple[Block, FrustrationCloud]],
    ) -> FrustrationCloud:
        """Fold completed block clouds into the resume base in sorted
        block order — the order is what makes a healed campaign
        bit-identical to a fault-free one.  Each block's metrics
        snapshot (and the resume base's restored one) is folded into
        the active registry on the way through."""
        merged = (
            base
            if base is not None
            else FrustrationCloud(graph, store_states=store_states)
        )
        _absorb_metrics(merged)
        for _block, local in sorted(completed, key=lambda pair: pair[0][0]):
            merged.merge(local)
            _absorb_metrics(local)
        return merged

    def _partial_campaign(
        done: Sequence[Block],
        quarantined: tuple[Block, ...] | None = None,
    ) -> CampaignMeta:
        return CampaignMeta(
            method=method,
            kernel=kernel,
            seed=frozen,
            batch_size=batch_size,
            store_states=store_states,
            swaps_per_state=swaps_per_state,
            graph_store=str(store.path) if store is not None else None,
            done_blocks=tuple(sorted(prior_blocks + tuple(done))),
            quarantined_blocks=quarantined,
        )

    def _salvage(
        completed: list[tuple[Block, FrustrationCloud]],
    ) -> FrustrationCloud | None:
        """Checkpoint every completed block (plus the resume base) with
        its ``done_blocks`` recorded; returns the salvage cloud, or
        ``None`` when there is nothing to save or nowhere to put it."""
        if checkpoint_path is None or not (completed or base is not None):
            return None
        salvage = _merge_completed(completed)
        salvage.metrics = get_registry().snapshot()
        save_cloud(
            salvage,
            checkpoint_path,
            campaign=_partial_campaign(tuple(b for b, _c in completed)),
            keep=keep_checkpoints,
        )
        journal_event(
            "salvage_written",
            blocks=len(completed),
            states=salvage.num_states,
            path=str(checkpoint_path),
        )
        return salvage

    journal_event(
        "campaign_started",
        driver="pool",
        num_states=num_states,
        workers=workers,
        method=method,
        kernel=kernel,
        seed=frozen,
        batch_size=batch_size,
        swaps_per_state=swaps_per_state,
        resumed_states=base_states,
        blocks=len(blocks),
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        graph_store=str(store.path) if store is not None else None,
        steal_chunks=steal_chunks,
    )

    def _block_event(name: str, block: Block, **extra) -> None:
        """Journal a block event, tagging swap blocks with the chain
        segment their start index enters at."""
        if method == "swap":
            extra["chain_segment_start"] = _chain_segment_start(block[0])
        journal_event(
            name, block=block[0], stop=block[1], step=block[2], **extra
        )

    def _campaign() -> FrustrationCloud:
        if not blocks:
            return _finalize(base)

        if policy is not None:
            return _run_supervised_campaign(
                graph, blocks, workers=workers, method=method, kernel=kernel,
                frozen=frozen, store_states=store_states,
                batch_size=batch_size, swaps_per_state=swaps_per_state,
                policy=policy, fault=fault, finalize=_finalize,
                merge_completed=_merge_completed, salvage=_salvage,
                partial_campaign=_partial_campaign,
                checkpoint_path=checkpoint_path,
                keep_checkpoints=keep_checkpoints,
                graph_store=store,
                flight_dir=flight_dir,
            )

        if workers == 1 or len(blocks) == 1:
            # The in-process path never touches the worker slot, but a
            # slot populated by an earlier campaign in this process
            # must not leak into whatever runs here next.
            _reset_worker_slot()
            merged = (
                base
                if base is not None
                else FrustrationCloud(graph, store_states=store_states)
            )
            done: list[tuple[Block, FrustrationCloud]] = []
            block = blocks[0]
            try:
                _absorb_metrics(merged)
                for block in blocks:
                    local = _run_block(
                        graph, method, kernel, frozen, block, store_states,
                        batch_size, fault, swaps_per_state,
                    )
                    done.append((block, local))
                    _block_event(
                        "block_completed", block, states=local.num_states,
                        worker=getattr(local, "worker_pid", None),
                    )
                    merged.merge(local)
                    _absorb_metrics(local)
            except BaseException as exc:
                # Salvage exactly like the pool path: every block that
                # completed before the crash (or interrupt) is
                # checkpointed, so the campaign loses only the in-flight
                # block.  KeyboardInterrupt and kin re-raise unchanged.
                salvaged = None
                if checkpoint_path is not None and (
                    done or base is not None
                ):
                    merged.metrics = get_registry().snapshot()
                    save_cloud(
                        merged,
                        checkpoint_path,
                        campaign=_partial_campaign(
                            tuple(b for b, _c in done)
                        ),
                        keep=keep_checkpoints,
                    )
                    journal_event(
                        "salvage_written",
                        blocks=len(done),
                        states=merged.num_states,
                        path=str(checkpoint_path),
                    )
                    salvaged = merged
                if not isinstance(exc, Exception):
                    raise
                detail = (
                    f"in-process block {block} crashed: "
                    f"{type(exc).__name__}: {exc}"
                )
                if salvaged is not None:
                    raise EngineError(
                        f"{detail}; salvaged {len(done)} completed "
                        f"block(s) ({salvaged.num_states} states) to "
                        f"{checkpoint_path} — finish with "
                        "sample_cloud_pool(..., resume_from=...)"
                    ) from exc
                raise EngineError(detail) from exc
            return _finalize(merged)

        completed: list[tuple[Block, FrustrationCloud]] = []
        failures: list[tuple[Block, BaseException]] = []
        if store is not None:
            initializer, initargs = (
                _init_worker_store,
                (str(store.path), store.fingerprint, flight_dir),
            )
        else:
            initializer, initargs = (
                _init_worker, (graph, fingerprint, flight_dir),
            )
        # The campaign span's context (when a collector is installed)
        # is what every worker's block span chains under.
        ctx = current_trace()
        trace = ctx.to_dict() if ctx is not None else None
        with ProcessPoolExecutor(
            max_workers=min(workers, len(blocks)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = {
                pool.submit(
                    _worker, method, kernel, frozen, block, store_states,
                    batch_size, fault, swaps_per_state, fingerprint, trace,
                ): block
                for block in blocks
            }
            try:
                for future in as_completed(futures):
                    block = futures[future]
                    try:
                        completed.append((block, future.result()))
                        _block_event(
                            "block_completed", block,
                            states=completed[-1][1].num_states,
                            worker=getattr(
                                completed[-1][1], "worker_pid", None
                            ),
                        )
                    except Exception as exc:
                        failures.append((block, exc))
                        _block_event(
                            "block_failed", block,
                            error=f"{type(exc).__name__}: {exc}",
                        )
            except BaseException:
                # A KeyboardInterrupt (parent-side ^C, or one shipped
                # back from a worker) bypasses the Exception handler
                # above.  Without this, every completed block would be
                # lost: write the salvage checkpoint, then re-raise
                # unchanged.
                pool.shutdown(wait=False, cancel_futures=True)
                _salvage(completed)
                raise

        if failures:
            failures.sort(key=lambda pair: pair[0][0])
            block, exc = failures[0]
            detail = (
                f"pool worker crashed on block {block}: "
                f"{type(exc).__name__}: {exc}"
            )
            salvage = _salvage(completed)
            if salvage is not None:
                raise EngineError(
                    f"{detail}; salvaged {len(completed)} completed "
                    f"block(s) ({salvage.num_states} states) to "
                    f"{checkpoint_path} — finish with "
                    "sample_cloud_pool(..., resume_from=...)"
                ) from exc
            raise EngineError(detail) from exc

        _steal_summary(completed, workers)
        return _finalize(_merge_completed(completed))

    with collecting() as metrics, span("campaign"):
        cloud = _campaign()
    journal_event(
        "campaign_completed", driver="pool", states=cloud.num_states
    )
    # The campaign window (worker snapshots merged in, plus the closed
    # campaign span) supersedes whatever _finalize embedded in the
    # checkpoint moments earlier.
    snap = metrics.snapshot()
    cloud.metrics = snap
    report = getattr(cloud, "run_report", None)
    if report is not None:
        report.metrics = snap
    return cloud


def _steal_summary(
    completed: Sequence[tuple[Block, FrustrationCloud]], workers: int
) -> None:
    """Journal the per-worker block/state tallies of a pool campaign
    and gauge the imbalance, so operators can see the dynamic schedule
    work-stealing actually produced."""
    per_worker: dict[int, list[int]] = {}
    for block, local in completed:
        pid = getattr(local, "worker_pid", None)
        if pid is None:
            continue
        tally = per_worker.setdefault(int(pid), [0, 0])
        tally[0] += 1
        tally[1] += _block_len(block)
    if not per_worker:
        return
    blocks_per_worker = [t[0] for t in per_worker.values()]
    registry = get_registry()
    registry.gauge("pool.workers_used", float(len(per_worker)))
    registry.gauge("pool.steal_max_blocks", float(max(blocks_per_worker)))
    registry.gauge("pool.steal_min_blocks", float(min(blocks_per_worker)))
    journal_event(
        "steal_summary",
        workers=workers,
        workers_used=len(per_worker),
        blocks={str(pid): t[0] for pid, t in sorted(per_worker.items())},
        states={str(pid): t[1] for pid, t in sorted(per_worker.items())},
    )


def _run_supervised_campaign(
    graph: SignedGraph,
    blocks: Sequence[Block],
    *,
    workers: int,
    method: str,
    kernel: str,
    frozen: int,
    store_states: bool,
    batch_size: int,
    swaps_per_state: int,
    policy,
    fault,
    finalize,
    merge_completed,
    salvage,
    partial_campaign,
    checkpoint_path,
    keep_checkpoints: int,
    graph_store: GraphStore | None = None,
    flight_dir: str | None = None,
) -> FrustrationCloud:
    """Drive *blocks* through the self-healing supervisor and shape the
    outcome back into :func:`sample_cloud_pool`'s contract.

    A fully-healed campaign finalizes exactly like an unfaulted one (so
    the result is bit-identical).  A campaign with quarantined or
    deadline-abandoned blocks returns the partial cloud with
    ``done_blocks`` (and the quarantine list) checkpointed and recorded
    in ``campaign_meta`` so ``resume_from`` re-attempts precisely the
    missing work.  Either way the :class:`~repro.parallel.supervisor.
    RunReport` rides along as ``cloud.run_report``.
    """
    from repro.cloud.checkpoint import save_cloud
    from repro.parallel.supervisor import CampaignSupervisor

    supervisor = CampaignSupervisor(
        graph, blocks, method=method, kernel=kernel, seed=frozen,
        store_states=store_states, batch_size=batch_size, workers=workers,
        policy=policy, fault=fault, swaps_per_state=swaps_per_state,
        graph_store=graph_store, flight_dir=flight_dir,
    )
    try:
        completed, report = supervisor.run()
    except BaseException:
        # Parent-side interrupt: the ladder consumes block faults, so
        # anything escaping is a stop request — salvage and re-raise.
        salvage(supervisor.completed)
        raise
    if report.ok:
        result = finalize(merge_completed(completed))
        result.run_report = report
        return result
    merged = merge_completed(completed)
    if merged.num_states == 0:
        raise SupervisorError(
            f"supervised campaign produced no states ({report.summary()})",
            report=report,
        )
    meta = partial_campaign(
        tuple(b for b, _c in completed),
        report.quarantined_blocks or None,
    )
    if checkpoint_path is not None:
        merged.metrics = get_registry().snapshot()
        save_cloud(
            merged, checkpoint_path, campaign=meta, keep=keep_checkpoints
        )
    merged.campaign_meta = meta
    merged.run_report = report
    return merged

"""Process-pool cloud sampling — real cross-tree parallelism.

The simplest parallelization of Alg. 2 runs different trees on
different workers (§3.3's opening observation).  This driver does that
with a :class:`concurrent.futures.ProcessPoolExecutor`: each worker
builds and balances a contiguous block of tree indices, accumulates a
local :class:`FrustrationCloud`, and the parent merges the per-worker
clouds — producing results **identical** to the sequential
:func:`repro.cloud.sample_cloud` for the same seed (tested), because
:class:`TreeSampler` hands out tree *i* deterministically.

On this reproduction's single-core container the pool adds overhead
rather than speed; the value here is the verified-deterministic
parallel dataflow a multi-core deployment would use as-is.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.cloud.cloud import FrustrationCloud
from repro.core.balancer import balance
from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, freeze_seed
from repro.trees.sampler import TreeSampler

__all__ = ["sample_cloud_pool"]


def _worker(
    graph: SignedGraph,
    method: str,
    kernel: str,
    seed: int,
    indices: list[int],
    store_states: bool,
) -> FrustrationCloud:
    """Balance the given tree indices and return the local cloud."""
    sampler = TreeSampler(graph, method=method, seed=seed)
    cloud = FrustrationCloud(graph, store_states=store_states)
    for i in indices:
        cloud.add_result(balance(graph, sampler.tree(i), kernel=kernel))
    return cloud


def sample_cloud_pool(
    graph: SignedGraph,
    num_states: int,
    workers: int = 2,
    method: str = "bfs",
    kernel: str = "lockstep",
    seed: SeedLike = 0,
    store_states: bool = False,
) -> FrustrationCloud:
    """Alg. 2 with tree-level process parallelism.

    Equivalent to ``sample_cloud(graph, num_states, method, kernel,
    seed)`` up to the (unordered) flip-count log.  ``workers=1`` runs
    in-process without spawning.
    """
    if num_states < 1:
        raise EngineError("num_states must be positive")
    if workers < 1:
        raise EngineError("workers must be positive")
    frozen = freeze_seed(seed)
    blocks = [
        list(range(num_states))[w::workers] for w in range(workers)
    ]
    blocks = [b for b in blocks if b]

    if workers == 1 or len(blocks) == 1:
        return _worker(graph, method, kernel, frozen, list(range(num_states)), store_states)

    merged = FrustrationCloud(graph, store_states=store_states)
    with ProcessPoolExecutor(max_workers=len(blocks)) as pool:
        futures = [
            pool.submit(_worker, graph, method, kernel, frozen, block, store_states)
            for block in blocks
        ]
        for future in futures:
            merged.merge(future.result())
    return merged

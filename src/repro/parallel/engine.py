"""Execution engines: run + model a multi-tree balancing campaign.

:func:`model_run` is the entry the benchmark harness uses for every
runtime table/figure: sample a few spanning trees, collect their
workloads, model the per-tree phase times on a machine description,
and extrapolate to the paper's 1000-tree campaign.  It also reports
the *measured* wall time of the actual Python kernels for the sampled
trees, so every modeled number sits next to a real measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.balancer import balance
from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.parallel.machine import PhaseTimes
from repro.parallel.workload import Workload, collect_workload
from repro.rng import SeedLike
from repro.trees.sampler import TreeSampler

__all__ = [
    "Machine",
    "ModeledRun",
    "model_run",
    "model_run_multi",
    "measure_python_seconds",
]


class Machine(Protocol):
    """Anything that can price a workload (CpuMachine, GpuMachine)."""

    def times(self, w: Workload) -> PhaseTimes:
        """Modeled per-tree phase times for workload *w*."""
        ...


@dataclass(frozen=True)
class ModeledRun:
    """Modeled campaign results for one (graph, machine) pair."""

    machine_name: str
    num_trees: int
    sampled_trees: int
    phase: PhaseTimes            # summed over the modeled campaign
    num_cycles_per_tree: float
    measured_sample_seconds: float  # real wall time of the sampled runs

    @property
    def graphb_seconds(self) -> float:
        """The paper's reported metric: labeling + cycle processing,
        summed over all trees (tree building and bipartitioning are
        excluded, §5)."""
        return self.phase.graphb

    @property
    def throughput_mcps(self) -> float:
        """Millions of fundamental cycles balanced per second (Figs. 7–8)."""
        total_cycles = self.num_cycles_per_tree * self.num_trees
        if self.graphb_seconds <= 0:
            return 0.0
        return total_cycles / self.graphb_seconds / 1.0e6


def model_run(
    graph: SignedGraph,
    machine: Machine,
    num_trees: int = 1000,
    sample_trees: int = 3,
    method: str = "bfs",
    seed: SeedLike = 0,
    machine_name: str | None = None,
) -> ModeledRun:
    """Model a ``num_trees`` campaign from ``sample_trees`` real trees.

    The sampled trees are actually built and balanced (so the workload
    numbers are measurements, not estimates); their mean phase times
    under *machine* are scaled to the campaign size.
    """
    if sample_trees < 1 or num_trees < 1:
        raise EngineError("tree counts must be positive")
    sampler = TreeSampler(graph, method=method, seed=seed)

    per_tree: list[PhaseTimes] = []
    cycles = 0.0
    start = time.perf_counter()
    for i in range(sample_trees):
        tree = sampler.tree(i)
        w = collect_workload(graph, tree)
        per_tree.append(machine.times(w))
        cycles += w.num_cycles
    measured = time.perf_counter() - start

    scale = num_trees / sample_trees
    summed = PhaseTimes(
        tree_generation=sum(p.tree_generation for p in per_tree) * scale,
        labeling=sum(p.labeling for p in per_tree) * scale,
        cycle_processing=sum(p.cycle_processing for p in per_tree) * scale,
        bipartition=sum(p.bipartition for p in per_tree) * scale,
    )
    return ModeledRun(
        machine_name=machine_name or type(machine).__name__,
        num_trees=num_trees,
        sampled_trees=sample_trees,
        phase=summed,
        num_cycles_per_tree=cycles / sample_trees,
        measured_sample_seconds=measured,
    )


def model_run_multi(
    graph: SignedGraph,
    machines: dict[str, Machine],
    num_trees: int = 1000,
    sample_trees: int = 3,
    method: str = "bfs",
    seed: SeedLike = 0,
) -> dict[str, ModeledRun]:
    """Model one campaign on several machines from a *shared* set of
    sampled workloads (each tree is built and profiled once).

    This is what the multi-column runtime tables use: identical
    workloads priced per machine, so column differences reflect only
    the machine models.
    """
    if sample_trees < 1 or num_trees < 1:
        raise EngineError("tree counts must be positive")
    sampler = TreeSampler(graph, method=method, seed=seed)

    start = time.perf_counter()
    workloads = []
    for i in range(sample_trees):
        tree = sampler.tree(i)
        workloads.append(collect_workload(graph, tree))
    measured = time.perf_counter() - start
    cycles = sum(w.num_cycles for w in workloads) / sample_trees
    scale = num_trees / sample_trees

    out: dict[str, ModeledRun] = {}
    for name, machine in machines.items():
        per_tree = [machine.times(w) for w in workloads]
        summed = PhaseTimes(
            tree_generation=sum(p.tree_generation for p in per_tree) * scale,
            labeling=sum(p.labeling for p in per_tree) * scale,
            cycle_processing=sum(p.cycle_processing for p in per_tree) * scale,
            bipartition=sum(p.bipartition for p in per_tree) * scale,
        )
        out[name] = ModeledRun(
            machine_name=name,
            num_trees=num_trees,
            sampled_trees=sample_trees,
            phase=summed,
            num_cycles_per_tree=cycles,
            measured_sample_seconds=measured,
        )
    return out


def measure_python_seconds(
    graph: SignedGraph,
    num_trees: int,
    sample_trees: int = 2,
    kernel: str = "walk",
    use_baseline: bool = False,
    method: str = "bfs",
    seed: SeedLike = 0,
) -> float:
    """Measured wall seconds for a ``num_trees`` campaign of the *actual*
    Python implementation, extrapolated from ``sample_trees`` real runs.

    With ``use_baseline=True`` this times the Alg. 1 dense-matrix
    baseline — the 'Python [39]' column of Table 2.
    """
    from repro.core.baseline import balance_baseline

    sampler = TreeSampler(graph, method=method, seed=seed)
    start = time.perf_counter()
    for i in range(sample_trees):
        tree = sampler.tree(i)
        if use_baseline:
            balance_baseline(graph, tree)
        else:
            balance(graph, tree, kernel=kernel)
    elapsed = time.perf_counter() - start
    return elapsed * (num_trees / sample_trees)

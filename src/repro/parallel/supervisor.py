"""Self-healing campaign supervisor: retries, timeouts, backoff,
quarantine, and graceful degradation for pool cloud sampling.

The block-parallel campaign driver (:mod:`repro.parallel.pool`) fans a
cloud campaign out over ``(start, stop, step)`` tree-index blocks.
Without supervision, one crashed worker aborts the campaign (leaving a
salvage checkpoint the *user* must resume by hand) and one hung worker
stalls it forever.  This module wraps the same dataflow in a
fault-handling ladder so a campaign heals itself instead:

1. **Retry in the pool.**  A block whose worker raises is resubmitted
   up to ``max_retries`` times, after an exponential backoff with
   deterministic jitter (see :meth:`RetryPolicy.backoff_seconds`).
2. **Watchdog timeouts.**  With ``block_timeout`` set, the supervisor's
   wait loop acts as a watchdog over the executor's futures: a block
   that exceeds its wall-clock budget is declared hung, the worker
   processes are terminated (a hung future cannot be cancelled), the
   pool is rebuilt, and innocent in-flight blocks are requeued without
   burning one of their attempts.
3. **Fresh pool after a break.**  ``BrokenProcessPool`` poisons every
   in-flight future without saying *which* block killed the worker, so
   the suspects are re-run one at a time in a fresh pool — an attempt
   is charged only when a block fails alone and the attribution is
   unambiguous.  Innocent suspects complete; the poison block walks its
   own retry ladder.
4. **In-process degradation.**  A block that exhausts its pool retries
   with ordinary exceptions is re-run sequentially in the parent
   process (``degrade=True``), which removes the pool infrastructure —
   pickling, worker state, process scheduling — from the equation.
   Blocks that *hung* or *killed a worker process* never degrade: an
   in-process hang cannot be interrupted and an in-process hard crash
   would take the campaign down with it.
5. **Poison-block quarantine.**  A block that still fails is recorded
   in the :class:`RunReport` and *skipped* — the campaign completes
   with the surviving blocks rather than sinking.  The checkpoint
   records quarantined blocks (they are excluded from ``done_blocks``),
   so a later resume re-attempts exactly them.
6. **Campaign deadline.**  With ``deadline`` set, the supervisor stops
   submitting once the wall-clock budget expires, tears the pool down,
   and hands the completed blocks back for a clean checkpoint — the
   campaign stops on its own terms instead of being killed mid-flight.

Determinism: a block's result depends only on its ``(start, stop,
step)`` indices and the campaign seed (:class:`~repro.trees.sampler.
TreeSampler` hands out tree *i* deterministically), so retries, pool
rebuilds, and in-process degradation cannot change what a block
computes — only *whether* it completes.  The caller merges completed
blocks in sorted block order, so a campaign that heals is bit-identical
to one that never faulted (tested in
``tests/parallel/test_supervisor.py``).

Every fault, retry, backoff, teardown, degradation, and quarantine is
recorded as a :class:`FaultEvent` in the :class:`RunReport`, which the
pool driver attaches to the returned cloud (``cloud.run_report``) and
which dumps to JSON for operators.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence, Tuple

from repro.errors import SupervisorError
from repro.graph.csr import SignedGraph
from repro.perf.journal import journal_event
from repro.perf.registry import get_registry
from repro.perf.tracectx import current_trace

__all__ = [
    "RetryPolicy",
    "FaultEvent",
    "RunReport",
    "run_supervised",
]

Block = Tuple[int, int, int]

#: Minimum wait-loop granularity: the supervisor never blocks longer
#: than this without re-checking timeouts, cooled retries, and the
#: campaign deadline.
_TICK = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-handling knobs for a supervised campaign.

    ``max_retries`` counts *re*-attempts: a block is tried at most
    ``max_retries + 1`` times in the pool before it degrades or is
    quarantined.  ``block_timeout`` (seconds, ``None`` = unlimited) is
    each attempt's wall-clock budget; ``deadline`` (seconds, ``None`` =
    unlimited) is the whole campaign's.  The backoff before retry *k*
    (1-based) is ``min(backoff_max, backoff_base * backoff_factor**(k-1))
    * (1 + j)`` where ``j ∈ [0, jitter)`` is deterministic in
    ``(seed, block, k)`` — reruns of a campaign sleep the same amounts.
    ``degrade=False`` disables the in-process fallback rung (stubborn
    blocks go straight to quarantine).
    """

    max_retries: int = 2
    block_timeout: float | None = None
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    deadline: float | None = None
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SupervisorError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.block_timeout is not None and self.block_timeout <= 0:
            raise SupervisorError(
                f"block_timeout must be positive, got {self.block_timeout}"
            )
        if self.backoff_base < 0:
            raise SupervisorError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise SupervisorError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise SupervisorError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SupervisorError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise SupervisorError(
                f"deadline must be positive, got {self.deadline}"
            )

    def backoff_seconds(self, seed: int, block: Block, retry: int) -> float:
        """Deterministic backoff before the *retry*-th re-attempt
        (1-based) of *block*: exponential growth, capped, with a jitter
        fraction drawn from a hash of ``(seed, block, retry)`` so two
        runs of the same campaign back off identically."""
        if retry < 1:
            raise SupervisorError(f"retry must be >= 1, got {retry}")
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (retry - 1),
        )
        if base <= 0 or self.jitter == 0:
            return base
        key = f"{seed}:{block[0]}:{block[1]}:{block[2]}:{retry}"
        digest = hashlib.sha256(key.encode("ascii")).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter * frac)


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the supervisor's structured fault log."""

    t: float  #: seconds since campaign start
    kind: str  #: failure | timeout | backoff | suspect | pool_rebuild |
    #:  requeue | degrade | quarantine | deadline | stop
    block: Block | None
    attempt: int
    detail: str


@dataclass
class RunReport:
    """What a supervised campaign survived.

    Attached to the returned cloud as ``cloud.run_report``; dump with
    :meth:`to_json` / :meth:`dump` for operators.  ``completed`` holds
    every block that produced states (in merge order), ``quarantined``
    the blocks given up on (with attempt counts and last error),
    ``remaining`` the blocks abandoned un-attempted when the deadline
    expired, and ``events`` the full chronological fault log.

    Timestamps: every duration in the report (event ``t`` offsets,
    ``wall_seconds``, backoff delays) is measured on the monotonic
    clock, so NTP steps and DST changes mid-campaign cannot corrupt
    them; ``started_at_unix`` is the single wall-clock anchor (one
    ``time.time()`` read at campaign start) that lets operators place
    the monotonic offsets in calendar time.  ``metrics`` carries the
    campaign's merged metrics snapshot when the pool driver ran with
    metrics enabled.
    """

    policy: RetryPolicy
    blocks_total: int = 0
    completed: list[Block] = field(default_factory=list)
    quarantined: list[dict] = field(default_factory=list)
    remaining: list[Block] = field(default_factory=list)
    degraded: list[Block] = field(default_factory=list)
    events: list[FaultEvent] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    deadline_hit: bool = False
    stopped: bool = False
    wall_seconds: float = 0.0
    started_at_unix: float = 0.0
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        """True when every block completed: nothing quarantined,
        nothing abandoned to the deadline or a stop request."""
        return not self.quarantined and not self.remaining

    @property
    def quarantined_blocks(self) -> tuple[Block, ...]:
        return tuple(sorted(tuple(q["block"]) for q in self.quarantined))

    def to_dict(self) -> dict:
        """JSON-ready dict: policy knobs, per-block outcomes, counters,
        and the chronological fault log."""
        return {
            "policy": asdict(self.policy),
            "blocks_total": self.blocks_total,
            "completed": [list(b) for b in self.completed],
            "quarantined": [
                {**q, "block": list(q["block"])} for q in self.quarantined
            ],
            "remaining": [list(b) for b in self.remaining],
            "degraded": [list(b) for b in self.degraded],
            "events": [
                {**asdict(e), "block": list(e.block) if e.block else None}
                for e in self.events
            ],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "deadline_hit": self.deadline_hit,
            "stopped": self.stopped,
            "wall_seconds": self.wall_seconds,
            "started_at_unix": self.started_at_unix,
            "metrics": self.metrics,
            "ok": self.ok,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path) -> None:
        """Write the report as JSON to *path*."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def summary(self) -> str:
        """One line for logs/CLI output."""
        parts = [
            f"{len(self.completed)}/{self.blocks_total} blocks completed",
            f"{self.retries} retries",
            f"{self.timeouts} timeouts",
            f"{self.pool_rebuilds} pool rebuilds",
        ]
        if self.degraded:
            parts.append(f"{len(self.degraded)} degraded in-process")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.deadline_hit:
            parts.append("deadline hit")
        if self.stopped:
            parts.append("stopped on request")
        return "; ".join(parts)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool whose workers may be hung.  ``Future.cancel`` cannot
    stop a running call, so the worker processes are terminated
    directly and the executor abandoned."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - best-effort teardown
        pass


class CampaignSupervisor:
    """One supervised campaign run.  See the module docstring for the
    ladder; :func:`run_supervised` is the public entry point."""

    def __init__(
        self,
        graph: SignedGraph,
        blocks: Sequence[Block],
        *,
        method: str,
        kernel: str,
        seed: int,
        store_states: bool,
        batch_size: int,
        workers: int,
        policy: RetryPolicy,
        fault: Callable[[Block], None] | None = None,
        swaps_per_state: int = 1,
        graph_store=None,
        stop_event: "threading.Event | None" = None,
        flight_dir: str | None = None,
    ) -> None:
        from repro.graph.store import GraphStore, graph_fingerprint

        self.graph = graph
        # Zero-copy mode: workers map the packed store file instead of
        # receiving a pickled graph, and every pool rebuild reopens the
        # mapping (a header read) instead of re-pickling.  The campaign
        # fingerprint pins the graph identity either way; each task
        # carries it so a stale worker slot is detected (and, for
        # store-backed workers, healed) rather than trusted.
        if graph_store is not None and not isinstance(graph_store, GraphStore):
            graph_store = GraphStore.open(graph_store)
        self.graph_store: GraphStore | None = graph_store
        self.fingerprint = graph_fingerprint(graph)
        if graph_store is not None and (
            graph_store.fingerprint != self.fingerprint
        ):
            raise SupervisorError(
                f"graph store {graph_store.path} holds a different graph "
                "than the one being supervised (fingerprint mismatch)"
            )
        self.blocks = [tuple(int(x) for x in b) for b in blocks]
        self.method = method
        self.kernel = kernel
        self.seed = seed
        self.store_states = store_states
        self.batch_size = batch_size
        self.workers = workers
        self.policy = policy
        self.fault = fault
        self.swaps_per_state = swaps_per_state
        self.stop_event = stop_event
        self.flight_dir = flight_dir
        # The ambient trace context (the campaign span's, or a serve
        # request's) at construction time is what every pool task's
        # block span chains under; None when no trace is being
        # collected, keeping task payloads unchanged.
        ctx = current_trace()
        self.trace = ctx.to_dict() if ctx is not None else None

        self.report = RunReport(policy=policy, blocks_total=len(self.blocks))
        self.completed: list[tuple[Block, object]] = []
        # (block, attempt) ready to submit; attempt is 1-based.
        self.pending: deque[tuple[Block, int]] = deque(
            (b, 1) for b in self.blocks
        )
        # (ready_time, block, attempt) sleeping out a backoff.
        self.cooling: list[tuple[float, Block, int]] = []
        # Blocks in flight when the pool broke: re-run one at a time so
        # the poison block is attributed unambiguously.
        self.suspects: deque[tuple[Block, int]] = deque()
        # Blocks that exhausted pool retries and degrade in-process.
        self.degrade_queue: deque[tuple[Block, int]] = deque()
        self.pool: ProcessPoolExecutor | None = None
        # Monotonic origin for every duration; the one-and-only
        # wall-clock read anchors the report in calendar time.
        self.start = time.monotonic()
        self.report.started_at_unix = time.time()

    # -- bookkeeping ---------------------------------------------------

    #: FaultEvent kind -> campaign-journal event kind.  Kinds absent
    #: here (backoff, degrade) have dedicated journal events emitted at
    #: the sites where the matching RunReport counter changes, so a
    #: summarized journal reconciles exactly with the report.
    _JOURNAL_KINDS = {
        "failure": "block_failed",
        "crash": "block_failed",
        "timeout": "block_timeout",
        "suspect": "worker_suspected",
        "requeue": "block_requeued",
        "pool_rebuild": "pool_rebuilt",
        "quarantine": "block_quarantined",
        "deadline": "deadline_hit",
        "stop": "campaign_stopped",
    }

    def _event(
        self, kind: str, block: Block | None, attempt: int, detail: str
    ) -> None:
        self.report.events.append(
            FaultEvent(
                t=round(time.monotonic() - self.start, 4),
                kind=kind,
                block=block,
                attempt=attempt,
                detail=detail,
            )
        )
        journal_kind = self._JOURNAL_KINDS.get(kind)
        if journal_kind is not None:
            journal_event(
                journal_kind,
                block=block[0] if block is not None else None,
                attempt=attempt,
                detail=detail,
            )

    def _complete(self, block: Block, local) -> None:
        """Record one completed block (all ladder rungs funnel here)."""
        self.completed.append((block, local))
        journal_event(
            "block_completed", block=block[0], stop=block[1], step=block[2],
            states=getattr(local, "num_states", None),
            worker=getattr(local, "worker_pid", None),
        )

    def _deadline_left(self) -> float | None:
        if self.policy.deadline is None:
            return None
        return self.policy.deadline - (time.monotonic() - self.start)

    def _quarantine(self, block: Block, attempt: int, detail: str) -> None:
        self.report.quarantined.append(
            {"block": block, "attempts": attempt, "error": detail}
        )
        get_registry().count("supervisor.quarantined_total", 1)
        self._event("quarantine", block, attempt, detail)

    def _register_failure(
        self, block: Block, attempt: int, kind: str, detail: str
    ) -> None:
        """One attempt of *block* failed; climb the ladder: backoff +
        retry, then in-process degradation (plain failures only), then
        quarantine."""
        if kind == "timeout":
            self.report.timeouts += 1
            get_registry().count("supervisor.timeouts_total", 1)
        self._event(kind, block, attempt, detail)
        if attempt <= self.policy.max_retries:
            delay = self.policy.backoff_seconds(self.seed, block, attempt)
            self.report.retries += 1
            get_registry().count("supervisor.retries_total", 1)
            journal_event(
                "block_retried", block=block[0], attempt=attempt,
                backoff_seconds=delay,
            )
            if delay > 0:
                self._event(
                    "backoff", block, attempt,
                    f"backing off {delay:.3f}s before attempt {attempt + 1}",
                )
            self.cooling.append((time.monotonic() + delay, block, attempt + 1))
            return
        # Pool retries exhausted.  Hung blocks cannot be interrupted
        # in-process and crash blocks would kill the parent, so only
        # ordinary failures take the degradation rung.
        if self.policy.degrade and kind == "failure" and self.workers > 1:
            self.degrade_queue.append((block, attempt + 1))
            self._event(
                "degrade", block, attempt,
                "pool retries exhausted; falling back to in-process "
                "sequential execution",
            )
            return
        self._quarantine(block, attempt, detail)

    # -- pool management -----------------------------------------------
    def _pool_size(self) -> int:
        return max(1, min(self.workers, len(self.blocks)))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            from repro.parallel.pool import _init_worker, _init_worker_store

            if self.graph_store is not None:
                # Rebuilds cost a header read + mmap per worker, not a
                # graph pickle; the page-cache copy is shared.
                initializer = _init_worker_store
                initargs = (
                    str(self.graph_store.path), self.fingerprint,
                    self.flight_dir,
                )
                mode = "store"
            else:
                initializer = _init_worker
                initargs = (self.graph, self.fingerprint, self.flight_dir)
                mode = "pickle"
            self.pool = ProcessPoolExecutor(
                max_workers=self._pool_size(),
                initializer=initializer,
                initargs=initargs,
            )
            journal_event(
                "pool_initialized", mode=mode, workers=self._pool_size()
            )
        return self.pool

    def _teardown_pool(self) -> None:
        if self.pool is not None:
            _terminate_pool(self.pool)
            self.pool = None

    def _rebuild_after(self, reason: str) -> None:
        self._teardown_pool()
        self.report.pool_rebuilds += 1
        get_registry().count("supervisor.pool_rebuilds_total", 1)
        self._event("pool_rebuild", None, 0, reason)

    # -- main loop -----------------------------------------------------
    def run(self) -> tuple[list[tuple[Block, object]], RunReport]:
        try:
            if self.workers > 1 and len(self.blocks) > 1:
                self._run_pooled()
            else:
                self._run_inprocess(self.pending)
            self._run_degraded()
        finally:
            self._teardown_pool()
            self.report.completed = sorted(b for b, _c in self.completed)
            self.report.wall_seconds = round(
                time.monotonic() - self.start, 4
            )
        return self.completed, self.report

    def _promote_cooled(self) -> None:
        now = time.monotonic()
        still: list[tuple[float, Block, int]] = []
        for ready, block, attempt in self.cooling:
            if ready <= now:
                self.pending.append((block, attempt))
            else:
                still.append((ready, block, attempt))
        self.cooling = still

    def _stop_requested(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    def _abandon_to_deadline(self, inflight: dict, kind: str = "deadline") -> None:
        """The campaign deadline expired (or an external stop was
        requested, ``kind="stop"``): stop cleanly, recording every
        block that did not finish."""
        if kind == "stop":
            self.report.stopped = True
        else:
            self.report.deadline_hit = True
        left: list[Block] = []
        left += [b for b, _a in self.pending]
        left += [b for _r, b, _a in self.cooling]
        left += [b for b, _a in self.suspects]
        left += [b for b, _a in self.degrade_queue]
        left += [b for b, _a, _t in inflight.values()]
        self.report.remaining = sorted(set(left))
        self.pending.clear()
        self.cooling.clear()
        self.suspects.clear()
        self.degrade_queue.clear()
        inflight.clear()
        self._teardown_pool()
        if kind == "stop":
            detail = (
                "external stop requested; "
                f"{len(self.report.remaining)} block(s) abandoned for a "
                "clean checkpointed stop"
            )
        else:
            detail = (
                f"campaign deadline of {self.policy.deadline:.3f}s expired; "
                f"{len(self.report.remaining)} block(s) abandoned for a "
                "clean checkpointed stop"
            )
        self._event(kind, None, 0, detail)

    def _run_pooled(self) -> None:
        inflight: dict = {}  # Future -> (block, attempt, t_submit)
        while self.pending or self.cooling or self.suspects or inflight:
            if self._stop_requested():
                self._abandon_to_deadline(inflight, kind="stop")
                return
            left = self._deadline_left()
            if left is not None and left <= 0:
                self._abandon_to_deadline(inflight)
                return
            self._promote_cooled()

            # Submit.  While suspects exist, run exactly one block at a
            # time so a repeat pool break is attributed unambiguously.
            try:
                if self.suspects:
                    if not inflight:
                        block, attempt = self.suspects.popleft()
                        fut = self._ensure_pool().submit(
                            _pool_entry, self.method, self.kernel, self.seed,
                            block, self.store_states, self.batch_size,
                            self.fault, self.swaps_per_state,
                            self.fingerprint, self.trace,
                        )
                        inflight[fut] = (block, attempt, time.monotonic())
                else:
                    while self.pending and len(inflight) < self._pool_size():
                        block, attempt = self.pending.popleft()
                        fut = self._ensure_pool().submit(
                            _pool_entry, self.method, self.kernel, self.seed,
                            block, self.store_states, self.batch_size,
                            self.fault, self.swaps_per_state,
                            self.fingerprint, self.trace,
                        )
                        inflight[fut] = (block, attempt, time.monotonic())
            except (BrokenProcessPool, RuntimeError) as exc:
                # The pool broke between our bookkeeping and submit;
                # requeue and rebuild.
                self.pending.appendleft((block, attempt))
                for f, (b, a, _t) in list(inflight.items()):
                    self.suspects.append((b, a))
                inflight.clear()
                self._rebuild_after(
                    f"executor rejected submissions: "
                    f"{type(exc).__name__}: {exc}"
                )
                continue

            if not inflight:
                # Everything is cooling; sleep until the first retry is
                # ready (bounded by the tick so deadlines stay live).
                if self.cooling:
                    ready = min(r for r, _b, _a in self.cooling)
                    pause = max(0.0, ready - time.monotonic())
                    if left is not None:
                        pause = min(pause, max(left, 0.0))
                    time.sleep(min(pause, 1.0) if pause > 0 else 0.0)
                continue

            # Wait for completions, bounded by the nearest of: a block
            # timeout expiring, a cooled retry becoming ready, the
            # campaign deadline, and the watchdog tick.
            timeout = _TICK if self.cooling else 1.0
            now = time.monotonic()
            if self.policy.block_timeout is not None:
                nearest = min(
                    t0 + self.policy.block_timeout - now
                    for _b, _a, t0 in inflight.values()
                )
                timeout = min(timeout, max(nearest, 0.0))
            if left is not None:
                timeout = min(timeout, max(left, 0.0))
            n_inflight = len(inflight)
            done, _not_done = wait(
                list(inflight), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )

            broken = False
            for fut in done:
                block, attempt, _t0 = inflight.pop(fut)
                try:
                    local = fut.result(timeout=0)
                except BrokenProcessPool as exc:
                    broken = True
                    if n_inflight == 1:
                        # Running alone: the attribution is certain.
                        self._register_failure(
                            block, attempt, "crash",
                            f"worker process died: {exc}",
                        )
                    else:
                        self.suspects.append((block, attempt))
                        self._event(
                            "suspect", block, attempt,
                            "pool broke with this block in flight; will "
                            "re-run isolated for attribution",
                        )
                except BaseException as exc:
                    self._register_failure(
                        block, attempt, "failure",
                        f"{type(exc).__name__}: {exc}",
                    )
                else:
                    self._complete(block, local)
            if broken:
                for fut, (block, attempt, _t0) in list(inflight.items()):
                    self.suspects.append((block, attempt))
                    self._event(
                        "suspect", block, attempt,
                        "pool broke with this block in flight; will "
                        "re-run isolated for attribution",
                    )
                inflight.clear()
                self._rebuild_after("BrokenProcessPool: worker died")
                continue

            # Watchdog: declare blocks past their wall-clock budget
            # hung.  A running future cannot be cancelled, so the pool
            # is torn down; innocents are requeued without charge.
            if self.policy.block_timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    (fut, entry)
                    for fut, entry in inflight.items()
                    if now - entry[2] >= self.policy.block_timeout
                    and not fut.done()
                ]
                if expired:
                    expired_futs = {fut for fut, _e in expired}
                    for fut, (block, attempt, t0) in expired:
                        inflight.pop(fut)
                        self._register_failure(
                            block, attempt, "timeout",
                            f"block exceeded block_timeout="
                            f"{self.policy.block_timeout:.3f}s "
                            f"(ran {now - t0:.3f}s); worker terminated",
                        )
                    for fut, (block, attempt, _t0) in list(inflight.items()):
                        if fut.done():
                            # Completed while we were deciding; harvest.
                            continue
                        inflight.pop(fut)
                        self.pending.appendleft((block, attempt))
                        self._event(
                            "requeue", block, attempt,
                            "requeued without charge: pool torn down to "
                            "kill a hung sibling",
                        )
                    # Harvest any finished-but-unprocessed futures
                    # before the teardown discards them.
                    for fut, (block, attempt, _t0) in list(inflight.items()):
                        inflight.pop(fut)
                        try:
                            self._complete(block, fut.result(timeout=0))
                        except BaseException as exc:
                            self._register_failure(
                                block, attempt, "failure",
                                f"{type(exc).__name__}: {exc}",
                            )
                    self._rebuild_after(
                        f"terminated {len(expired_futs)} hung worker(s)"
                    )

    def _run_inprocess(self, queue: deque) -> None:
        """Sequential ladder for ``workers == 1`` (or a single block):
        retries and backoff apply, but there is no timeout rung — an
        in-process block cannot be interrupted — and no degradation
        rung, because execution is already in-process."""
        from repro.parallel.pool import _reset_worker_slot, _run_block

        # In-process execution bypasses the worker slot, but clear it
        # anyway: a slot left behind by an earlier executor in this
        # process must not survive into degraded/in-process reuse.
        _reset_worker_slot()
        while queue:
            block, attempt = queue.popleft()
            while True:
                stop = self._stop_requested()
                left = self._deadline_left()
                if stop or (left is not None and left <= 0):
                    requeue: deque = deque([(block, attempt)])
                    requeue.extend(queue)
                    queue.clear()
                    self._abandon_to_deadline(
                        {}, kind="stop" if stop else "deadline"
                    )
                    self.report.remaining = sorted(
                        set(
                            self.report.remaining
                            + [b for b, _a in requeue]
                        )
                    )
                    return
                try:
                    local = _run_block(
                        self.graph, self.method, self.kernel, self.seed,
                        block, self.store_states, self.batch_size,
                        self.fault, self.swaps_per_state,
                    )
                except Exception as exc:
                    if attempt <= self.policy.max_retries:
                        self._event(
                            "failure", block, attempt,
                            f"{type(exc).__name__}: {exc}",
                        )
                        delay = self.policy.backoff_seconds(
                            self.seed, block, attempt
                        )
                        self.report.retries += 1
                        get_registry().count("supervisor.retries_total", 1)
                        journal_event(
                            "block_retried", block=block[0], attempt=attempt,
                            backoff_seconds=delay,
                        )
                        if delay > 0:
                            self._event(
                                "backoff", block, attempt,
                                f"backing off {delay:.3f}s before attempt "
                                f"{attempt + 1}",
                            )
                            time.sleep(delay)
                        attempt += 1
                        continue
                    self._event(
                        "failure", block, attempt,
                        f"{type(exc).__name__}: {exc}",
                    )
                    self._quarantine(
                        block, attempt, f"{type(exc).__name__}: {exc}"
                    )
                    break
                else:
                    self._complete(block, local)
                    break

    def _run_degraded(self) -> None:
        """Final rung: re-run stubborn blocks sequentially in the
        parent process."""
        from repro.parallel.pool import _reset_worker_slot, _run_block

        if self.degrade_queue:
            _reset_worker_slot()
        while self.degrade_queue:
            if self._stop_requested():
                self._abandon_to_deadline({}, kind="stop")
                return
            left = self._deadline_left()
            if left is not None and left <= 0:
                self._abandon_to_deadline({})
                return
            block, attempt = self.degrade_queue.popleft()
            try:
                local = _run_block(
                    self.graph, self.method, self.kernel, self.seed, block,
                    self.store_states, self.batch_size, self.fault,
                    self.swaps_per_state,
                )
            except Exception as exc:
                self._quarantine(
                    block, attempt,
                    f"in-process fallback failed: "
                    f"{type(exc).__name__}: {exc}",
                )
            else:
                self._complete(block, local)
                self.report.degraded.append(block)
                journal_event("block_degraded", block=block[0])
                self._event(
                    "degrade", block, attempt,
                    "in-process fallback succeeded",
                )


def _pool_entry(
    method: str,
    kernel: str,
    seed: int,
    block: Block,
    store_states: bool,
    batch_size: int,
    fault: Callable[[Block], None] | None,
    swaps_per_state: int = 1,
    fingerprint: str | None = None,
    trace: dict | None = None,
):
    """Picklable worker entry point (module-level for the executor)."""
    from repro.parallel.pool import _worker

    return _worker(
        method, kernel, seed, block, store_states, batch_size, fault,
        swaps_per_state, fingerprint, trace,
    )


def run_supervised(
    graph: SignedGraph,
    blocks: Sequence[Block],
    *,
    method: str,
    kernel: str,
    seed: int,
    store_states: bool,
    batch_size: int,
    workers: int,
    policy: RetryPolicy,
    fault: Callable[[Block], None] | None = None,
    swaps_per_state: int = 1,
    graph_store=None,
    stop_event: "threading.Event | None" = None,
    flight_dir: str | None = None,
) -> tuple[list[tuple[Block, object]], RunReport]:
    """Run campaign *blocks* under the fault-handling ladder.

    Returns ``(completed, report)`` where *completed* is a list of
    ``(block, local_cloud)`` pairs for every block that produced states
    (callers must merge them in sorted block order for determinism) and
    *report* is the structured :class:`RunReport`.  Exceptions raised
    by blocks are consumed by the ladder; only a parent-side
    :class:`KeyboardInterrupt` (and kin) propagates, so the caller can
    salvage-checkpoint and re-raise.

    ``stop_event`` (a :class:`threading.Event`) requests a cooperative
    stop from outside — e.g. the serve daemon draining on SIGTERM: the
    supervisor finishes nothing new once the event is set, abandons
    remaining blocks exactly like an expired deadline (clean teardown,
    ``report.remaining`` populated, ``report.stopped = True``), and
    returns the blocks that did complete so the caller can checkpoint
    them.
    """
    return CampaignSupervisor(
        graph,
        blocks,
        method=method,
        kernel=kernel,
        seed=seed,
        store_states=store_states,
        batch_size=batch_size,
        workers=workers,
        policy=policy,
        fault=fault,
        swaps_per_state=swaps_per_state,
        graph_store=graph_store,
        stop_event=stop_event,
        flight_dir=flight_dir,
    ).run()

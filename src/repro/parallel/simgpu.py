"""Simulated GPU machine: the CUDA-analog cost model.

No CUDA device is available, so the CUDA columns are modeled by
replaying the measured workload on a machine shaped like the Titan V
(80 SMs, §5) under the paper's parallelization scheme (§3.3.2):

* **warp per vertex, lane per non-tree edge**: each vertex's cycles are
  processed by one warp, 32 lanes at a time; lanes in a batch run in
  lockstep, so a batch costs its *longest* lane (divergence).  A
  43k-degree hub therefore serializes ~1,350 batches in one warp —
  reproducing the paper's strong runtime correlation with max degree
  (r = 0.96, §6.2).
* a bounded number of warps execute concurrently (latency-limited
  occupancy); the cycle kernel's time is the dynamic-schedule makespan
  of warp tasks over that pool;
* every kernel launch pays ``launch_seconds``; level-synchronous
  phases (BFS, labeling) launch one kernel per level, which is what
  keeps small graphs from saturating the device (§6.1);
* lane ops are slower than CPU ops (irregular, uncoalesced gathers),
  but there are ~10,000 of them in flight.

Defaults calibrated once against Table 2's CUDA column; see
EXPERIMENTS.md.

``profile(w)`` returns the cycle kernel's warp-level schedule timeline
— each segment one vertex's warp task, carrying the vertex id and its
cycle count — plus the per-phase launch-overhead ledger and divergence
summary.  Profiled phase times are bit-identical to ``times(w)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import EngineError
from repro.parallel.machine import PhaseTimes
from repro.parallel.schedule import makespan_dynamic
from repro.parallel.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.timeline import MachineProfile

__all__ = ["GpuMachine", "CUDA_MACHINE"]


@dataclass(frozen=True)
class GpuMachine:
    """Titan-V-shaped execution model (§5: 80 SMs, 12 GB, 652 GB/s)."""

    num_sms: int = 80
    concurrent_warps_per_sm: int = 8
    warp_size: int = 32
    lane_op_seconds: float = 80.0e-9
    launch_seconds: float = 8.0e-6
    divergence_factor: float = 1.8

    def __post_init__(self) -> None:
        if self.num_sms < 1 or self.concurrent_warps_per_sm < 1:
            raise EngineError("GPU must have at least one SM and warp")

    @property
    def warp_pool(self) -> int:
        """Warps executing concurrently across the device."""
        return self.num_sms * self.concurrent_warps_per_sm

    @property
    def lane_pool(self) -> int:
        return self.warp_pool * self.warp_size

    # ------------------------------------------------------------------
    def _flat_kernel(self, work_ops: float, launches: int = 1) -> float:
        """A kernel that spreads *work_ops* uniformly over all lanes."""
        return (
            launches * self.launch_seconds
            + work_ops * self.lane_op_seconds / self.lane_pool
        )

    def _warp_tasks(self, w: Workload) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(task seconds, owning vertex, cycle count) per warp task."""
        owners, owner_costs = w.owner_costs
        counts = np.zeros(len(owners), dtype=np.float64)
        uniq, inverse = np.unique(w.cycle_owner, return_inverse=True)
        np.add.at(counts, inverse, 1.0)
        mean_cost = owner_costs / np.maximum(counts, 1.0)
        batches = np.ceil(counts / self.warp_size)
        tasks = (
            batches * mean_cost * self.divergence_factor * self.lane_op_seconds
        )
        return tasks, owners, counts

    def _warp_task_seconds(self, w: Workload) -> np.ndarray:
        """Per-vertex warp task times for the cycle kernel.

        A vertex with k cycles runs ceil(k/32) lane batches; each batch
        costs its longest lane.  We model batch cost as the vertex's
        mean cycle cost times a divergence factor — exact batch maxima
        would require per-batch lane assignment, and the mean×factor
        approximation keeps the hub-serialization effect while staying
        O(#vertices).
        """
        tasks, _owners, _counts = self._warp_tasks(w)
        return tasks

    def times(
        self, w: Workload, profile: Optional["MachineProfile"] = None
    ) -> PhaseTimes:
        """Modeled per-tree phase times for workload *w*.

        With a :class:`~repro.perf.timeline.MachineProfile`, also
        records the cycle kernel's warp schedule timeline (one segment
        per vertex, tagged ``vertex``/``cycles``), the launch ledger,
        and the divergence summary — the returned numbers are
        unchanged.
        """
        # --- Labeling: 1 init kernel + 2 kernels per level.
        labeling = self._flat_kernel(float(w.num_vertices))
        if profile is not None:
            profile.add_launch("labeling", "init",
                               self._flat_kernel(float(w.num_vertices)),
                               self.launch_seconds, items=w.num_vertices)
        for direction, levels in (
            ("bottom_up", w.level_items[1:]),
            ("top_down", w.level_items[:-1]),
        ):
            for items in levels:
                seconds = self._flat_kernel(3.0 * float(items))
                labeling += seconds
                if profile is not None:
                    profile.add_launch("labeling", direction, seconds,
                                       self.launch_seconds, items=int(items))

        # --- Cycle kernel: warp tasks scheduled over the warp pool.
        tasks, owners, counts = self._warp_tasks(w)
        if profile is None:
            span = makespan_dynamic(tasks, self.warp_pool)
        else:
            span, tl = makespan_dynamic(tasks, self.warp_pool, timeline=True)
            tl = tl.shifted(self.launch_seconds)
            tl.label = f"cycle kernel ({self.warp_pool} warps)"

            from repro.perf.timeline import TimelineSegment

            def tag(seg):
                meta = dict(seg.meta)
                if 0 <= seg.task < len(owners):
                    meta["vertex"] = int(owners[seg.task])
                    meta["cycles"] = int(counts[seg.task])
                return TimelineSegment(
                    seg.name, seg.worker, seg.start, seg.end, seg.task, meta
                )

            profile.add_timeline("cycle_processing", tl.relabel(tag))
            if len(counts):
                batches = np.ceil(counts / self.warp_size)
                profile.divergence = {
                    "divergence_factor": self.divergence_factor,
                    "max_warp_batches": float(batches.max()),
                    "mean_warp_batches": float(batches.mean()),
                    "hub_serialization": float(batches.max() / max(batches.mean(), 1.0)),
                }
        cycles = self.launch_seconds + span
        if profile is not None:
            profile.add_launch("cycle_processing", "cycle_kernel", cycles,
                               self.launch_seconds, items=len(tasks))

        # --- Tree generation: one kernel per BFS level.
        per_level = float(w.treegen_ops) / max(len(w.level_items), 1)
        treegen = sum(
            self._flat_kernel(per_level) for _ in range(len(w.level_items))
        )
        if profile is not None:
            for _ in range(len(w.level_items)):
                profile.add_launch("tree_generation", "bfs_level",
                                   self._flat_kernel(per_level),
                                   self.launch_seconds, items=int(per_level))

        # --- Harary bipartition: frontier kernels over the worklists
        # (§6.4's two extra worklists); charge one kernel per level of
        # the collapsed BFS plus the component sweeps.
        harary = self._flat_kernel(float(w.harary_ops), launches=6)
        if profile is not None:
            profile.add_launch("bipartition", "harary", harary,
                               6 * self.launch_seconds,
                               items=int(w.harary_ops), launches=6)

        return PhaseTimes(
            tree_generation=treegen,
            labeling=labeling,
            cycle_processing=cycles,
            bipartition=harary,
        )

    def profile(self, w: Workload) -> tuple[PhaseTimes, "MachineProfile"]:
        """``times(w)`` plus the populated machine profile."""
        from repro.perf.timeline import MachineProfile

        prof = MachineProfile("cuda")
        return self.times(w, profile=prof), prof


#: The paper's Titan V configuration.
CUDA_MACHINE = GpuMachine()

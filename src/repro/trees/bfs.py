"""Randomized breadth-first-search spanning trees.

The paper samples BFS trees because they maximize the number of
minimal-length fundamental cycles (§2.2).  Randomness comes from two
sources, matching the "1000 BFS trees" methodology:

* the root is drawn uniformly (unless pinned), and
* when several frontier vertices could adopt the same undiscovered
  vertex, the winning parent is drawn uniformly among the offers.

The expansion is level-synchronous and fully vectorized — the same
structure as the parallel BFS in the paper's codes — so sampling stays
fast on multi-hundred-thousand-edge graphs in pure Python.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.trees.tree import SpanningTree
from repro.util.arrays import gather_adjacency

__all__ = ["bfs_tree"]


def bfs_tree(
    graph: SignedGraph,
    root: int | None = None,
    seed: SeedLike = None,
) -> SpanningTree:
    """Sample a randomized BFS spanning tree of a connected graph.

    Raises :class:`DisconnectedGraphError` if some vertex is not
    reachable from the root.
    """
    n = graph.num_vertices
    rng = as_generator(seed)
    if root is None:
        root = int(rng.integers(0, n))

    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    discovered = np.zeros(n, dtype=bool)
    discovered[root] = True
    frontier = np.array([root], dtype=np.int64)
    reached = 1

    while len(frontier):
        half, sources = gather_adjacency(graph.indptr, frontier)
        if len(half) == 0:
            break
        targets = graph.adj_vertex[half]
        edges = graph.adj_edge[half]

        fresh = ~discovered[targets]
        targets, sources, edges = targets[fresh], sources[fresh], edges[fresh]
        if len(targets) == 0:
            break

        # Uniform random winner per target: sort offers by
        # (target, random key) and keep the first offer of each run.
        keys = rng.random(len(targets))
        order = np.lexsort((keys, targets))
        targets, sources, edges = targets[order], sources[order], edges[order]
        first = np.empty(len(targets), dtype=bool)
        first[0] = True
        first[1:] = targets[1:] != targets[:-1]

        new_v = targets[first]
        parent[new_v] = sources[first]
        parent_edge[new_v] = edges[first]
        discovered[new_v] = True
        reached += len(new_v)
        frontier = new_v

    if reached != n:
        raise DisconnectedGraphError(
            f"BFS from root {root} reached {reached} of {n} vertices; "
            "extract the largest connected component first"
        )
    return SpanningTree.from_parents(graph, root, parent, parent_edge)

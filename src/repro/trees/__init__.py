"""Spanning-tree substrate: samplers (BFS/DFS/Wilson), the
:class:`SpanningTree` container, exhaustive enumeration for tiny
graphs, and the depth statistics of Table 6.
"""

from repro.trees.tree import SpanningTree
from repro.trees.bfs import bfs_tree
from repro.trees.degree_aware import degree_aware_bfs_tree
from repro.trees.dfs import dfs_tree
from repro.trees.random_tree import wilson_tree
from repro.trees.sampler import TreeSampler, TREE_METHODS
from repro.trees.batched import TreeBatch, sample_bfs_batch, spawn_batch
from repro.trees.enumeration import (
    all_spanning_trees,
    count_spanning_trees,
    tree_from_edge_ids,
)
from repro.trees.properties import TreeDepthStats, depth_stats, level_widths

__all__ = [
    "SpanningTree",
    "bfs_tree",
    "degree_aware_bfs_tree",
    "dfs_tree",
    "wilson_tree",
    "TreeSampler",
    "TREE_METHODS",
    "TreeBatch",
    "sample_bfs_batch",
    "spawn_batch",
    "all_spanning_trees",
    "count_spanning_trees",
    "tree_from_edge_ids",
    "TreeDepthStats",
    "depth_stats",
    "level_widths",
]

"""Depth-first-search spanning trees.

DFS trees are the adversarial counterpart to the paper's BFS default:
they produce the *longest* fundamental cycles instead of the shortest,
which the tree-sampling ablation (DESIGN.md §5) uses to quantify how
much the BFS choice matters for graphB+ throughput.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.trees.tree import SpanningTree

__all__ = ["dfs_tree"]


def dfs_tree(
    graph: SignedGraph,
    root: int | None = None,
    seed: SeedLike = None,
) -> SpanningTree:
    """Sample a randomized iterative-DFS spanning tree.

    Neighbor visit order is shuffled per vertex, so different seeds
    give different trees.  Uses an explicit stack (no recursion limit
    issues on path-like graphs).
    """
    n = graph.num_vertices
    rng = as_generator(seed)
    if root is None:
        root = int(rng.integers(0, n))

    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    discovered = np.zeros(n, dtype=bool)
    discovered[root] = True
    reached = 1

    # Stack of (vertex, iterator over shuffled adjacency positions).
    stack: list[tuple[int, list[int]]] = [(root, _shuffled_row(graph, root, rng))]
    while stack:
        v, row = stack[-1]
        advanced = False
        while row:
            pos = row.pop()
            w = int(graph.adj_vertex[pos])
            if discovered[w]:
                continue
            discovered[w] = True
            parent[w] = v
            parent_edge[w] = int(graph.adj_edge[pos])
            reached += 1
            stack.append((w, _shuffled_row(graph, w, rng)))
            advanced = True
            break
        if not advanced:
            stack.pop()

    if reached != n:
        raise DisconnectedGraphError(
            f"DFS from root {root} reached {reached} of {n} vertices"
        )
    return SpanningTree.from_parents(graph, root, parent, parent_edge)


def _shuffled_row(
    graph: SignedGraph, v: int, rng: np.random.Generator
) -> list[int]:
    """Adjacency positions of *v* in random order (as a pop-able list)."""
    lo, hi = int(graph.indptr[v]), int(graph.indptr[v + 1])
    positions = np.arange(lo, hi)
    rng.shuffle(positions)
    return positions.tolist()

"""The :class:`SpanningTree` container shared by every tree algorithm.

A spanning tree is stored as a rooted parent forest over the host
graph's vertices plus derived level structure.  graphB+ (Alg. 3/4)
needs, per tree:

* ``parent``/``parent_edge`` — one word per vertex,
* ``level_of`` — the BFS depth used by the level-synchronous labeling,
* ``in_tree`` — a 1-bit flag per undirected edge (§3.2.2),

which is exactly the linear storage budget the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.errors import NotASpanningTreeError
from repro.graph.csr import SignedGraph

__all__ = ["SpanningTree"]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of a connected :class:`SignedGraph`.

    Construct via :meth:`from_parents` (which validates and derives the
    level structure) or one of the samplers in :mod:`repro.trees`.
    """

    root: int
    parent: np.ndarray        # (n,) parent vertex, -1 at the root
    parent_edge: np.ndarray   # (n,) undirected edge id to parent, -1 at root
    level_of: np.ndarray      # (n,) tree depth, 0 at the root
    in_tree: np.ndarray       # (m,) bool, True for the n-1 tree edges

    # ------------------------------------------------------------------
    @classmethod
    def from_parents(
        cls,
        graph: SignedGraph,
        root: int,
        parent: np.ndarray,
        parent_edge: np.ndarray,
    ) -> "SpanningTree":
        """Validate a parent forest and derive levels / tree-edge flags.

        Raises :class:`NotASpanningTreeError` when the structure does
        not describe a spanning tree of *graph* (unreached vertices,
        cycles, or parent edges absent from the graph).
        """
        n = graph.num_vertices
        parent = np.asarray(parent, dtype=np.int64)
        parent_edge = np.asarray(parent_edge, dtype=np.int64)
        if parent.shape != (n,) or parent_edge.shape != (n,):
            raise NotASpanningTreeError("parent arrays must have length n")
        if not 0 <= root < n:
            raise NotASpanningTreeError(f"root {root} out of range")
        if parent[root] != -1 or parent_edge[root] != -1:
            raise NotASpanningTreeError("root must have parent == -1")
        others = np.delete(np.arange(n), root)
        if len(others) and (
            parent[others].min() < 0 or parent[others].max() >= n
        ):
            raise NotASpanningTreeError("non-root vertex with invalid parent")

        # Check parent edges really join (v, parent[v]) in the graph.
        if len(others):
            pe = parent_edge[others]
            if pe.min() < 0 or pe.max() >= graph.num_edges:
                raise NotASpanningTreeError("parent edge id out of range")
            eu = graph.edge_u[pe]
            ev = graph.edge_v[pe]
            pv = parent[others]
            ok = ((eu == others) & (ev == pv)) | ((ev == others) & (eu == pv))
            if not np.all(ok):
                raise NotASpanningTreeError(
                    "a parent edge does not connect the vertex to its parent"
                )

        level_of = cls._levels(parent, root, n)
        in_tree = np.zeros(graph.num_edges, dtype=bool)
        if len(others):
            in_tree[parent_edge[others]] = True
        if int(in_tree.sum()) != n - 1:
            raise NotASpanningTreeError(
                "tree edges are not n-1 distinct graph edges"
            )
        return cls(
            root=int(root),
            parent=parent,
            parent_edge=parent_edge,
            level_of=level_of,
            in_tree=in_tree,
        )

    @staticmethod
    def _levels(parent: np.ndarray, root: int, n: int) -> np.ndarray:
        """Depth of each vertex via repeated parent-pointer relaxation.

        Runs in O(depth) vectorized sweeps; raises if any vertex never
        reaches the root (i.e., the parent structure has a cycle or a
        second root).
        """
        level = np.full(n, -1, dtype=np.int64)
        level[root] = 0
        pending = parent.copy()
        hops = np.zeros(n, dtype=np.int64)
        unresolved = np.nonzero(level < 0)[0]
        for _ in range(n + 1):
            if len(unresolved) == 0:
                return level
            anchor = pending[unresolved]
            done = level[anchor] >= 0
            idx = unresolved[done]
            level[idx] = level[pending[idx]] + hops[idx] + 1
            rest = unresolved[~done]
            # Pointer-jump the still-unresolved vertices one hop up.
            hops[rest] += 1
            pending[rest] = parent[pending[rest]]
            unresolved = rest
        raise NotASpanningTreeError("parent pointers contain a cycle")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.parent)

    @property
    def depth(self) -> int:
        """Maximum tree depth (root = 0)."""
        return int(self.level_of.max())

    @property
    def num_levels(self) -> int:
        return self.depth + 1

    @cached_property
    def levels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(order, level_ptr)``: vertices sorted by level, and the
        offset of each level — the iteration structure of Alg. 4."""
        order = np.argsort(self.level_of, kind="stable").astype(np.int64)
        counts = np.bincount(self.level_of, minlength=self.num_levels)
        level_ptr = np.zeros(self.num_levels + 1, dtype=np.int64)
        np.cumsum(counts, out=level_ptr[1:])
        return order, level_ptr

    @cached_property
    def children(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(child_ptr, child_list)``: CSR of children per vertex,
        children sorted by vertex id (deterministic)."""
        n = self.num_vertices
        mask = self.parent >= 0
        kids = np.nonzero(mask)[0]
        par = self.parent[kids]
        order = np.lexsort((kids, par))
        kids = kids[order]
        par = par[order]
        child_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(child_ptr, par + 1, 1)
        np.cumsum(child_ptr, out=child_ptr)
        return child_ptr, kids

    def children_of(self, v: int) -> np.ndarray:
        """Children of vertex *v* (view)."""
        ptr, lst = self.children
        return lst[ptr[v] : ptr[v + 1]]

    @cached_property
    def tree_degree(self) -> np.ndarray:
        """Tree degree of each vertex (children + parent edge)."""
        ptr, _ = self.children
        deg = np.diff(ptr).astype(np.int64)
        deg += (self.parent >= 0).astype(np.int64)
        return deg

    def tree_edge_ids(self) -> np.ndarray:
        """Undirected edge ids of the n−1 tree edges (sorted)."""
        return np.nonzero(self.in_tree)[0]

    def non_tree_edge_ids(self) -> np.ndarray:
        """Undirected edge ids of the fundamental-cycle edges (sorted)."""
        return np.nonzero(~self.in_tree)[0]

    def path_to_root(self, v: int) -> np.ndarray:
        """Vertices from *v* up to the root, inclusive."""
        out = [v]
        while self.parent[out[-1]] >= 0:
            out.append(int(self.parent[out[-1]]))
        return np.asarray(out, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanningTree(root={self.root}, n={self.num_vertices}, "
            f"depth={self.depth})"
        )

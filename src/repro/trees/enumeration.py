"""Exhaustive spanning-tree machinery for *small* graphs.

Two tools back the Fig. 1–3 reproduction and several oracle tests:

* :func:`count_spanning_trees` — Kirchhoff's matrix-tree theorem, exact
  for any graph (this is how the paper's "402,506,278,163 trees for the
  highland tribes graph" figure is obtained).
* :func:`all_spanning_trees` — explicit enumeration, feasible only for
  tiny graphs (the Fig. 1 example has 8; anything beyond a few thousand
  trees should use sampling instead).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterator, List, Tuple

import numpy as np

from repro.graph.csr import SignedGraph
from repro.trees.tree import SpanningTree

__all__ = [
    "count_spanning_trees",
    "all_spanning_trees",
    "tree_from_edge_ids",
]


def count_spanning_trees(graph: SignedGraph) -> int:
    """Exact spanning-tree count via the matrix-tree theorem.

    Uses exact rational Gaussian elimination on the reduced Laplacian,
    so the result is an exact integer even when it exceeds 2^53 (the
    highland-tribes count is ~4×10¹¹; float determinants would wobble).
    Cost is O(n³) with Fraction arithmetic — intended for n ≲ 100.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if n == 1:
        return 1
    lap = [[Fraction(0)] * (n - 1) for _ in range(n - 1)]
    deg = np.zeros(n, dtype=np.int64)
    for u, v, _s in graph.iter_edges():
        deg[u] += 1
        deg[v] += 1
        if u < n - 1 and v < n - 1:
            lap[u][v] -= 1
            lap[v][u] -= 1
    for i in range(n - 1):
        lap[i][i] = Fraction(int(deg[i]))

    # Fraction-exact LU determinant.
    det = Fraction(1)
    size = n - 1
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if lap[r][col] != 0), None
        )
        if pivot_row is None:
            return 0
        if pivot_row != col:
            lap[col], lap[pivot_row] = lap[pivot_row], lap[col]
            det = -det
        pivot = lap[col][col]
        det *= pivot
        for r in range(col + 1, size):
            factor = lap[r][col] / pivot
            if factor == 0:
                continue
            row_r = lap[r]
            row_c = lap[col]
            for c in range(col, size):
                row_r[c] -= factor * row_c[c]
    assert det.denominator == 1
    return int(det)


def all_spanning_trees(
    graph: SignedGraph, root: int = 0, limit: int = 1_000_000
) -> Iterator[SpanningTree]:
    """Enumerate every spanning tree of a tiny connected graph.

    Iterates over all ``(n-1)``-edge subsets and keeps the acyclic ones
    (checked with union-find), yielding each as a rooted
    :class:`SpanningTree`.  ``limit`` caps the number of subsets
    examined to protect against accidentally passing a large graph;
    exceeding it raises ``ValueError``.
    """
    n, m = graph.num_vertices, graph.num_edges
    if n == 0:
        return
    from math import comb

    if comb(m, n - 1) > limit:
        raise ValueError(
            f"C({m}, {n - 1}) subsets exceed limit={limit}; "
            "use TreeSampler for graphs this large"
        )
    for subset in combinations(range(m), n - 1):
        if _is_forest_spanning(graph, subset, n):
            yield tree_from_edge_ids(graph, subset, root=root)


def _is_forest_spanning(
    graph: SignedGraph, edge_ids: Tuple[int, ...], n: int
) -> bool:
    """True when the edge subset is acyclic (hence a spanning tree)."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in edge_ids:
        ru = find(int(graph.edge_u[e]))
        rv = find(int(graph.edge_v[e]))
        if ru == rv:
            return False
        parent[ru] = rv
    return True


def tree_from_edge_ids(
    graph: SignedGraph, edge_ids: Tuple[int, ...] | List[int] | np.ndarray, root: int = 0
) -> SpanningTree:
    """Root an (already acyclic, spanning) edge subset at *root*.

    Builds parent pointers with a BFS restricted to the subset edges.
    Raises :class:`~repro.errors.NotASpanningTreeError` via
    ``SpanningTree.from_parents`` if the subset is not a spanning tree.
    """
    n = graph.num_vertices
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for e in edge_ids:
        u, v = int(graph.edge_u[e]), int(graph.edge_v[e])
        adj[u].append((v, int(e)))
        adj[v].append((u, int(e)))

    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    seen = [False] * n
    seen[root] = True
    queue = [root]
    while queue:
        v = queue.pop()
        for w, e in adj[v]:
            if not seen[w]:
                seen[w] = True
                parent[w] = v
                parent_edge[w] = e
                queue.append(w)
    return SpanningTree.from_parents(graph, root, parent, parent_edge)

"""Degree-aware BFS spanning trees (extension motivated by §6.6).

The paper observes that fundamental cycles are short but pass through
very high-degree vertices (~150 average on-cycle degree), making
"determining which edge to follow" the cycle-processing bottleneck, and
notes the observation "may prove useful to further enhance the
performance of graphB+".

This sampler acts on that hint: it is a level-synchronous BFS like
:func:`repro.trees.bfs.bfs_tree`, but when several frontier vertices
offer to adopt the same undiscovered vertex, the **lowest-degree**
offerer wins (ties broken randomly) instead of a uniformly random one.
Hubs therefore adopt fewer children, so cycle walks descend through
smaller child lists.  Tree depth is unchanged (still a BFS — levels are
graph distances), so cycle lengths stay minimal; only the scan cost per
visited vertex drops.  The effect is quantified in
``benchmarks/test_ablation_degree_aware.py``.

``prefer="high"`` inverts the choice (the adversarial configuration,
useful for bounding the effect).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError, EngineError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.trees.tree import SpanningTree
from repro.util.arrays import gather_adjacency

__all__ = ["degree_aware_bfs_tree"]


def degree_aware_bfs_tree(
    graph: SignedGraph,
    root: int | None = None,
    seed: SeedLike = None,
    prefer: str = "low",
) -> SpanningTree:
    """BFS tree whose parent choices prefer low- (or high-)degree offers."""
    if prefer not in ("low", "high"):
        raise EngineError(f"prefer must be 'low' or 'high', got {prefer!r}")
    n = graph.num_vertices
    rng = as_generator(seed)
    if root is None:
        root = int(rng.integers(0, n))

    degree = np.diff(graph.indptr)
    rank = degree if prefer == "low" else -degree

    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    discovered = np.zeros(n, dtype=bool)
    discovered[root] = True
    frontier = np.array([root], dtype=np.int64)
    reached = 1

    while len(frontier):
        half, sources = gather_adjacency(graph.indptr, frontier)
        if len(half) == 0:
            break
        targets = graph.adj_vertex[half]
        edges = graph.adj_edge[half]

        fresh = ~discovered[targets]
        targets, sources, edges = targets[fresh], sources[fresh], edges[fresh]
        if len(targets) == 0:
            break

        # Winner per target: minimal (rank, random key) offer.
        keys = rng.random(len(targets))
        order = np.lexsort((keys, rank[sources], targets))
        targets, sources, edges = targets[order], sources[order], edges[order]
        first = np.empty(len(targets), dtype=bool)
        first[0] = True
        first[1:] = targets[1:] != targets[:-1]

        new_v = targets[first]
        parent[new_v] = sources[first]
        parent_edge[new_v] = edges[first]
        discovered[new_v] = True
        reached += len(new_v)
        frontier = new_v

    if reached != n:
        raise DisconnectedGraphError(
            f"BFS from root {root} reached {reached} of {n} vertices"
        )
    return SpanningTree.from_parents(graph, root, parent, parent_edge)

"""Batched spanning-tree sampling: grow B trees per kernel invocation.

The paper's key performance observation (§3.3) is that cycle processing
is embarrassingly parallel *across trees* — Alg. 2 samples 1000
independent BFS trees.  In pure NumPy the analog of launching one GPU
grid per tree is stacking B trees into ``(B, n)`` arrays and advancing
all of their frontiers inside the same vectorized operations, so the
per-level interpreter overhead is paid once per *batch* instead of once
per tree.

:func:`sample_bfs_batch` is bit-identical, tree index by tree index, to
:meth:`repro.trees.sampler.TreeSampler.tree` with the same seed: tree
``i`` draws from the ``i``-th spawned child stream, its root draw and
per-level tie-break draws happen in exactly the sequential order, and
the batched frontier keeps each tree's offers in the sequential
frontier order.  The equivalence is what lets the batched cloud engine
(:func:`repro.cloud.cloud.sample_cloud` with ``batch_size > 1``)
reproduce the sequential cloud attribute-for-attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DisconnectedGraphError, EngineError
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters
from repro.trees.tree import SpanningTree
from repro.util.arrays import concat_ranges

__all__ = ["TreeBatch", "sample_bfs_batch", "spawn_batch"]


@dataclass(frozen=True)
class TreeBatch:
    """B rooted spanning trees of one graph in stacked arrays.

    Row ``b`` of every array describes one spanning tree exactly as the
    corresponding fields of :class:`~repro.trees.tree.SpanningTree`
    would: ``parent[b, v]`` is the BFS parent of ``v`` (−1 at the
    root), ``parent_edge[b, v]`` the undirected edge id to that parent,
    ``level_of[b, v]`` the BFS depth.
    """

    roots: np.ndarray        # (B,) root vertex per tree
    parent: np.ndarray       # (B, n)
    parent_edge: np.ndarray  # (B, n)
    level_of: np.ndarray     # (B, n)

    @property
    def num_trees(self) -> int:
        return len(self.roots)

    @property
    def num_vertices(self) -> int:
        return self.parent.shape[1]

    @property
    def num_levels(self) -> int:
        """Deepest level across the batch, plus one."""
        return int(self.level_of.max()) + 1 if self.level_of.size else 0

    @cached_property
    def flat_levels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(order, level_ptr)`` over *flattened* tree-vertex ids.

        ``order`` lists all ``B * n`` flattened ids (``b * n + v``)
        sorted by BFS level; ``level_ptr[l] : level_ptr[l + 1]`` slices
        the ids at level ``l`` across every tree in the batch — the
        iteration structure of the batched top-down parity pass.
        """
        flat = self.level_of.ravel()
        order = np.argsort(flat, kind="stable").astype(np.int64)
        counts = np.bincount(flat, minlength=self.num_levels)
        level_ptr = np.zeros(self.num_levels + 1, dtype=np.int64)
        np.cumsum(counts, out=level_ptr[1:])
        return order, level_ptr

    @cached_property
    def flat_parent(self) -> np.ndarray:
        """Flattened parent pointers: ``b * n + parent[b, v]`` (−1 kept
        at the roots), indexable against any ``(B * n,)`` array."""
        offsets = np.arange(self.num_trees, dtype=np.int64)[:, None]
        flat = self.parent + offsets * self.num_vertices
        flat[self.parent < 0] = -1
        return flat.ravel()

    def to_tree(self, graph: SignedGraph, b: int) -> SpanningTree:
        """Materialize tree *b* as a validated :class:`SpanningTree`."""
        return SpanningTree.from_parents(
            graph, int(self.roots[b]), self.parent[b], self.parent_edge[b]
        )

    @classmethod
    def from_trees(cls, trees: Sequence[SpanningTree]) -> "TreeBatch":
        """Stack individually sampled trees (the non-BFS fallback)."""
        if not trees:
            raise EngineError("cannot build an empty TreeBatch")
        return cls(
            roots=np.asarray([t.root for t in trees], dtype=np.int64),
            parent=np.stack([t.parent for t in trees]),
            parent_edge=np.stack([t.parent_edge for t in trees]),
            level_of=np.stack([t.level_of for t in trees]),
        )


def spawn_batch(seed: int, indices: Sequence[int]) -> list[np.random.Generator]:
    """Child generators for the given tree indices, identical to
    ``[repro.rng.spawn(seed, i) for i in indices]``.

    ``SeedSequence(seed).spawn(k)[i]`` is by construction
    ``SeedSequence(seed, spawn_key=(i,))``, so only the requested
    children are built — a resumed block ``[9000, 9032)`` costs 32
    SeedSequence constructions, not 9032 spawns.
    """
    indices = list(indices)
    if not indices:
        return []
    if min(indices) < 0:
        raise EngineError("tree indices must be non-negative")
    return [
        np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        for i in indices
    ]


def sample_bfs_batch(
    graph: SignedGraph,
    seed: int,
    indices: Sequence[int],
    root: int | None = None,
    counters: Counters | None = None,
) -> TreeBatch:
    """Sample the randomized BFS trees for the given indices in one
    batched level-synchronous expansion.

    Tree-by-tree the output is bit-identical to
    ``bfs_tree(graph, root=root, seed=spawn(seed, i))`` — same root
    draws, same parent tie-breaks — because every tree keeps its own
    child RNG stream and its offers stay in the sequential frontier
    order inside the stacked arrays.
    """
    n = graph.num_vertices
    rngs = spawn_batch(seed, indices)
    num_trees = len(rngs)
    if num_trees == 0:
        raise EngineError("need at least one tree index")

    if root is None:
        roots = np.asarray(
            [int(rng.integers(0, n)) for rng in rngs], dtype=np.int64
        )
    else:
        roots = np.full(num_trees, int(root), dtype=np.int64)

    size = num_trees * n
    parent = np.full(size, -1, dtype=np.int64)
    parent_edge = np.full(size, -1, dtype=np.int64)
    level = np.full(size, -1, dtype=np.int64)
    discovered = np.zeros(size, dtype=bool)

    # Flattened tree-vertex ids g = b * n + v.  The frontier stays
    # sorted ascending, i.e. grouped by tree with each tree's vertices
    # in the same (ascending) order the sequential BFS produces.
    offsets = np.arange(num_trees, dtype=np.int64) * n
    frontier = offsets + roots
    discovered[frontier] = True
    level[frontier] = 0
    reached = np.ones(num_trees, dtype=np.int64)
    depth = 0

    degs = graph.degrees
    # Winner-selection scratch, sized B·n but allocated once per call
    # and only ever written at offered slots before being read — no
    # per-level (B, n) scratch is materialized.
    best_key = np.empty(size, dtype=np.float64)
    best_offer = np.empty(size, dtype=np.int64)

    while len(frontier):
        depth += 1
        tree_of, verts = np.divmod(frontier, n)

        starts = graph.indptr[verts]
        counts = degs[verts]
        pos = np.repeat(starts, counts) + concat_ranges(counts)
        if len(pos) == 0:
            break
        src_tree = np.repeat(tree_of, counts)

        g_target = src_tree * n + graph.adj_vertex[pos]
        fresh = ~discovered[g_target]
        g_target = g_target[fresh]
        src_tree = src_tree[fresh]
        pos = pos[fresh]
        if len(g_target) == 0:
            break

        # Per-tree tie-break keys, drawn from each tree's own stream in
        # one call per (tree, level) — exactly the sequential draw.
        offers_per_tree = np.bincount(src_tree, minlength=num_trees)
        keys = np.empty(len(g_target), dtype=np.float64)
        cursor = 0
        for t in np.nonzero(offers_per_tree)[0]:
            k = int(offers_per_tree[t])
            keys[cursor : cursor + k] = rngs[t].random(k)
            cursor += k

        # Uniform winner per (tree, target) without sorting the offers:
        # repeated last-write-wins scatters converge on the minimum key
        # per target (each round keeps only the offers still strictly
        # below the stored champion, halving the field in expectation),
        # then a reversed scatter of the minimum-key offers breaks ties
        # toward the earliest offer — the same winner the sequential
        # lexsort picks.
        best_key[g_target] = keys
        alive = np.nonzero(keys < best_key[g_target])[0]
        while len(alive):
            best_key[g_target[alive]] = keys[alive]
            alive = alive[keys[alive] < best_key[g_target[alive]]]
        cand = np.nonzero(keys == best_key[g_target])[0]
        rev = cand[::-1]
        best_offer[g_target[rev]] = rev
        win = cand[best_offer[g_target[cand]] == cand]
        # Keep the new frontier ascending (the sequential offer order of
        # the next level); this sorts only the winners, far fewer than
        # the offers the old full argsort covered.
        win = win[np.argsort(g_target[win], kind="stable")]

        new_g = g_target[win]
        pos_w = pos[win]
        # Recover the winning offers' source vertices from their CSR
        # positions (cheap: only |new frontier| searchsorted lookups).
        parent[new_g] = np.searchsorted(graph.indptr, pos_w, side="right") - 1
        parent_edge[new_g] = graph.adj_edge[pos_w]
        discovered[new_g] = True
        level[new_g] = depth
        reached += np.bincount(src_tree[win], minlength=num_trees)
        frontier = new_g
        if counters is not None:
            counters.parallel_region("batch.bfs_round", len(new_g))

    if np.any(reached != n):
        b = int(np.nonzero(reached != n)[0][0])
        raise DisconnectedGraphError(
            f"BFS from root {int(roots[b])} reached {int(reached[b])} of "
            f"{n} vertices; extract the largest connected component first"
        )
    return TreeBatch(
        roots=roots,
        parent=parent.reshape(num_trees, n),
        parent_edge=parent_edge.reshape(num_trees, n),
        level_of=level.reshape(num_trees, n),
    )

"""Uniform random spanning trees via Wilson's algorithm.

The original graphB pipeline fell back to *random* spanning trees when
BFS trees exhausted memory (§2.5), and the paper's future work asks how
the choice of spanning tree affects results.  Wilson's loop-erased
random walk samples exactly from the uniform distribution over all
spanning trees, giving the unbiased comparator for the tree-sampling
ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graph.csr import SignedGraph
from repro.rng import SeedLike, as_generator
from repro.trees.tree import SpanningTree

__all__ = ["wilson_tree"]


def wilson_tree(
    graph: SignedGraph,
    root: int | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> SpanningTree:
    """Sample a uniformly random spanning tree (Wilson 1996).

    Each not-yet-attached vertex performs a random walk until it hits
    the growing tree; the loop-erased walk is then grafted on.  Expected
    running time is the mean commute time of the graph — fine for the
    small/medium graphs the ablations use, but slower than
    :func:`~repro.trees.bfs.bfs_tree` on large inputs.

    ``max_steps`` bounds the total number of walk steps (default
    ``50 * n * sqrt(n) + 10_000``) and raises
    :class:`DisconnectedGraphError` when exceeded, which in practice
    means the graph is disconnected (the walk can never hit the tree).
    """
    n = graph.num_vertices
    rng = as_generator(seed)
    if root is None:
        root = int(rng.integers(0, n))
    if max_steps is None:
        max_steps = int(50 * n * max(np.sqrt(n), 1.0)) + 10_000

    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True

    # next_hop[v] remembers the most recent step of the current walk;
    # loop erasure falls out of overwriting it on revisits.
    next_hop = np.full(n, -1, dtype=np.int64)
    next_edge = np.full(n, -1, dtype=np.int64)
    steps = 0

    for start in range(n):
        if in_tree[start]:
            continue
        v = start
        while not in_tree[v]:
            lo, hi = int(graph.indptr[v]), int(graph.indptr[v + 1])
            if hi == lo:
                raise DisconnectedGraphError(
                    f"vertex {v} has no neighbors; graph is disconnected"
                )
            pos = int(rng.integers(lo, hi))
            next_hop[v] = int(graph.adj_vertex[pos])
            next_edge[v] = int(graph.adj_edge[pos])
            v = next_hop[v]
            steps += 1
            if steps > max_steps:
                raise DisconnectedGraphError(
                    "random walk failed to reach the tree within "
                    f"{max_steps} steps; the graph is likely disconnected"
                )
        # Graft the loop-erased path from `start` onto the tree.
        v = start
        while not in_tree[v]:
            in_tree[v] = True
            parent[v] = next_hop[v]
            parent_edge[v] = next_edge[v]
            v = int(next_hop[v])

    return SpanningTree.from_parents(graph, root, parent, parent_edge)

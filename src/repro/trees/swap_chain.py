"""Incremental spanning-tree sampling by edge swaps (the swap chain).

Sampling a fresh BFS tree per state makes tree generation ~85–90% of a
batched campaign (BENCH_cloud.json); this module inverts that cost by
deriving tree *k+1* from tree *k*: cut a uniformly chosen tree edge,
reconnect the severed subtree through a uniformly chosen non-tree edge
crossing the cut.  :class:`~repro.core.incremental.TreeDeltaState`
keeps the labeling and ``sign_to_root`` exact under each swap in O(n)
vectorized words, so a state costs a few array passes instead of a
full sample + label + parity pipeline — and the balanced state falls
out of ``s2r`` directly, with no parity kernel at all.

Determinism contract (what the pool/supervisor block protocol relies
on): the chain is **segmented**.  State ``k`` belongs to the segment
starting at ``k0 = (k // segment_length) * segment_length``; the
segment opens with a fresh BFS tree drawn from ``spawn(seed, k0)``,
and each later state ``j`` applies ``swaps_per_state`` swaps drawn
from ``spawn(seed, j)``.  Tree ``k`` is therefore a pure function of
``(seed, k, swaps_per_state, segment_length, root)`` — the same
whether the campaign ran in one block, was split across pool workers,
or resumed from a checkpoint.  A block's chain segment start is always
derivable as ``start - start % segment_length``; entering a block
mid-segment costs at most ``segment_length - 1`` replayed states.

Statistically the chain differs from independent BFS trees: successive
states are correlated (one swap changes one fundamental cycle's
attachment), so swap clouds converge to the same consensus attributes
*in distribution*, not bit-for-bit — see EXPERIMENTS.md.  Each
segment restart re-anchors the chain on an independent BFS tree,
bounding the correlation length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.perf.tracing import span
from repro.rng import freeze_seed, spawn
from repro.trees.bfs import bfs_tree
from repro.trees.tree import SpanningTree

__all__ = ["SwapChainSampler", "swap_method_stub"]


def swap_method_stub(graph, root=None, seed=None):  # pragma: no cover
    """Registry placeholder: swap trees are chain-derived, not
    independent draws, so the generic per-index dispatch cannot build
    them.  :class:`~repro.trees.sampler.TreeSampler` routes
    ``method="swap"`` through :class:`SwapChainSampler` instead."""
    raise EngineError(
        'the "swap" method derives each tree from the previous one; '
        'sample through TreeSampler(graph, method="swap", ...) or '
        "SwapChainSampler directly"
    )


@dataclass
class SwapChainSampler:
    """Deterministic indexed sampler over the segmented swap chain.

    Parameters
    ----------
    graph:
        Connected signed graph to sample from.
    seed:
        Chain seed (frozen at construction); segment bases use
        ``spawn(seed, k0)``, state advances ``spawn(seed, k)``.
    root:
        Optional pinned BFS root for the segment-base trees.
    swaps_per_state:
        Cut/link swaps applied per chain step (more swaps = less
        correlation between successive states, more work per state).
    segment_length:
        States per segment; each segment restarts from an independent
        BFS tree, which bounds both the correlation length and the
        replay cost of entering a block mid-segment.
    """

    graph: SignedGraph
    seed: int | None = None
    root: int | None = None
    swaps_per_state: int = 1
    segment_length: int = 256

    _state: object = field(default=None, repr=False, compare=False)
    _index: int = field(default=-1, repr=False, compare=False)
    _segment: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.swaps_per_state < 1:
            raise EngineError("swaps_per_state must be positive")
        if self.segment_length < 1:
            raise EngineError("segment_length must be positive")
        self.seed = freeze_seed(self.seed)

    # ------------------------------------------------------------------
    def segment_base(self, index: int) -> int:
        """The chain segment start covering *index* (the value the pool
        block protocol records for deterministic resume)."""
        return (index // self.segment_length) * self.segment_length

    def state_at(self, index: int):
        """The :class:`~repro.core.incremental.TreeDeltaState` of chain
        state *index*, advancing (or re-basing) the internal state as
        needed.  The returned object is live — it mutates on the next
        call — so snapshot anything that must persist."""
        if index < 0:
            raise EngineError("chain index must be non-negative")
        from repro.core.incremental import TreeDeltaState

        base = self.segment_base(index)
        if self._state is None or self._segment != base or self._index > index:
            tree = bfs_tree(self.graph, root=self.root,
                            seed=spawn(self.seed, base))
            self._state = TreeDeltaState(self.graph, tree)
            self._index = base
            self._segment = base
        while self._index < index:
            k = self._index + 1
            with span("tree_swap"):
                rng = spawn(self.seed, k)
                for _ in range(self.swaps_per_state):
                    self._state.random_swap(rng)
            self._index = k
        return self._state

    def tree(self, index: int) -> SpanningTree:
        """Materialize chain state *index* as a validated
        :class:`SpanningTree` (pure function of ``(seed, index)`` and
        the chain parameters)."""
        return self.state_at(index).spanning_tree()

    def states(
        self, indices, start: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Balanced states for the given chain indices (or ``start ..
        start + indices - 1`` when an int).

        Returns ``(signs, s2r)`` — a ``(B, m)`` stack of balanced sign
        arrays and the matching ``(B, n)`` sign-to-root stack — the
        same shape :func:`repro.core.parity_batch.balance_batch`
        produces, but with no parity kernel: both are read straight
        off the delta state.
        """
        if isinstance(indices, int):
            indices = range(start, start + indices)
        indices = list(indices)
        if not indices:
            raise EngineError("need at least one chain index")
        signs = np.empty((len(indices), self.graph.num_edges), dtype=np.int8)
        s2r = np.empty((len(indices), self.graph.num_vertices), dtype=np.int8)
        for b, k in enumerate(indices):
            st = self.state_at(int(k))
            signs[b] = st.balanced_signs()
            s2r[b] = st.s2r
        return signs, s2r

"""Tree sampling (the tree-generation half of Alg. 2).

A :class:`TreeSampler` owns a sampling *method* (BFS, DFS, Wilson) and
a seed, and hands out reproducible independent trees by index: the
``k``-th tree is the same whether sampled alone, in a batch, or on a
different simulated rank — the property the distributed driver
(:mod:`repro.parallel.distributed`) needs for its results to be
bit-identical to the serial driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.perf.registry import get_registry
from repro.rng import SeedLike, freeze_seed, spawn
from repro.trees.bfs import bfs_tree
from repro.trees.degree_aware import degree_aware_bfs_tree
from repro.trees.dfs import dfs_tree
from repro.trees.random_tree import wilson_tree
from repro.trees.swap_chain import SwapChainSampler, swap_method_stub
from repro.trees.tree import SpanningTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trees.batched import TreeBatch

__all__ = ["TreeSampler", "TREE_METHODS"]

TREE_METHODS: dict[str, Callable[..., SpanningTree]] = {
    "bfs": bfs_tree,
    "bfs-low-degree": degree_aware_bfs_tree,
    "dfs": dfs_tree,
    "wilson": wilson_tree,
    # Chain-derived, not an independent draw: TreeSampler routes it
    # through SwapChainSampler; calling the entry directly raises.
    "swap": swap_method_stub,
}


@dataclass(frozen=True)
class TreeSampler:
    """Reproducible indexed sampler of spanning trees.

    Parameters
    ----------
    graph:
        Connected signed graph to sample from.
    method:
        ``"bfs"`` (paper default), ``"dfs"``, or ``"wilson"``.
    seed:
        Root seed; tree *i* uses the ``i``-th spawned child stream.
    root:
        Optional pinned root vertex (default: random per tree).
    swaps_per_state / segment_length:
        Swap-chain knobs, meaningful only for ``method="swap"`` (see
        :mod:`repro.trees.swap_chain`): swaps applied per chain step,
        and how many states share one independently sampled base tree.
    """

    graph: SignedGraph
    method: str = "bfs"
    seed: SeedLike = None
    root: int | None = None
    swaps_per_state: int = 1
    segment_length: int = 256

    def __post_init__(self) -> None:
        if self.method not in TREE_METHODS:
            raise EngineError(
                f"unknown tree method {self.method!r}; known: {sorted(TREE_METHODS)}"
            )
        if self.swaps_per_state < 1:
            raise EngineError("swaps_per_state must be positive")
        if self.segment_length < 1:
            raise EngineError("segment_length must be positive")
        # Freeze the seed so tree(i) is stable regardless of call order,
        # even when constructed with None or a live generator.
        object.__setattr__(self, "seed", freeze_seed(self.seed))

    def swap_chain(self) -> SwapChainSampler:
        """The sampler's swap chain (``method="swap"`` only), created
        lazily and cached across calls so sequential indices advance
        incrementally instead of replaying the segment each time."""
        if self.method != "swap":
            raise EngineError(
                f'method {self.method!r} has no swap chain; use method="swap"'
            )
        chain = getattr(self, "_chain", None)
        if chain is None:
            chain = SwapChainSampler(
                self.graph,
                seed=self.seed,
                root=self.root,
                swaps_per_state=self.swaps_per_state,
                segment_length=self.segment_length,
            )
            object.__setattr__(self, "_chain", chain)
        return chain

    def swap_states(self, indices, start: int = 0):
        """Balanced states ``(signs, s2r)`` straight off the swap chain
        (``method="swap"`` only) — the delta path that replaces
        ``batch()`` + the parity kernel."""
        get_registry().count(
            "trees.sampled_total",
            indices if isinstance(indices, int) else len(list(indices)),
        )
        return self.swap_chain().states(indices, start=start)

    def tree(self, index: int) -> SpanningTree:
        """The *index*-th tree of this sampler's stream."""
        get_registry().count("trees.sampled_total", 1)
        if self.method == "swap":
            return self.swap_chain().tree(index)
        rng = spawn(self.seed, index)
        return TREE_METHODS[self.method](self.graph, root=self.root, seed=rng)

    def trees(self, count: int, start: int = 0) -> Iterator[SpanningTree]:
        """Yield trees ``start .. start + count - 1``."""
        for i in range(start, start + count):
            yield self.tree(i)

    def batch(
        self,
        indices: Sequence[int] | int,
        start: int = 0,
        counters=None,
    ) -> "TreeBatch":
        """The trees at *indices* (or ``start .. start + indices - 1``
        when an int) as a stacked :class:`~repro.trees.batched.TreeBatch`.

        Tree ``i`` of the batch is bit-identical to ``self.tree(i)``.
        The BFS method runs the batched level-synchronous sampler (one
        set of vectorized kernels for the whole batch); other methods
        fall back to stacking individually sampled trees.
        """
        from repro.trees.batched import TreeBatch, sample_bfs_batch

        if isinstance(indices, int):
            indices = range(start, start + indices)
        if self.method == "bfs":
            get_registry().count("trees.sampled_total", len(indices))
            return sample_bfs_batch(
                self.graph, self.seed, indices, root=self.root,
                counters=counters,
            )
        # The fallback stacks individually sampled trees; tree() already
        # counts each, so no batch-level count here.
        return TreeBatch.from_trees([self.tree(i) for i in indices])

"""Spanning-tree property measurements (Table 6 and §6.7).

The paper reports min/max/average BFS-tree depth over 1000 trees per
input and uses the observed shallowness (< 21 levels everywhere) to
justify the level-by-level parallelization.  These helpers compute the
same statistics for any sampler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trees.sampler import TreeSampler
from repro.trees.tree import SpanningTree

__all__ = ["TreeDepthStats", "depth_stats", "level_widths"]


@dataclass(frozen=True)
class TreeDepthStats:
    """Depth statistics over a set of sampled trees (one Table 6 row)."""

    num_trees: int
    min_depth: int
    max_depth: int
    avg_depth: float

    def row(self, name: str) -> str:
        """Render as a Table 6 row: name, min, max, avg."""
        return f"{name:<24s} {self.min_depth:>9d} {self.max_depth:>9d} {self.avg_depth:>9.1f}"


def depth_stats(sampler: TreeSampler, num_trees: int) -> TreeDepthStats:
    """Min/max/mean depth over ``num_trees`` trees from *sampler*."""
    if num_trees < 1:
        raise ValueError("num_trees must be positive")
    depths = np.fromiter(
        (sampler.tree(i).depth for i in range(num_trees)),
        dtype=np.int64,
        count=num_trees,
    )
    return TreeDepthStats(
        num_trees=num_trees,
        min_depth=int(depths.min()),
        max_depth=int(depths.max()),
        avg_depth=float(depths.mean()),
    )


def level_widths(tree: SpanningTree) -> np.ndarray:
    """Number of vertices at each tree level (index = depth).

    Wide levels are what make the level-synchronous labeling pass
    (Alg. 4) efficient; the Fig. 10 scaling model consumes these widths
    to account for per-level parallel work.
    """
    return np.bincount(tree.level_of, minlength=tree.num_levels)

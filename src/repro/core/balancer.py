"""The graphB+ front end (Alg. 3): label, traverse, balance.

:func:`balance` wires together the three steps for one spanning tree
and returns a :class:`BalanceResult`.  Three interchangeable cycle
kernels are exposed — they produce *identical* balanced states and
differ only in traversal strategy and therefore cost profile:

========== ===========================================================
``walk``   Faithful serial range walk of Alg. 3 (§3), using the
           pre-order labels and the partitioned adjacency.  The
           reference; also the only kernel whose scan counts reflect
           the §3.2.2 adjacency optimization directly.
``lockstep`` Lane-per-cycle data-parallel walk (the GPU-analog kernel);
           fast in NumPy, reports exact cycle lengths/degrees.
``parity`` O(m) sign-to-root closed form; fastest, no per-cycle stats.
========== ===========================================================

Labeling may run ``serial`` (explicit pre/post-order) or ``parallel``
(Alg. 4 level passes); both yield bit-identical labels.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.adjacency import partition_adjacency
from repro.core.cycles import process_cycles_serial
from repro.core.cycles_vectorized import balance_by_parity, process_cycles_lockstep
from repro.core.labeling import label_tree
from repro.core.labeling_parallel import label_tree_parallel
from repro.core.state import BalanceResult
from repro.errors import EngineError
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters, PhaseTimer
from repro.perf.tracing import span
from repro.rng import SeedLike
from repro.trees.bfs import bfs_tree
from repro.trees.tree import SpanningTree

__all__ = ["balance", "balance_forest", "CycleKernel", "LabelMode"]

CycleKernel = Literal["walk", "lockstep", "parity"]
LabelMode = Literal["serial", "parallel", "none"]


def balance(
    graph: SignedGraph,
    tree: SpanningTree | None = None,
    *,
    kernel: CycleKernel = "lockstep",
    labeling: LabelMode = "parallel",
    partition: bool = True,
    collect_stats: bool = False,
    seed: SeedLike = None,
    counters: Counters | None = None,
    timers: PhaseTimer | None = None,
) -> BalanceResult:
    """Compute the nearest balanced state Σ_T for one spanning tree.

    Parameters
    ----------
    graph:
        Connected signed graph Σ.
    tree:
        Spanning tree T; a randomized BFS tree is sampled (using
        *seed*) when omitted.
    kernel:
        Cycle-processing kernel (see module docstring).
    labeling:
        Label implementation.  ``"none"`` skips labeling entirely —
        only valid with the ``lockstep``/``parity`` kernels, which walk
        by depth instead of by range (the labels exist so the *walk*
        kernel can navigate; the paper's GPU code needs them, our
        lockstep analog does not).
    partition:
        Apply the §3.2.2 adjacency partitioning before walking
        (``walk`` kernel only; disable for the ablation).
    collect_stats:
        Record cycle lengths and on-cycle degrees (Table 5).
        Unsupported by the ``parity`` kernel.
    """
    counters = counters if counters is not None else Counters()
    timers = timers if timers is not None else PhaseTimer()

    if tree is None:
        with timers.phase("tree_generation"), span("tree_sample"):
            tree = bfs_tree(graph, seed=seed)

    if kernel == "walk" and labeling == "none":
        raise EngineError("the walk kernel requires labels; use serial/parallel")
    if kernel == "parity" and collect_stats:
        raise EngineError("the parity kernel cannot collect per-cycle stats")

    lab = None
    if labeling != "none":
        with timers.phase("labeling"), span("labeling"):
            if labeling == "serial":
                lab = label_tree(tree)
            elif labeling == "parallel":
                lab = label_tree_parallel(tree, counters=counters)
            else:
                raise EngineError(f"unknown labeling mode {labeling!r}")

    stats = None
    if kernel == "walk":
        padj = None
        if partition:
            with timers.phase("adjacency_partition"):
                padj = partition_adjacency(graph, tree)
        with timers.phase("cycle_processing"), span("walk_kernel"):
            signs, flipped, stats = process_cycles_serial(
                graph,
                tree,
                lab,
                padj=padj,
                counters=counters,
                collect_stats=collect_stats,
            )
    elif kernel == "lockstep":
        with timers.phase("cycle_processing"), span("lockstep_kernel"):
            signs, flipped, stats = process_cycles_lockstep(
                graph, tree, counters=counters, collect_stats=collect_stats
            )
    elif kernel == "parity":
        with timers.phase("cycle_processing"), span("parity_kernel"):
            signs, flipped = balance_by_parity(graph, tree, counters=counters)
    else:
        raise EngineError(f"unknown cycle kernel {kernel!r}")

    return BalanceResult(
        graph=graph,
        tree=tree,
        signs=signs,
        flipped=flipped,
        stats=stats,
        counters=counters,
        timers=timers,
    )


def balance_forest(
    graph: SignedGraph,
    *,
    kernel: CycleKernel = "lockstep",
    seed: SeedLike = None,
) -> np.ndarray:
    """Balance a possibly disconnected graph component by component.

    The paper (and :func:`balance`) operates on one connected component;
    this convenience samples a BFS tree per component and returns a
    single balanced sign array for the whole input.  Balance of each
    component implies balance of the whole graph (a cycle never crosses
    components).
    """
    from repro.graph.components import connected_components
    from repro.graph.subgraph import induced_subgraph
    from repro.rng import spawn

    label = connected_components(graph)
    num_comp = int(label.max() + 1) if graph.num_vertices else 0
    signs = graph.edge_sign.copy()
    for comp in range(num_comp):
        members = np.nonzero(label == comp)[0]
        if len(members) < 2:
            continue
        sub, _old, host_edges = induced_subgraph(
            graph, members, return_edge_ids=True
        )
        if sub.num_edges == 0:
            continue
        result = balance(sub, kernel=kernel, seed=spawn(seed, comp))
        # Scatter the component's balanced signs back to the host edges.
        signs[host_edges] = result.signs
    return signs

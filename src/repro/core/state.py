"""Result container for one graphB+ balancing run."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.cycles import CycleStats
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters, PhaseTimer
from repro.trees.tree import SpanningTree

__all__ = ["BalanceResult"]


@dataclass(frozen=True)
class BalanceResult:
    """The nearest balanced state produced by balancing one tree.

    Attributes
    ----------
    graph:
        The input graph Σ (unchanged).
    tree:
        The spanning tree T used.
    signs:
        Length-``m`` sign array of the balanced state Σ_T.
    flipped:
        Boolean edge mask of sign switches (all on non-tree edges).
    stats:
        Optional per-cycle measurements (Table 5), when requested.
    counters / timers:
        Work counters and phase times recorded during the run.
    """

    graph: SignedGraph
    tree: SpanningTree
    signs: np.ndarray
    flipped: np.ndarray
    stats: CycleStats | None
    counters: Counters
    timers: PhaseTimer

    @cached_property
    def balanced_graph(self) -> SignedGraph:
        """Σ_T as a :class:`SignedGraph` (structure shared with Σ)."""
        return self.graph.with_signs(self.signs)

    @property
    def num_flips(self) -> int:
        """Number of edge-sign switches — an upper bound on the
        frustration index contributed by this state."""
        return int(np.count_nonzero(self.flipped))

    @property
    def num_cycles(self) -> int:
        """Number of fundamental cycles processed (= non-tree edges)."""
        return self.graph.num_edges - (self.graph.num_vertices - 1)

    def state_key(self) -> bytes:
        """Hashable identity of the balanced state (for cloud dedup).

        Two runs that produce the same signs — possibly via different
        trees — compare equal, matching the paper's notion that
        different spanning trees can converge to the same nearest
        balanced state (Fig. 1).
        """
        return self.signs.tobytes()

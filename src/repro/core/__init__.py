"""graphB+ core: labeling, cycle traversal, balancing (Alg. 3 / Alg. 4),
the naive Alg. 1 baseline, and balance verification.
"""

from repro.core.labeling import Labeling, label_tree
from repro.core.labeling_parallel import label_tree_parallel
from repro.core.adjacency import PartitionedAdjacency, partition_adjacency
from repro.core.cycles import CycleStats, process_cycles_serial
from repro.core.cycles_vectorized import (
    balance_by_parity,
    process_cycles_lockstep,
    sign_to_root,
)
from repro.core.parity_batch import balance_batch, sign_to_root_batch
from repro.core.balancer import balance, balance_forest
from repro.core.baseline import balance_baseline
from repro.core.incremental import IncrementalBalancer
from repro.core.state import BalanceResult
from repro.core.verify import BalanceCertificate, check_balance, is_balanced, switch

__all__ = [
    "Labeling",
    "label_tree",
    "label_tree_parallel",
    "PartitionedAdjacency",
    "partition_adjacency",
    "CycleStats",
    "process_cycles_serial",
    "process_cycles_lockstep",
    "balance_by_parity",
    "sign_to_root",
    "balance_batch",
    "sign_to_root_batch",
    "balance",
    "balance_forest",
    "balance_baseline",
    "IncrementalBalancer",
    "BalanceResult",
    "BalanceCertificate",
    "check_balance",
    "is_balanced",
    "switch",
]

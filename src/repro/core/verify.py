"""Balance verification and switching functions.

Harary's theorem: a signed graph is balanced iff its vertices admit a
±1 *switching function* ``s`` with ``sign(u, v) = s[u] · s[v]`` for
every edge — equivalently, iff every cycle is positive, iff removing
the negative edges leaves components that a 2-coloring separates.

:func:`is_balanced` runs the 2-coloring in level-synchronous vectorized
sweeps and, on failure, returns a concrete violating edge so tests can
print *why* a state is unbalanced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotBalancedError
from repro.graph.csr import SignedGraph
from repro.util.arrays import gather_adjacency

__all__ = [
    "BalanceCertificate",
    "check_balance",
    "is_balanced",
    "switch",
    "violating_cycle",
]


@dataclass(frozen=True)
class BalanceCertificate:
    """Outcome of a balance check.

    ``switching`` holds the ±1 per-vertex function when balanced (one
    valid choice; per connected component it is unique up to global
    negation).  ``violating_edge`` names an edge whose sign contradicts
    the 2-coloring when unbalanced.
    """

    balanced: bool
    switching: np.ndarray | None
    violating_edge: int | None


def check_balance(graph: SignedGraph) -> BalanceCertificate:
    """Check balance and return a certificate (works per component)."""
    n = graph.num_vertices
    color = np.zeros(n, dtype=np.int8)  # 0 = unvisited, else ±1
    for seed in range(n):
        if color[seed] != 0:
            continue
        color[seed] = 1
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            pos, src = gather_adjacency(graph.indptr, frontier)
            if len(pos) == 0:
                break
            nbrs = graph.adj_vertex[pos]
            want = (
                color[src] * graph.edge_sign[graph.adj_edge[pos]]
            ).astype(np.int8)
            known = color[nbrs] != 0
            bad = known & (color[nbrs] != want)
            if np.any(bad):
                e = int(graph.adj_edge[pos[np.nonzero(bad)[0][0]]])
                return BalanceCertificate(False, None, e)
            fresh_mask = ~known
            if not np.any(fresh_mask):
                break
            fresh = nbrs[fresh_mask]
            fresh_want = want[fresh_mask]
            # A vertex may be offered twice in one sweep with
            # conflicting colors; detect by first-occurrence compare.
            order = np.argsort(fresh, kind="stable")
            fresh, fresh_want = fresh[order], fresh_want[order]
            first = np.empty(len(fresh), dtype=bool)
            first[0] = True
            first[1:] = fresh[1:] != fresh[:-1]
            # Conflict inside the sweep?
            grp = np.cumsum(first) - 1
            ref = fresh_want[first][grp]
            if np.any(ref != fresh_want):
                bad_at = int(np.nonzero(ref != fresh_want)[0][0])
                e = int(graph.adj_edge[pos[fresh_mask.nonzero()[0][order[bad_at]]]])
                return BalanceCertificate(False, None, e)
            uniq = fresh[first]
            color[uniq] = fresh_want[first]
            frontier = uniq
    return BalanceCertificate(True, color, None)


def is_balanced(graph: SignedGraph) -> bool:
    """Whether every cycle of *graph* is positive."""
    return check_balance(graph).balanced


def violating_cycle(graph: SignedGraph) -> list[int] | None:
    """A concrete negative cycle of an unbalanced graph (or ``None``).

    Returns the cycle as a vertex list ``[v0, v1, ..., vk]`` with
    ``v0 == vk``, whose edge-sign product is −1 — the witness that no
    switching can balance the graph.  Built from the violating edge of
    :func:`check_balance` plus the spanning-tree path between its
    endpoints (the fundamental cycle of that edge), so the cycle sign
    is certifiably negative.
    """
    cert = check_balance(graph)
    if cert.balanced:
        return None
    from repro.graph.components import connected_components
    from repro.trees.bfs import bfs_tree
    from repro.graph.subgraph import induced_subgraph

    e = cert.violating_edge
    u = int(graph.edge_u[e])
    v = int(graph.edge_v[e])

    # Work inside u's component so BFS succeeds on disconnected inputs.
    label = connected_components(graph)
    members = np.nonzero(label == label[u])[0]
    sub, old = induced_subgraph(graph, members)
    remap = {int(o): i for i, o in enumerate(old)}
    su, sv = remap[u], remap[v]

    tree = bfs_tree(sub, root=su, seed=0)
    # path_to_root(sv) = [sv, ..., su]; appending sv closes the
    # fundamental cycle of the edge (su, sv).
    path = [int(x) for x in tree.path_to_root(sv)]
    cycle_sub = path + [sv]
    # Verify the sign product is negative; if the BFS-path cycle happens
    # to be positive (possible when the violating edge's fundamental
    # cycle is positive but another was negative), fall back to scanning
    # all fundamental cycles of this tree.
    def cyc_sign(cyc: list[int]) -> int:
        sign = 1
        for a, b in zip(cyc, cyc[1:]):
            sign *= sub.sign_of(a, b)
        return sign

    if cyc_sign(cycle_sub) > 0:
        for nte in tree.non_tree_edge_ids():
            a = int(sub.edge_u[nte])
            b = int(sub.edge_v[nte])
            pa = [int(x) for x in tree.path_to_root(a)]
            pb = [int(x) for x in tree.path_to_root(b)]
            shared = set(pa) & set(pb)
            lca = next(x for x in pa if x in shared)
            up = pa[: pa.index(lca) + 1]
            down = pb[: pb.index(lca)][::-1]
            cand = up + down + [a]
            if cyc_sign(cand) < 0:
                cycle_sub = cand
                break
        else:  # pragma: no cover - check_balance guarantees a witness
            raise AssertionError("no negative fundamental cycle found")

    return [int(old[x]) for x in cycle_sub]


def switch(graph: SignedGraph, s: np.ndarray) -> SignedGraph:
    """Apply the switching function *s* (±1 per vertex).

    Returns the graph with ``sign'(u, v) = s[u] · sign(u, v) · s[v]``.
    Switching preserves cycle signs — it is the symmetry underlying the
    frustration cloud — so a balanced graph stays balanced.
    """
    s = np.asarray(s, dtype=np.int8)
    if s.shape != (graph.num_vertices,):
        raise NotBalancedError("switching function must have length n")
    if not np.all(np.abs(s) == 1):
        raise NotBalancedError("switching values must be +1 or -1")
    new = (
        s[graph.edge_u].astype(np.int16)
        * graph.edge_sign.astype(np.int16)
        * s[graph.edge_v].astype(np.int16)
    ).astype(np.int8)
    return graph.with_signs(new)

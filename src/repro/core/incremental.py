"""Incremental rebalancing under edge updates (extension).

The paper's labeling makes a *dynamic* extension natural, and this
module implements it: once a tree T is labeled, the balanced state Σ_T
is a pure function of the tree-edge signs — the balanced sign of every
non-tree edge (u, v) equals ``sign_to_root[u] · sign_to_root[v]``, the
sign product of the tree path.  Consequently:

* flipping a **non-tree** edge's input sign changes nothing about the
  balanced state (only whether that edge counts as "switched") — O(1);
* flipping a **tree** edge p→c negates ``sign_to_root`` for exactly the
  subtree of ``c``, which the pre-order relabeling exposes as the
  contiguous ID range ``[new_id[c], new_id[c] + size[c] − 1]`` — so the
  affected non-tree edges are precisely those with *exactly one*
  endpoint in that range, found with two O(1) range tests per candidate
  edge and updated in O(affected);
* **adding** a non-tree edge costs O(1): its balanced sign is the
  current path product;
* **swapping the tree itself** — cut a tree edge, reconnect its severed
  subtree S through a non-tree edge crossing the cut — moves S as a
  block: the pre-order IDs of S stay contiguous, every other vertex
  shifts by ±|S|, and ``sign_to_root`` changes by one *uniform* factor
  over S (the moved subtree keeps its internal tree paths, so only the
  attachment segment of each root path changes).

The last point is the engine behind the incremental spanning-tree
sampler (:mod:`repro.trees.swap_chain`): deriving tree k+1 from tree k
by a swap costs O(n) vectorized words instead of a from-scratch
sample + label + parity pass.  :class:`TreeDeltaState` holds the
mutable (tree, labeling, sign-to-root) triple and implements both the
sign-flip range negation and the structural cut/link;
:class:`IncrementalBalancer` wraps it with the edge-update API.

Consistency with full recomputation is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.core.cycles_vectorized import sign_to_root
from repro.core.labeling import Labeling, label_tree
from repro.errors import GraphFormatError, ReproError
from repro.graph.csr import SignedGraph
from repro.perf.tracing import span
from repro.trees.tree import SpanningTree

__all__ = ["IncrementalBalancer", "TreeDeltaState"]


class TreeDeltaState:
    """Mutable (tree, labeling, sign-to-root) state under delta updates.

    Maintains, for one spanning tree of *graph*:

    * ``parent`` / ``parent_edge`` — the rooted forest,
    * ``in_tree`` / ``tree_edges`` — the tree-edge flags and the n−1
      tree-edge ids (``tree_edges`` is slot-addressable so a swap can
      replace the cut edge in place),
    * ``new_id`` / ``subtree_size`` — the pre-order labeling, kept
      exactly equal to ``label_tree`` of the current tree,
    * ``s2r`` — sign-to-root under *signs* (default: the graph's input
      signs), kept exactly equal to ``sign_to_root``.

    Two delta operations are supported: :meth:`negate_subtree` (the
    sign-flip range negation) and :meth:`cut_link` (the structural
    swap).  Both are O(n) vectorized words, never a from-scratch
    relabel; the only Python-loop work is proportional to the moved
    subtree and the tree depth.
    """

    def __init__(
        self,
        graph: SignedGraph,
        tree: SpanningTree,
        signs: np.ndarray | None = None,
    ) -> None:
        self.graph = graph
        self.root = int(tree.root)
        self.parent = tree.parent.copy()
        self.parent_edge = tree.parent_edge.copy()
        self.in_tree = tree.in_tree.copy()
        self.tree_edges = tree.tree_edge_ids()
        # ``signs`` may be a live (mutable) view shared with the owner —
        # IncrementalBalancer passes its running input signs so swap
        # factors always see the current sign of the link edge.
        self.signs = graph.edge_sign if signs is None else signs
        lab = label_tree(tree)
        self.new_id = lab.new_id.copy()
        self.subtree_size = lab.subtree_size.copy()
        self.s2r = sign_to_root(graph, tree).copy()
        if signs is not None and not np.array_equal(signs, graph.edge_sign):
            raise ReproError(
                "initial signs must match the graph (flip them through "
                "the owner after construction)"
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def labeling(self) -> Labeling:
        """Snapshot the current labeling (equal to ``label_tree`` of the
        current tree, by construction)."""
        new_id = self.new_id.copy()
        size = self.subtree_size.copy()
        has_parent = self.parent >= 0
        return Labeling(
            new_id=new_id,
            subtree_size=size,
            range_lo=np.where(has_parent, new_id, -1),
            range_hi=np.where(has_parent, new_id + size - 1, -1),
        )

    def spanning_tree(self) -> SpanningTree:
        """Materialize (and re-validate) the current tree."""
        return SpanningTree.from_parents(
            self.graph, self.root, self.parent.copy(), self.parent_edge.copy()
        )

    def balanced_signs(self) -> np.ndarray:
        """The nearest balanced state of the current tree: every edge
        takes its tree-path sign product (tree edges reproduce their
        input sign by the consistency of ``s2r``)."""
        s2r = self.s2r
        return (
            s2r[self.graph.edge_u].astype(np.int16)
            * s2r[self.graph.edge_v].astype(np.int16)
        ).astype(np.int8)

    def subtree_range(self, child: int) -> tuple[int, int]:
        """Inclusive pre-order ID range of the subtree at *child*."""
        lo = int(self.new_id[child])
        return lo, lo + int(self.subtree_size[child]) - 1

    def child_endpoint(self, tree_edge: int) -> int:
        """The child-side endpoint of a tree edge."""
        u = int(self.graph.edge_u[tree_edge])
        v = int(self.graph.edge_v[tree_edge])
        return u if self.parent[u] == v else v

    # ------------------------------------------------------------------
    # Delta 1: sign flip (range negation)
    # ------------------------------------------------------------------
    def negate_subtree(self, child: int) -> np.ndarray:
        """Negate ``s2r`` over the subtree of *child* (the effect of
        flipping the sign of its parent edge); returns the membership
        mask of the negated range."""
        lo, hi = self.subtree_range(child)
        ids = self.new_id
        in_range = (ids >= lo) & (ids <= hi)
        self.s2r[in_range] = -self.s2r[in_range]
        return in_range

    # ------------------------------------------------------------------
    # Delta 2: structural cut/link (the tree swap)
    # ------------------------------------------------------------------
    def crossing_candidates(self, child: int) -> np.ndarray:
        """Non-tree edge ids with exactly one endpoint in the subtree of
        *child* — the edges that can re-span the cut of its parent
        edge.  The cut edge itself is still flagged ``in_tree`` and is
        therefore never a candidate (a swap always changes the tree)."""
        lo, hi = self.subtree_range(child)
        ids = self.new_id
        u_ids = ids[self.graph.edge_u]
        v_ids = ids[self.graph.edge_v]
        u_in = (u_ids >= lo) & (u_ids <= hi)
        v_in = (v_ids >= lo) & (v_ids <= hi)
        return np.nonzero((u_in != v_in) & ~self.in_tree)[0]

    def cut_link(
        self, cut_edge: int, link_edge: int, slot: int | None = None
    ) -> None:
        """Cut tree edge p→c and reconnect its subtree S through the
        non-tree edge *link_edge* = (u_out, v_in), v_in ∈ S.

        All derived state updates as deltas:

        * ``s2r[x]`` for x ∈ S changes by the uniform factor
          ``s2r[u_out] · s2r[v_in] · sign(link_edge)`` (tree paths
          inside S are unchanged; only the attachment segment differs),
          applied over S's contiguous ID range exactly like a sign
          flip;
        * pre-order IDs: vertices after S's old range shift down by
          |S|, vertices at/after its new insertion point shift up by
          |S|, and S itself is relabeled by an O(|S|) mini pre-order
          re-rooted at v_in — bit-identical to ``label_tree`` of the
          new tree;
        * ``subtree_size`` changes only on the two root paths (−|S|
          above the cut, +|S| above the link) and inside S.
        """
        graph = self.graph
        if not self.in_tree[cut_edge]:
            raise ReproError(f"edge {cut_edge} is not a tree edge")
        if self.in_tree[link_edge]:
            raise ReproError(f"edge {link_edge} is already a tree edge")
        if slot is None:
            slot = int(np.nonzero(self.tree_edges == cut_edge)[0][0])

        c = self.child_endpoint(cut_edge)
        p = int(self.parent[c])
        lo, hi = self.subtree_range(c)
        s = hi - lo + 1

        fu = int(graph.edge_u[link_edge])
        fv = int(graph.edge_v[link_edge])
        fu_in = lo <= int(self.new_id[fu]) <= hi
        fv_in = lo <= int(self.new_id[fv]) <= hi
        if fu_in == fv_in:
            raise ReproError(
                f"edge {link_edge} does not cross the cut of edge {cut_edge}"
            )
        v_in = fu if fu_in else fv
        u_out = fv if fu_in else fu

        # The uniform sign factor over S (see the module docstring).
        factor = (
            int(self.s2r[u_out])
            * int(self.s2r[v_in])
            * int(self.signs[link_edge])
        )

        # Members of S in current pre-order, via the inverse permutation.
        inv = np.empty(graph.num_vertices, dtype=np.int64)
        inv[self.new_id] = np.arange(graph.num_vertices)
        members = inv[lo : hi + 1]

        # Insertion point of S under u_out, measured in the labeling of
        # the tree *without* S: position of u_out, plus one for u_out
        # itself, plus every earlier sibling's S-free subtree size
        # (children are visited in ascending vertex id).
        ids = self.new_id
        mid_uout = int(ids[u_out]) - (s if ids[u_out] > hi else 0)
        old_kids_out = np.nonzero(self.parent == u_out)[0]
        start = mid_uout + 1
        for w in old_kids_out:
            w = int(w)
            if w == c or w >= v_in:
                continue
            w_lo = int(ids[w])
            w_size = int(self.subtree_size[w])
            covers_s = w_lo <= lo and hi <= w_lo + w_size - 1
            start += w_size - (s if covers_s else 0)

        # Structural update: reverse the path v_in → c, attach v_in
        # under u_out, and swap the edge flags.
        path = [v_in]
        while path[-1] != c:
            path.append(int(self.parent[path[-1]]))
        old_pe = [int(self.parent_edge[x]) for x in path]
        for i in range(len(path) - 1):
            self.parent[path[i + 1]] = path[i]
            self.parent_edge[path[i + 1]] = old_pe[i]
        self.parent[v_in] = u_out
        self.parent_edge[v_in] = link_edge
        self.in_tree[cut_edge] = False
        self.in_tree[link_edge] = True
        self.tree_edges[slot] = link_edge

        with span("delta_relabel"):
            # Mini pre-order of S re-rooted at v_in (children ascending
            # vertex id, matching label_tree's visit order).
            kids: dict[int, list[int]] = {}
            for x in np.sort(members):
                x = int(x)
                if x != v_in:
                    kids.setdefault(int(self.parent[x]), []).append(x)
            local_id: dict[int, int] = {}
            local_size: dict[int, int] = {}
            counter = 0
            stack = [v_in]
            while stack:
                x = stack.pop()
                if x < 0:
                    x = ~x
                    px = int(self.parent[x])
                    if x != v_in:
                        local_size[px] += local_size[x]
                    continue
                local_id[x] = counter
                counter += 1
                local_size[x] = 1
                stack.append(~x)
                for ch in reversed(kids.get(x, ())):
                    stack.append(ch)

            # Vectorized ID shifts: close the old range, open the new.
            in_S = (ids >= lo) & (ids <= hi)
            ids -= s * (ids > hi)
            ids += s * (~in_S & (ids >= start))
            mem_list = [int(x) for x in members]
            ids[members] = [start + local_id[x] for x in mem_list]

            # Subtree sizes: the two root paths, then S's own sizes.
            v = p
            while v >= 0:
                self.subtree_size[v] -= s
                v = int(self.parent[v])
            v = u_out
            while v >= 0:
                self.subtree_size[v] += s
                v = int(self.parent[v])
            self.subtree_size[members] = [local_size[x] for x in mem_list]

        if factor < 0:
            self.s2r[members] = -self.s2r[members]

    def random_swap(
        self, rng: np.random.Generator, max_attempts: int = 16
    ) -> bool:
        """One random cut/link swap: a uniform tree-edge slot, then a
        uniform crossing non-tree edge.  Cuts whose subtree no non-tree
        edge re-spans are retried (fresh draws) up to *max_attempts*
        times; returns whether the tree changed.  Graphs with no
        fundamental cycle (trees) never change."""
        if self.graph.num_fundamental_cycles == 0:
            return False
        for _ in range(max_attempts):
            slot = int(rng.integers(0, len(self.tree_edges)))
            cut_edge = int(self.tree_edges[slot])
            child = self.child_endpoint(cut_edge)
            cand = self.crossing_candidates(child)
            if not len(cand):
                continue
            link_edge = int(cand[int(rng.integers(0, len(cand)))])
            self.cut_link(cut_edge, link_edge, slot=slot)
            return True
        return False


class IncrementalBalancer:
    """Maintain the nearest balanced state Σ_T under edge-sign updates.

    Signs (tree or non-tree) may change, non-tree edges may be
    appended, and the tree itself may be re-spanned one edge at a time
    (:meth:`swap_tree_edge`).  Use :meth:`balanced_signs` to read the
    current state and :meth:`flipped` for the switch mask.
    """

    def __init__(self, graph: SignedGraph, tree: SpanningTree) -> None:
        self._graph = graph
        self._signs = graph.edge_sign.copy()
        self._delta = TreeDeltaState(graph, tree, signs=self._signs)
        self._tree: SpanningTree | None = tree
        self._non_tree = tree.non_tree_edge_ids()
        # Appended edges: (u, v, input_sign) beyond the original m.
        self._extra_u: list[int] = []
        self._extra_v: list[int] = []
        self._extra_sign: list[int] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def tree(self) -> SpanningTree:
        if self._tree is None:
            self._tree = self._delta.spanning_tree()
        return self._tree

    @property
    def labeling(self) -> Labeling:
        return self._delta.labeling()

    def input_signs(self) -> np.ndarray:
        """Current input signs of the original edges (copy)."""
        return self._signs.copy()

    def balanced_signs(self) -> np.ndarray:
        """Balanced-state signs of the original ``m`` edges.

        Tree edges keep their input sign; each non-tree edge takes the
        sign product of its tree path (= the state Alg. 3 produces).
        """
        out = self._signs.copy()
        nt = self._non_tree
        u = self._graph.edge_u[nt]
        v = self._graph.edge_v[nt]
        s2r = self._delta.s2r
        out[nt] = (
            s2r[u].astype(np.int16) * s2r[v].astype(np.int16)
        ).astype(np.int8)
        return out

    def flipped(self) -> np.ndarray:
        """Bool mask of original edges whose balanced sign differs from
        the current input sign."""
        return self.balanced_signs() != self._signs

    def extra_balanced_signs(self) -> np.ndarray:
        """Balanced signs of the appended non-tree edges, in append order."""
        if not self._extra_u:
            return np.empty(0, dtype=np.int8)
        u = np.asarray(self._extra_u)
        v = np.asarray(self._extra_v)
        s2r = self._delta.s2r
        return (
            s2r[u].astype(np.int16) * s2r[v].astype(np.int16)
        ).astype(np.int8)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_sign(self, edge: int, sign: int) -> int:
        """Change the input sign of an original edge.

        Returns the number of non-tree edges whose *balanced* sign
        changed (0 for non-tree updates; the affected range population
        for tree updates).
        """
        if sign not in (-1, 1):
            raise GraphFormatError("sign must be +1 or -1")
        if not 0 <= edge < self._graph.num_edges:
            raise GraphFormatError(f"edge id {edge} out of range")
        if self._signs[edge] == sign:
            return 0
        self._signs[edge] = sign
        if not self._delta.in_tree[edge]:
            # Balanced state is a function of tree signs only.
            return 0

        # Tree edge p->c: negate the subtree's sign_to_root over its
        # contiguous ID range.
        in_range = self._delta.negate_subtree(self._delta.child_endpoint(edge))

        # Count affected fundamental cycles: non-tree edges with exactly
        # one endpoint inside the range (both-inside cycles cancel).
        nt = self._non_tree
        a_in = in_range[self._graph.edge_u[nt]]
        b_in = in_range[self._graph.edge_v[nt]]
        affected = int(np.count_nonzero(a_in ^ b_in))
        if self._extra_u:
            ea = in_range[np.asarray(self._extra_u)]
            eb = in_range[np.asarray(self._extra_v)]
            affected += int(np.count_nonzero(ea ^ eb))
        return affected

    def flip_sign(self, edge: int) -> int:
        """Negate an original edge's input sign (see :meth:`set_sign`)."""
        return self.set_sign(edge, -int(self._signs[edge]))

    def swap_tree_edge(self, cut_edge: int, link_edge: int) -> int:
        """Re-span the tree: cut *cut_edge* and reconnect its severed
        subtree through *link_edge* (a non-tree edge crossing the cut).

        The input signs are untouched; the *balanced* state changes
        because the tree defining it does.  Returns the number of
        original edges whose balanced sign changed.  Raises
        :class:`~repro.errors.ReproError` when the edges do not form a
        valid cut/link pair.
        """
        before = self.balanced_signs()
        self._delta.cut_link(cut_edge, link_edge)
        self._tree = None  # stale; re-materialized on demand
        self._non_tree = np.nonzero(~self._delta.in_tree)[0]
        return int(np.count_nonzero(self.balanced_signs() != before))

    def add_edge(self, u: int, v: int, sign: int) -> int:
        """Append a non-tree edge and return its balanced sign (O(1)).

        The tree is unchanged, so the new edge closes one new
        fundamental cycle whose balanced sign is the current tree-path
        product.
        """
        n = self._graph.num_vertices
        if not (0 <= u < n and 0 <= v < n) or u == v:
            raise GraphFormatError(f"invalid endpoints ({u}, {v})")
        if sign not in (-1, 1):
            raise GraphFormatError("sign must be +1 or -1")
        self._extra_u.append(u)
        self._extra_v.append(v)
        self._extra_sign.append(sign)
        return int(self._delta.s2r[u]) * int(self._delta.s2r[v])

    def remove_extra_edge(self, index: int) -> None:
        """Remove a previously appended edge (original edges are part of
        the tree structure and cannot be removed — re-tree instead)."""
        try:
            del self._extra_u[index]
            del self._extra_v[index]
            del self._extra_sign[index]
        except IndexError:
            raise ReproError(f"no appended edge at index {index}") from None

    # ------------------------------------------------------------------
    def current_graph(self) -> SignedGraph:
        """The current *input* graph (original structure + appended
        edges, current signs) — for cross-checking against a fresh
        ``balance`` run in tests."""
        from repro.graph.build import from_arrays

        u = np.concatenate([self._graph.edge_u, np.asarray(self._extra_u, dtype=np.int64)])
        v = np.concatenate([self._graph.edge_v, np.asarray(self._extra_v, dtype=np.int64)])
        s = np.concatenate([self._signs, np.asarray(self._extra_sign, dtype=np.int8)])
        return from_arrays(u, v, s, num_vertices=self._graph.num_vertices, dedup="first")

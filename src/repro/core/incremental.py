"""Incremental rebalancing under edge updates (extension).

The paper's labeling makes a *dynamic* extension natural, and this
module implements it: once a tree T is labeled, the balanced state Σ_T
is a pure function of the tree-edge signs — the balanced sign of every
non-tree edge (u, v) equals ``sign_to_root[u] · sign_to_root[v]``, the
sign product of the tree path.  Consequently:

* flipping a **non-tree** edge's input sign changes nothing about the
  balanced state (only whether that edge counts as "switched") — O(1);
* flipping a **tree** edge p→c negates ``sign_to_root`` for exactly the
  subtree of ``c``, which the pre-order relabeling exposes as the
  contiguous ID range ``[new_id[c], new_id[c] + size[c] − 1]`` — so the
  affected non-tree edges are precisely those with *exactly one*
  endpoint in that range, found with two O(1) range tests per candidate
  edge and updated in O(affected);
* **adding** a non-tree edge costs O(1): its balanced sign is the
  current path product.

This is how a production deployment would keep consensus attributes
fresh on a stream of sentiment updates without re-running graphB+ from
scratch.  Consistency with full recomputation is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.core.cycles_vectorized import sign_to_root
from repro.core.labeling import Labeling, label_tree
from repro.errors import GraphFormatError, ReproError
from repro.graph.csr import SignedGraph
from repro.trees.tree import SpanningTree

__all__ = ["IncrementalBalancer"]


class IncrementalBalancer:
    """Maintain the nearest balanced state Σ_T under edge-sign updates.

    The tree structure is fixed; signs (tree or non-tree) may change and
    non-tree edges may be appended.  Use :meth:`balanced_signs` to read
    the current state and :meth:`flipped` for the switch mask.
    """

    def __init__(self, graph: SignedGraph, tree: SpanningTree) -> None:
        self._graph = graph
        self._tree = tree
        self._labeling: Labeling = label_tree(tree)
        # Current *input* signs (mutable copy) and derived state.
        self._signs = graph.edge_sign.copy()
        self._s2r = sign_to_root(graph, tree).copy()
        self._non_tree = tree.non_tree_edge_ids()
        # Appended edges: (u, v, input_sign) beyond the original m.
        self._extra_u: list[int] = []
        self._extra_v: list[int] = []
        self._extra_sign: list[int] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def tree(self) -> SpanningTree:
        return self._tree

    @property
    def labeling(self) -> Labeling:
        return self._labeling

    def input_signs(self) -> np.ndarray:
        """Current input signs of the original edges (copy)."""
        return self._signs.copy()

    def balanced_signs(self) -> np.ndarray:
        """Balanced-state signs of the original ``m`` edges.

        Tree edges keep their input sign; each non-tree edge takes the
        sign product of its tree path (= the state Alg. 3 produces).
        """
        out = self._signs.copy()
        nt = self._non_tree
        u = self._graph.edge_u[nt]
        v = self._graph.edge_v[nt]
        out[nt] = (
            self._s2r[u].astype(np.int16) * self._s2r[v].astype(np.int16)
        ).astype(np.int8)
        return out

    def flipped(self) -> np.ndarray:
        """Bool mask of original edges whose balanced sign differs from
        the current input sign."""
        return self.balanced_signs() != self._signs

    def extra_balanced_signs(self) -> np.ndarray:
        """Balanced signs of the appended non-tree edges, in append order."""
        if not self._extra_u:
            return np.empty(0, dtype=np.int8)
        u = np.asarray(self._extra_u)
        v = np.asarray(self._extra_v)
        return (
            self._s2r[u].astype(np.int16) * self._s2r[v].astype(np.int16)
        ).astype(np.int8)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_sign(self, edge: int, sign: int) -> int:
        """Change the input sign of an original edge.

        Returns the number of non-tree edges whose *balanced* sign
        changed (0 for non-tree updates; the affected range population
        for tree updates).
        """
        if sign not in (-1, 1):
            raise GraphFormatError("sign must be +1 or -1")
        if not 0 <= edge < self._graph.num_edges:
            raise GraphFormatError(f"edge id {edge} out of range")
        if self._signs[edge] == sign:
            return 0
        self._signs[edge] = sign
        if not self._tree.in_tree[edge]:
            # Balanced state is a function of tree signs only.
            return 0

        # Tree edge p->c: find the child endpoint and negate the
        # subtree's sign_to_root over its contiguous ID range.
        u = int(self._graph.edge_u[edge])
        v = int(self._graph.edge_v[edge])
        child = u if self._tree.parent[u] == v else v
        lo = int(self._labeling.new_id[child])
        hi = lo + int(self._labeling.subtree_size[child]) - 1
        ids = self._labeling.new_id
        in_range = (ids >= lo) & (ids <= hi)
        self._s2r[in_range] = -self._s2r[in_range]

        # Count affected fundamental cycles: non-tree edges with exactly
        # one endpoint inside the range (both-inside cycles cancel).
        nt = self._non_tree
        a_in = in_range[self._graph.edge_u[nt]]
        b_in = in_range[self._graph.edge_v[nt]]
        affected = int(np.count_nonzero(a_in ^ b_in))
        if self._extra_u:
            ea = in_range[np.asarray(self._extra_u)]
            eb = in_range[np.asarray(self._extra_v)]
            affected += int(np.count_nonzero(ea ^ eb))
        return affected

    def flip_sign(self, edge: int) -> int:
        """Negate an original edge's input sign (see :meth:`set_sign`)."""
        return self.set_sign(edge, -int(self._signs[edge]))

    def add_edge(self, u: int, v: int, sign: int) -> int:
        """Append a non-tree edge and return its balanced sign (O(1)).

        The tree is unchanged, so the new edge closes one new
        fundamental cycle whose balanced sign is the current tree-path
        product.
        """
        n = self._graph.num_vertices
        if not (0 <= u < n and 0 <= v < n) or u == v:
            raise GraphFormatError(f"invalid endpoints ({u}, {v})")
        if sign not in (-1, 1):
            raise GraphFormatError("sign must be +1 or -1")
        self._extra_u.append(u)
        self._extra_v.append(v)
        self._extra_sign.append(sign)
        return int(self._s2r[u]) * int(self._s2r[v])

    def remove_extra_edge(self, index: int) -> None:
        """Remove a previously appended edge (original edges are part of
        the tree structure and cannot be removed — re-tree instead)."""
        try:
            del self._extra_u[index]
            del self._extra_v[index]
            del self._extra_sign[index]
        except IndexError:
            raise ReproError(f"no appended edge at index {index}") from None

    # ------------------------------------------------------------------
    def current_graph(self) -> SignedGraph:
        """The current *input* graph (original structure + appended
        edges, current signs) — for cross-checking against a fresh
        ``balance`` run in tests."""
        from repro.graph.build import from_arrays

        u = np.concatenate([self._graph.edge_u, np.asarray(self._extra_u, dtype=np.int64)])
        v = np.concatenate([self._graph.edge_v, np.asarray(self._extra_v, dtype=np.int64)])
        s = np.concatenate([self._signs, np.asarray(self._extra_sign, dtype=np.int8)])
        return from_arrays(u, v, s, num_vertices=self._graph.num_vertices, dedup="first")

"""Batched parity balancing: B spanning trees per kernel invocation.

The O(m) closed form of :func:`repro.core.cycles_vectorized.balance_by_parity`
extends naturally to a batch: stack the B sign-to-root vectors into a
``(B, n)`` array computed with *shared* top-down level passes (all
trees' vertices at level ``l`` update together), then evaluate every
balanced state at once as

    ``signs[b, e] = s2r[b, u_e] * s2r[b, v_e]``

which holds for tree edges by construction (``s2r[child] =
s2r[parent] * sign``) and for non-tree edges by the fundamental-cycle
parity argument of §3.  This is the Python analog of the paper's
cross-tree parallelism: one set of vectorized kernels amortizes the
interpreter overhead over the whole batch.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters
from repro.perf.registry import get_registry
from repro.trees.batched import TreeBatch

__all__ = ["sign_to_root_batch", "balance_batch"]


def sign_to_root_batch(
    graph: SignedGraph,
    batch: TreeBatch,
    counters: Counters | None = None,
) -> np.ndarray:
    """Per-vertex ±1 root-path sign products for every tree in *batch*.

    Returns a ``(B, n)`` int8 array; row ``b`` equals
    ``sign_to_root(graph, tree_b)``.  One level pass updates the
    level-``l`` vertices of *all* B trees together, so the number of
    Python-level iterations is the batch's maximum depth, not the sum
    of depths.
    """
    num_trees, n = batch.parent.shape
    s2r = np.ones(num_trees * n, dtype=np.int8)
    order, level_ptr = batch.flat_levels
    flat_parent = batch.flat_parent
    flat_parent_edge = batch.parent_edge.ravel()
    sign = graph.edge_sign
    for lvl in range(1, batch.num_levels):
        members = order[level_ptr[lvl] : level_ptr[lvl + 1]]
        s2r[members] = (
            s2r[flat_parent[members]] * sign[flat_parent_edge[members]]
        )
        if counters is not None:
            counters.parallel_region("parity.top_down", len(members))
    return s2r.reshape(num_trees, n)


def balance_batch(
    graph: SignedGraph,
    batch: TreeBatch,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Balanced states of every tree in *batch* via batched parity.

    Returns ``(signs, s2r)``: ``signs`` is ``(B, m)`` int8, row ``b``
    identical to the ``new_signs`` of any single-tree kernel on tree
    ``b``; ``s2r`` is the ``(B, n)`` sign-to-root array (from which the
    Harary bipartitions follow in O(n), see
    :func:`repro.harary.bipartition.sides_from_sign_to_root`).
    """
    s2r = sign_to_root_batch(graph, batch, counters=counters)
    signs = s2r[:, graph.edge_u] * s2r[:, graph.edge_v]
    num_cycles = batch.num_trees * (
        graph.num_edges - (graph.num_vertices - 1)
    )
    if counters is not None:
        counters.add("cycle.count", num_cycles)
    registry = get_registry()
    registry.count("parity.states_total", batch.num_trees)
    registry.count("parity.cycles_total", num_cycles)
    return signs, s2r

"""The pre-graphB+ baseline (Alg. 1 as the original Python code ran it).

Tesic and Rusnak's original graphB package (§2.5) stored the graph as
an adjacency matrix with dictionary bookkeeping and, for every non-tree
edge, searched the tree for the connecting path — O(n · m) work per
tree and O(n²) memory.  This module reimplements that complexity class
as the slow comparator of Table 2 / Fig. 7:

* dense ``n × n`` sign matrix (the O(n²) footprint),
* per-cycle path discovery by walking *full ancestor chains* with
  Python-object bookkeeping (dict/list, no arrays),
* no labels, no ranges, no partitioned adjacency.

The produced balanced state is identical to graphB+'s for the same
tree (both flip exactly the negative fundamental cycles) — the paper
validated its results against the Python code the same way.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import BalanceResult
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters, PhaseTimer
from repro.trees.tree import SpanningTree

__all__ = ["balance_baseline"]

_DENSE_LIMIT = 20_000  # n above this would allocate > 400 MB; refuse.


def balance_baseline(
    graph: SignedGraph,
    tree: SpanningTree,
    counters: Counters | None = None,
    timers: PhaseTimer | None = None,
) -> BalanceResult:
    """Balance Σ w.r.t. T the way the original graphB code did.

    Refuses graphs with more than 20k vertices — the dense matrix is
    the point of the baseline, and the paper likewise could not run
    the Python code on the larger inputs.
    """
    n = graph.num_vertices
    if n > _DENSE_LIMIT:
        raise ReproError(
            f"baseline uses an O(n^2) adjacency matrix; n={n} exceeds "
            f"the {_DENSE_LIMIT}-vertex safety limit (the original code "
            "hit the same wall, cf. paper §2.5)"
        )
    counters = counters if counters is not None else Counters()
    timers = timers if timers is not None else PhaseTimer()

    with timers.phase("baseline_setup"):
        # Dense adjacency-matrix sign storage, dict-of-dict edge ids —
        # deliberately the original code's data layout.
        matrix = np.zeros((n, n), dtype=np.int8)
        edge_id: dict[tuple[int, int], int] = {}
        for e in range(graph.num_edges):
            u = int(graph.edge_u[e])
            v = int(graph.edge_v[e])
            s = int(graph.edge_sign[e])
            matrix[u, v] = s
            matrix[v, u] = s
            edge_id[(u, v)] = e
            edge_id[(v, u)] = e
        parent = [int(p) for p in tree.parent]

    new_signs = graph.edge_sign.copy()
    flipped = np.zeros(graph.num_edges, dtype=bool)
    path_vertices_total = 0

    with timers.phase("cycle_processing"):
        for e in range(graph.num_edges):
            if tree.in_tree[e]:
                continue
            u = int(graph.edge_u[e])
            v = int(graph.edge_v[e])

            # Full ancestor chain of u (list + dict, O(depth) each but
            # with Python-object costs), then climb v until the chains
            # meet — O(n) per cycle in the worst case, which over all
            # O(m) cycles is the O(n * m) per-tree work of §2.5.
            chain = []
            at: dict[int, int] = {}
            x = u
            while x != -1:
                at[x] = len(chain)
                chain.append(x)
                x = parent[x]
            y = v
            path_v = [y]
            while y not in at:
                y = parent[y]
                path_v.append(y)
            lca = y

            sign_product = int(matrix[u, v])
            # u -> lca segment.
            for i in range(at[lca]):
                a, b = chain[i], chain[i + 1]
                sign_product *= int(matrix[a, b])
            # v -> lca segment (path_v ends at lca).
            for i in range(len(path_v) - 1):
                a, b = path_v[i], path_v[i + 1]
                sign_product *= int(matrix[a, b])
            path_vertices_total += len(chain) + len(path_v)

            if sign_product < 0:
                new_signs[e] = -new_signs[e]
                flipped[e] = True
                matrix[u, v] = int(new_signs[e])
                matrix[v, u] = int(new_signs[e])

    counters.add("cycle.count", int((~tree.in_tree).sum()))
    counters.add("baseline.path_vertices", path_vertices_total)
    return BalanceResult(
        graph=graph,
        tree=tree,
        signs=new_signs,
        flipped=flipped,
        stats=None,
        counters=counters,
        timers=timers,
    )

"""Cycle-traversal tracing: the Fig. 6 narration, automated.

:func:`trace_cycle` replays the faithful range walk for one non-tree
edge and records every decision — which vertex, which range test, which
edge was taken — producing the kind of step-by-step explanation §3
gives for the 6→7 cycle ("first, we search the edges in vertex 7's
adjacency list … we select edge 0→7 and traverse it to reach vertex 0
…").  Used by tests to pin the worked example and by humans to see why
a cycle was balanced the way it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.labeling import Labeling, label_tree
from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.trees.tree import SpanningTree

__all__ = ["TraceStep", "CycleTrace", "trace_cycle"]


@dataclass(frozen=True)
class TraceStep:
    """One hop of the walk: the vertex we stood on, the move chosen."""

    at_vertex: int
    used_parent_edge: bool
    next_vertex: int
    edge_id: int
    edge_sign: int
    children_scanned: int  # child ranges tested before the hit (0 if parent)

    def describe(self) -> str:
        """One-line human-readable rendering of this step."""
        direction = "up (inverse range)" if self.used_parent_edge else "down"
        return (
            f"at {self.at_vertex}: take edge {self.at_vertex}"
            f"->{self.next_vertex} {direction}, sign {self.edge_sign:+d}"
            + (
                f", after scanning {self.children_scanned} child range(s)"
                if self.children_scanned
                else ""
            )
        )


@dataclass(frozen=True)
class CycleTrace:
    """Full record of balancing one fundamental cycle."""

    edge_id: int
    src: int
    dst: int
    steps: List[TraceStep]
    negative_tree_edges: int
    original_sign: int
    balanced_sign: int

    @property
    def cycle_length(self) -> int:
        """Edges on the cycle (tree path + the non-tree edge)."""
        return len(self.steps) + 1

    @property
    def flipped(self) -> bool:
        return self.original_sign != self.balanced_sign

    def describe(self) -> str:
        """Multi-line narration of the whole cycle (Fig. 6 style)."""
        lines = [
            f"cycle of non-tree edge {self.src}-{self.dst} "
            f"(edge id {self.edge_id}, sign {self.original_sign:+d}):"
        ]
        for step in self.steps:
            lines.append("  " + step.describe())
        lines.append(
            f"  tree path has {self.negative_tree_edges} negative edge(s) "
            f"-> set edge sign to {self.balanced_sign:+d}"
            + (" (switched)" if self.flipped else " (unchanged)")
        )
        return "\n".join(lines)


def trace_cycle(
    graph: SignedGraph,
    tree: SpanningTree,
    edge_id: int,
    labeling: Labeling | None = None,
) -> CycleTrace:
    """Trace the range walk that balances one fundamental cycle.

    ``edge_id`` must be a non-tree edge of *tree*.  The walk starts at
    the edge's first endpoint and follows, at each vertex, the parent
    edge when the destination lies outside the current subtree and the
    covering child edge otherwise — exactly Alg. 3's loop.
    """
    if tree.in_tree[edge_id]:
        raise ReproError(f"edge {edge_id} is a tree edge; cycles come from non-tree edges")
    lab = labeling if labeling is not None else label_tree(tree)

    src = int(graph.edge_u[edge_id])
    dst = int(graph.edge_v[edge_id])
    dst_id = int(lab.new_id[dst])

    steps: List[TraceStep] = []
    neg = 0
    v = src
    guard = 0
    while v != dst:
        lo = int(lab.new_id[v])
        hi = lo + int(lab.subtree_size[v]) - 1
        if not (lo <= dst_id <= hi):
            g = int(tree.parent_edge[v])
            nxt = int(tree.parent[v])
            scanned = 0
            used_parent = True
        else:
            used_parent = False
            g = -1
            nxt = -1
            scanned = 0
            for c in tree.children_of(v):
                scanned += 1
                clo = int(lab.range_lo[c])
                chi = int(lab.range_hi[c])
                if clo <= dst_id <= chi:
                    g = int(tree.parent_edge[c])
                    nxt = int(c)
                    break
            assert g >= 0, "ranges must locate the destination"
        sign = int(graph.edge_sign[g])
        if sign < 0:
            neg += 1
        steps.append(
            TraceStep(
                at_vertex=v,
                used_parent_edge=used_parent,
                next_vertex=nxt,
                edge_id=g,
                edge_sign=sign,
                children_scanned=scanned if not used_parent else 0,
            )
        )
        v = nxt
        guard += 1
        if guard > graph.num_vertices:
            raise AssertionError("trace failed to terminate")

    balanced = 1 if neg % 2 == 0 else -1
    return CycleTrace(
        edge_id=edge_id,
        src=src,
        dst=dst,
        steps=steps,
        negative_tree_edges=neg,
        original_sign=int(graph.edge_sign[edge_id]),
        balanced_sign=balanced,
    )

"""Data-parallel cycle processing — the CUDA-analog kernels.

Two kernels, both producing the exact balanced state of the faithful
serial walker (:mod:`repro.core.cycles`):

* :func:`process_cycles_lockstep` — one *lane* per fundamental cycle,
  advancing all lanes in lockstep.  Each step lifts the deeper endpoint
  one tree level (both when tied), accumulating edge-sign parity,
  cycle length, and on-cycle degree sums exactly as the serial walk
  does.  The number of lockstep rounds is bounded by the tree depth
  (≤ 21 on every paper input), and each round is a handful of
  vectorized gathers — this is how a warp-per-cycle GPU kernel behaves,
  and the per-lane step counts recorded here feed the simulated-GPU
  cost model.

* :func:`balance_by_parity` — the O(m) closed form: the sign product of
  the tree path between ``a`` and ``b`` equals
  ``sign_to_root[a] * sign_to_root[b]`` (the shared root–LCA segment
  squares away), so a single top-down level pass computing
  ``sign_to_root`` balances every cycle at once.  It cannot report
  cycle lengths, but is the fastest way to get the balanced state and
  serves as an independent oracle in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.cycles import CycleStats
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters
from repro.trees.tree import SpanningTree

__all__ = ["process_cycles_lockstep", "balance_by_parity", "sign_to_root"]


def process_cycles_lockstep(
    graph: SignedGraph,
    tree: SpanningTree,
    counters: Counters | None = None,
    collect_stats: bool = False,
) -> tuple[np.ndarray, np.ndarray, CycleStats | None]:
    """Balance all fundamental cycles with a lane-per-cycle lockstep walk.

    Returns the same ``(new_signs, flipped, stats)`` triple as
    :func:`repro.core.cycles.process_cycles_serial`.
    """
    depth = tree.level_of
    parent = tree.parent
    parent_edge = tree.parent_edge
    signs = graph.edge_sign
    degrees = graph.degrees
    tree_deg = tree.tree_degree

    non_tree = tree.non_tree_edge_ids()
    a = graph.edge_u[non_tree].copy()
    b = graph.edge_v[non_tree].copy()

    neg = np.zeros(len(non_tree), dtype=np.int64)
    length = np.ones(len(non_tree), dtype=np.int64)  # the non-tree edge
    if collect_stats:
        dsum = degrees[a] + degrees[b]
        tsum = tree_deg[a] + tree_deg[b]
    rounds = 0

    active = np.nonzero(a != b)[0]
    while len(active):
        rounds += 1
        da = depth[a[active]]
        db = depth[b[active]]
        lift_a = active[da >= db]
        lift_b = active[db >= da]  # ties lift both endpoints

        for side, lifted in (("a", lift_a), ("b", lift_b)):
            if len(lifted) == 0:
                continue
            cur = a[lifted] if side == "a" else b[lifted]
            pe = parent_edge[cur]
            neg[lifted] += signs[pe] < 0
            nxt = parent[cur]
            if side == "a":
                a[lifted] = nxt
            else:
                b[lifted] = nxt
            length[lifted] += 1
            if collect_stats:
                dsum[lifted] += degrees[nxt]
                tsum[lifted] += tree_deg[nxt]

        if counters is not None:
            counters.parallel_region(
                "cycle.lockstep_round", len(lift_a) + len(lift_b)
            )
        active = active[a[active] != b[active]]

    if collect_stats:
        # Both endpoints landed on the LCA, which was therefore counted
        # twice (unless src == dst's ancestor and only one side moved —
        # the meet vertex is still added exactly once per moving side
        # plus once as an endpoint, netting one extra count).
        meet = a
        dsum -= degrees[meet]
        tsum -= tree_deg[meet]

    want = np.where(neg % 2 == 0, 1, -1).astype(np.int8)
    new_signs = signs.copy()
    flipped = np.zeros(graph.num_edges, dtype=bool)
    changed = signs[non_tree] != want
    new_signs[non_tree[changed]] = want[changed]
    flipped[non_tree[changed]] = True

    if counters is not None:
        counters.add("cycle.count", len(non_tree))
        counters.add("cycle.lockstep_rounds", rounds)
        counters.add("cycle.vertices_visited", int(length.sum()) - len(non_tree))

    stats = None
    if collect_stats:
        stats = CycleStats(
            edge_ids=non_tree,
            lengths=length,
            degree_sums=dsum,
            tree_degree_sums=tsum,
        )
    return new_signs, flipped, stats


def sign_to_root(
    graph: SignedGraph, tree: SpanningTree, counters: Counters | None = None
) -> np.ndarray:
    """Per-vertex ±1 product of edge signs on the tree path to the root.

    Computed with one top-down level-synchronous pass (the same
    parallel structure as Alg. 4's top-down phase).
    """
    n = graph.num_vertices
    s2r = np.ones(n, dtype=np.int8)
    order, level_ptr = tree.levels
    for lvl in range(1, tree.num_levels):
        members = order[level_ptr[lvl] : level_ptr[lvl + 1]]
        s2r[members] = (
            s2r[tree.parent[members]] * graph.edge_sign[tree.parent_edge[members]]
        )
        if counters is not None:
            counters.parallel_region("parity.top_down", len(members))
    return s2r


def balance_by_parity(
    graph: SignedGraph,
    tree: SpanningTree,
    counters: Counters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Balance every fundamental cycle via the sign-to-root closed form.

    Returns ``(new_signs, flipped)``; identical to the traversal kernels
    (the tree-path sign product *is* what the walk accumulates).
    """
    s2r = sign_to_root(graph, tree, counters)
    non_tree = tree.non_tree_edge_ids()
    want = (
        s2r[graph.edge_u[non_tree]].astype(np.int16)
        * s2r[graph.edge_v[non_tree]].astype(np.int16)
    ).astype(np.int8)
    new_signs = graph.edge_sign.copy()
    flipped = np.zeros(graph.num_edges, dtype=bool)
    changed = graph.edge_sign[non_tree] != want
    new_signs[non_tree[changed]] = want[changed]
    flipped[non_tree[changed]] = True
    if counters is not None:
        counters.add("cycle.count", len(non_tree))
    return new_signs, flipped

"""Level-synchronous vertex/edge labeling (Alg. 4).

Pre- and post-order traversals are sequential, so the paper replaces
them with two passes over the tree *levels*:

1. **Bottom-up**: every vertex starts with count 1; each level adds its
   counts into the parents (atomics in CUDA, ``np.add.at`` here).
   After the pass, ``count[v]`` is the subtree size of ``v``.
2. **Top-down**: the root takes ID 0; each parent hands its children
   consecutive ID blocks — child ``c`` gets ``id[p] + 1 +`` (sizes of
   its earlier siblings), which is simultaneously the low end of the
   edge range; the high end is ``low + count[c] − 1``.

Every per-level step is a vectorized array operation, mirroring how the
OpenMP/CUDA codes parallelize over the vertices of a level.  Output is
bit-identical to the serial :func:`repro.core.labeling.label_tree`
because both visit children in ascending vertex-id order.
"""

from __future__ import annotations

import numpy as np

from repro.core.labeling import Labeling
from repro.perf.compat import Counters
from repro.perf.registry import get_registry
from repro.trees.tree import SpanningTree
from repro.util.arrays import concat_ranges

__all__ = ["label_tree_parallel"]


def label_tree_parallel(
    tree: SpanningTree, counters: Counters | None = None
) -> Labeling:
    """Alg. 4: bottom-up subtree counts, top-down IDs and ranges.

    ``counters``, when given, records one parallel region per level
    pass and the number of work items in each — the inputs to the
    simulated-machine cost models.
    """
    get_registry().count("label.calls_total", 1)
    n = tree.num_vertices
    order, level_ptr = tree.levels
    num_levels = tree.num_levels

    count = np.ones(n, dtype=np.int64)

    # --- Bottom-up pass: fold counts into parents, deepest level first.
    for lvl in range(num_levels - 1, 0, -1):
        members = order[level_ptr[lvl] : level_ptr[lvl + 1]]
        parents = tree.parent[members]
        # np.add.at is the sequential-consistency analog of the CUDA
        # atomicAdd: multiple children of one parent accumulate safely.
        np.add.at(count, parents, count[members])
        if counters is not None:
            counters.parallel_region("label.bottom_up", len(members))

    # --- Top-down pass: assign IDs and ranges level by level.
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[tree.root] = 0
    child_ptr, child_list = tree.children

    for lvl in range(num_levels - 1):
        members = order[level_ptr[lvl] : level_ptr[lvl + 1]]
        # Gather all children of this level, grouped by parent and
        # (within a parent) in ascending vertex-id order — the same
        # order the serial pre-order uses.
        starts = child_ptr[members]
        counts = child_ptr[members + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        offsets = np.repeat(starts, counts) + concat_ranges(counts)
        kids = child_list[offsets]
        parents = np.repeat(members, counts)

        # Exclusive prefix sum of earlier-sibling sizes within each
        # parent group (vectorized segmented scan): global exclusive
        # scan, then re-zero at each group boundary.
        sizes = count[kids]
        csum = np.cumsum(sizes)
        excl = np.empty_like(csum)
        excl[0] = 0
        excl[1:] = csum[:-1]
        # Group boundaries over the *non-empty* parents only (childless
        # parents contribute no positions).
        run_counts = counts[counts > 0]
        group_first = np.concatenate([[0], np.cumsum(run_counts)[:-1]])
        excl -= np.repeat(excl[group_first], run_counts)

        new_id[kids] = new_id[parents] + 1 + excl
        if counters is not None:
            counters.parallel_region("label.top_down", total)

    subtree_size = count
    range_lo = np.where(tree.parent >= 0, new_id, -1)
    range_hi = np.where(tree.parent >= 0, new_id + subtree_size - 1, -1)
    return Labeling(
        new_id=new_id,
        subtree_size=subtree_size,
        range_lo=range_lo,
        range_hi=range_hi,
    )

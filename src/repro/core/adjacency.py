"""Partitioned adjacency lists (§3.2.2).

For a fixed spanning tree, graphB+ reorders each vertex's adjacency
slice so that

1. the **parent edge** (if any) comes first — it is the most likely
   edge to follow during a cycle walk, since on average it leads to the
   most vertices;
2. the remaining **tree edges** (child edges) follow;
3. **non-tree edges** fill the back of the slice.

Loops over tree edges then scan front-to-back and stop at the first
non-tree edge; loops over non-tree edges scan back-to-front.  The
reorder is a single O(m) vectorized sort here (linear bucketing in the
C++ code); the cycle-walk ablation quantifies the scan savings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import SignedGraph
from repro.trees.tree import SpanningTree

__all__ = ["PartitionedAdjacency", "partition_adjacency"]


@dataclass(frozen=True)
class PartitionedAdjacency:
    """Tree-aware reordering of a graph's CSR adjacency.

    ``indptr`` is shared with the host graph; ``adj_vertex``/``adj_edge``
    are permuted copies.  ``tree_end[v]`` is the position one past the
    last tree edge of vertex ``v``, so

    * tree edges of ``v``:      ``[indptr[v], tree_end[v])`` (parent first),
    * non-tree edges of ``v``:  ``[tree_end[v], indptr[v+1])``.

    ``has_parent_first[v]`` is True when position ``indptr[v]`` holds
    the parent edge (always, except at the root).
    """

    indptr: np.ndarray
    adj_vertex: np.ndarray
    adj_edge: np.ndarray
    tree_end: np.ndarray
    has_parent_first: np.ndarray

    def tree_slice(self, v: int) -> slice:
        """Slice of vertex *v*'s tree edges (parent edge first)."""
        return slice(int(self.indptr[v]), int(self.tree_end[v]))

    def non_tree_slice(self, v: int) -> slice:
        """Slice of vertex *v*'s non-tree edges (back of the row)."""
        return slice(int(self.tree_end[v]), int(self.indptr[v + 1]))


def partition_adjacency(
    graph: SignedGraph, tree: SpanningTree
) -> PartitionedAdjacency:
    """Reorder adjacency as parent edge / child tree edges / non-tree.

    Within each category the original neighbor-sorted order is kept, so
    the result is deterministic.
    """
    n = graph.num_vertices
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    is_tree = tree.in_tree[graph.adj_edge]
    # The parent half-edge of v points at parent[v] *and* carries v's
    # parent edge id (a vertex can also see its parent through a
    # non-tree multi-edge only if multigraphs were allowed — they are
    # not, so the edge-id check is belt and braces).
    is_parent = is_tree & (graph.adj_edge == tree.parent_edge[src])

    category = np.full(len(src), 2, dtype=np.int8)
    category[is_tree] = 1
    category[is_parent] = 0

    # Stable sort by (src, category) keeps neighbor order inside each
    # category.
    order = np.lexsort((np.arange(len(src)), category, src))
    adj_vertex = graph.adj_vertex[order]
    adj_edge = graph.adj_edge[order]

    tree_counts = np.zeros(n, dtype=np.int64)
    np.add.at(tree_counts, src[is_tree], 1)
    tree_end = graph.indptr[:-1] + tree_counts

    has_parent_first = np.zeros(n, dtype=bool)
    has_parent = np.nonzero(tree.parent >= 0)[0]
    has_parent_first[has_parent] = (
        adj_vertex[graph.indptr[has_parent]] == tree.parent[has_parent]
    )
    return PartitionedAdjacency(
        indptr=graph.indptr,
        adj_vertex=adj_vertex,
        adj_edge=adj_edge,
        tree_end=tree_end,
        has_parent_first=has_parent_first,
    )

"""Fundamental-cycle discovery, traversal, and balancing (Alg. 3, step 3).

This is the faithful *serial* walker.  For each non-tree edge
``e = (src, dst)`` it starts at ``src`` and repeatedly follows the tree
edge whose recorded range contains ``dst``'s new ID:

* if ``dst`` is **not** in the subtree of the current vertex, the only
  edge leading to it is the parent edge (whose reachable set is the
  complement of the subtree range) — this is the O(1) check the
  parent-first adjacency layout makes almost free;
* otherwise exactly one child edge's range contains ``dst`` — found by
  scanning the tree-edge prefix of the adjacency slice.

The walk touches only vertices *on the cycle*; the per-cycle cost is
O(cycle length × tree degree), independent of the graph size — the
paper's headline property.  Negative tree edges are counted along the
way and the non-tree edge's sign is set so the cycle ends up positive
(Alg. 3's switch rule expressed as prose in §3: "set the sign of the
non-tree edge such that the cycle has an even number of negative
signs").

The lockstep vectorized implementation lives in
:mod:`repro.core.cycles_vectorized`; both produce identical states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adjacency import PartitionedAdjacency, partition_adjacency
from repro.core.labeling import Labeling
from repro.graph.csr import SignedGraph
from repro.perf.compat import Counters
from repro.trees.tree import SpanningTree

__all__ = ["CycleStats", "process_cycles_serial"]


@dataclass(frozen=True)
class CycleStats:
    """Per-cycle measurements collected during traversal (Table 5).

    Arrays are indexed by non-tree-edge position (the order of
    ``tree.non_tree_edge_ids()``).
    """

    edge_ids: np.ndarray      # undirected edge id of each fundamental cycle
    lengths: np.ndarray       # cycle length in edges (tree path + 1)
    degree_sums: np.ndarray   # sum of graph degrees over the cycle's vertices
    tree_degree_sums: np.ndarray  # sum of tree degrees over the cycle's vertices

    @property
    def avg_length(self) -> float:
        """Average fundamental-cycle length (Table 5 column 1)."""
        return float(self.lengths.mean()) if len(self.lengths) else 0.0

    @property
    def avg_degree_on_cycles(self) -> float:
        """Average graph degree of the vertices on each cycle, averaged
        over cycles (Table 5 column 2).  Cycle vertex count = length."""
        if len(self.lengths) == 0:
            return 0.0
        per_cycle = self.degree_sums / self.lengths
        return float(per_cycle.mean())


def process_cycles_serial(
    graph: SignedGraph,
    tree: SpanningTree,
    labeling: Labeling,
    padj: PartitionedAdjacency | None = None,
    counters: Counters | None = None,
    collect_stats: bool = False,
) -> tuple[np.ndarray, np.ndarray, CycleStats | None]:
    """Balance every fundamental cycle; return the new sign array.

    Parameters
    ----------
    padj:
        Partitioned adjacency (§3.2.2).  Built on demand when omitted.
        Pass ``None`` *and* set ``counters`` to measure the
        unpartitioned scan cost in the adjacency ablation — the walk is
        correct either way; only scan counts differ.
    collect_stats:
        Also record cycle lengths and on-cycle degree sums (Table 5).

    Returns
    -------
    (new_signs, flipped, stats):
        ``new_signs`` is a fresh length-``m`` sign array equal to the
        input except on flipped non-tree edges; ``flipped`` is a bool
        mask over edges; ``stats`` is ``None`` unless requested.
    """
    n = graph.num_vertices
    scan_partitioned = padj is not None
    if padj is None:
        padj = _raw_adjacency_view(graph)

    new_id = labeling.new_id
    sub_size = labeling.subtree_size
    parent = tree.parent
    parent_edge = tree.parent_edge
    in_tree = tree.in_tree
    signs = graph.edge_sign
    degrees = np.diff(graph.indptr)
    tree_deg = tree.tree_degree

    non_tree = tree.non_tree_edge_ids()
    new_signs = signs.copy()
    flipped = np.zeros(graph.num_edges, dtype=bool)

    lengths = np.zeros(len(non_tree), dtype=np.int64) if collect_stats else None
    deg_sums = np.zeros(len(non_tree), dtype=np.int64) if collect_stats else None
    tdeg_sums = np.zeros(len(non_tree), dtype=np.int64) if collect_stats else None

    edges_scanned = 0
    vertices_visited = 0

    indptr = padj.indptr
    adj_vertex = padj.adj_vertex
    adj_edge = padj.adj_edge
    tree_end = padj.tree_end

    for idx, e in enumerate(non_tree):
        src = int(graph.edge_u[e])
        dst = int(graph.edge_v[e])
        dst_id = int(new_id[dst])

        neg = 0
        length = 1  # the non-tree edge itself
        dsum = int(degrees[src]) if collect_stats else 0
        tsum = int(tree_deg[src]) if collect_stats else 0

        v = src
        guard = 0
        while v != dst:
            vertices_visited += 1
            lo = int(new_id[v])
            if not (lo <= dst_id <= lo + int(sub_size[v]) - 1):
                # dst is outside v's subtree: the parent edge (range
                # complement) is the only way.  With the partitioned
                # layout this is the first slot — one scan.
                edges_scanned += 1
                g = int(parent_edge[v])
                nxt = int(parent[v])
            else:
                g = -1
                nxt = -1
                if scan_partitioned:
                    row = range(int(indptr[v]), int(tree_end[v]))
                else:
                    row = range(int(indptr[v]), int(indptr[v + 1]))
                for pos in row:
                    edges_scanned += 1
                    eid = int(adj_edge[pos])
                    if not in_tree[eid]:
                        if scan_partitioned:
                            break  # tree prefix exhausted (cannot happen
                            # before a hit, kept for symmetry)
                        continue
                    w = int(adj_vertex[pos])
                    if w == parent[v]:
                        continue
                    # Child edge v -> w covers [new_id[w], +size).
                    wlo = int(new_id[w])
                    if wlo <= dst_id <= wlo + int(sub_size[w]) - 1:
                        g = eid
                        nxt = w
                        break
                assert g >= 0, "range labels must locate dst"
            if signs[g] < 0:
                neg += 1
            v = nxt
            length += 1
            if collect_stats:
                dsum += int(degrees[v])
                tsum += int(tree_deg[v])
            guard += 1
            if guard > n:
                raise AssertionError("cycle walk failed to terminate")

        # Set e's sign so the cycle has an even number of negatives.
        want = 1 if neg % 2 == 0 else -1
        if int(signs[e]) != want:
            new_signs[e] = want
            flipped[e] = True
        if collect_stats:
            lengths[idx] = length
            deg_sums[idx] = dsum
            tdeg_sums[idx] = tsum

    if counters is not None:
        counters.add("cycle.count", len(non_tree))
        counters.add("cycle.edges_scanned", edges_scanned)
        counters.add("cycle.vertices_visited", vertices_visited)

    stats = None
    if collect_stats:
        stats = CycleStats(
            edge_ids=non_tree,
            lengths=lengths,
            degree_sums=deg_sums,
            tree_degree_sums=tdeg_sums,
        )
    return new_signs, flipped, stats


def _raw_adjacency_view(graph: SignedGraph) -> PartitionedAdjacency:
    """Wrap the unpartitioned adjacency in the partition interface.

    ``tree_end`` is set to the row end, so scans cover the full slice —
    the 'no §3.2.2 optimization' configuration of the ablation.
    """
    return PartitionedAdjacency(
        indptr=graph.indptr,
        adj_vertex=graph.adj_vertex,
        adj_edge=graph.adj_edge,
        tree_end=graph.indptr[1:].copy(),
        has_parent_first=np.zeros(graph.num_vertices, dtype=bool),
    )

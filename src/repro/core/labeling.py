"""Vertex relabeling and tree-edge range labeling (Alg. 3, steps 1–2).

This is the paper's central data-structure idea: after relabeling
vertices by a pre-order traversal of the spanning tree, the set of
vertices reachable through any tree edge (in the parent→child
direction) is a *contiguous* ID range ``[new_id[c], new_id[c] +
subtree_size[c] − 1]``, expressible in two words per edge.  Traversing
the edge child→parent reaches exactly the complement of that range.

This module is the *serial* reference: an explicit-stack pre-order
traversal assigning IDs, with subtree sizes accumulated on the way back
up (the post-order part).  The level-synchronous parallel formulation
(Alg. 4) lives in :mod:`repro.core.labeling_parallel` and must produce
bit-identical output (tested).

Children are visited in ascending vertex-id order (the deterministic
order exposed by :attr:`SpanningTree.children`), so both
implementations agree on the resulting permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.trees.tree import SpanningTree

__all__ = ["Labeling", "label_tree"]


@dataclass(frozen=True)
class Labeling:
    """The output of graphB+ steps 1–2 for one spanning tree.

    Attributes
    ----------
    new_id:
        Pre-order ID of each vertex (root gets 0).
    subtree_size:
        Number of vertices in the subtree rooted at each vertex
        (the "count" of Alg. 4; root's count is n).
    range_lo / range_hi:
        Inclusive new-ID range reachable through the tree edge
        *parent(v) → v*, indexed by the child ``v``.  Undefined (−1) at
        the root, which has no parent edge.  ``range_lo[v] ==
        new_id[v]`` and ``range_hi[v] == new_id[v] + subtree_size[v] −
        1`` — stored explicitly because they *are* the edge labels of
        Fig. 6(e).
    """

    new_id: np.ndarray
    subtree_size: np.ndarray
    range_lo: np.ndarray
    range_hi: np.ndarray

    @cached_property
    def old_of_new(self) -> np.ndarray:
        """Inverse permutation: original vertex id of each new ID."""
        inv = np.empty_like(self.new_id)
        inv[self.new_id] = np.arange(len(self.new_id))
        return inv

    def edge_contains(self, child: int, target_new_id: int) -> bool:
        """Whether the tree edge *parent → child*, traversed downward,
        leads to the vertex with the given new ID."""
        return bool(
            self.range_lo[child] <= target_new_id <= self.range_hi[child]
        )

    def in_subtree(self, v: int, target_new_id: int) -> bool:
        """Whether the target new ID lies in the subtree rooted at *v*
        (this is the O(1) "which way to walk" test of the cycle
        traversal)."""
        lo = self.new_id[v]
        return bool(lo <= target_new_id <= lo + self.subtree_size[v] - 1)


def label_tree(tree: SpanningTree) -> Labeling:
    """Serial pre/post-order labeling of *tree* (reference implementation).

    Work is O(n): each vertex is pushed and popped exactly once.
    """
    n = tree.num_vertices
    child_ptr, child_list = tree.children

    new_id = np.full(n, -1, dtype=np.int64)
    subtree_size = np.ones(n, dtype=np.int64)

    # Explicit-stack pre-order.  Children are pushed in reverse so the
    # smallest-id child is visited first; a sentinel marks the
    # post-order return, at which point the subtree size is folded
    # into the parent (this is the post-order traversal of Alg. 3's
    # edge-labeling step).
    counter = 0
    stack: list[int] = [tree.root]
    post: list[int] = []
    while stack:
        v = stack.pop()
        if v < 0:
            # Post-order visit of vertex ~v: fold size into parent.
            u = ~v
            p = tree.parent[u]
            if p >= 0:
                subtree_size[p] += subtree_size[u]
            continue
        new_id[v] = counter
        counter += 1
        stack.append(~v)
        kids = child_list[child_ptr[v] : child_ptr[v + 1]]
        for c in kids[::-1]:
            stack.append(int(c))

    range_lo = np.where(tree.parent >= 0, new_id, -1)
    range_hi = np.where(
        tree.parent >= 0, new_id + subtree_size - 1, -1
    )
    return Labeling(
        new_id=new_id,
        subtree_size=subtree_size,
        range_lo=range_lo,
        range_hi=range_hi,
    )

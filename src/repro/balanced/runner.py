"""Multi-restart orchestration for the balanced-subgraph workloads.

:func:`run_balanced` is the entry point both CLI subcommands and the
bench script use.  It accepts the graph in any of the engine's
spellings — an in-memory :class:`~repro.graph.csr.SignedGraph`, an open
:class:`~repro.graph.store.GraphStore`, or a path to a packed ``.rsgs``
file — and runs the seed portfolio either single-process or across a
process pool.

The pool path rides the campaign workers' graph-slot machinery
(:mod:`repro.parallel.pool`): store-backed runs ship only a path plus
fingerprint to each worker (zero-copy mmap, one page-cache copy
machine-wide), in-memory runs ship the graph once via the initializer,
and every task re-checks the fingerprint.  A worker failure degrades
that restart to in-process execution — same ladder philosophy as the
campaign supervisor, scaled to the restart granularity — so a flaky
pool can slow the search but not change its answer.

Results are bit-deterministic across all execution modes: each restart
is a pure function of ``(graph bytes, seed, label)`` and the winner is
chosen by scanning restarts in portfolio order, so single-process,
pool, in-memory, and ``.rsgs`` runs all return the same subgraph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.balanced.extract import (
    DEFAULT_PEEL_FRAC,
    BalancedSubgraph,
    search_from_sides,
)
from repro.errors import BalancedSearchError
from repro.graph.csr import SignedGraph
from repro.perf.registry import get_registry
from repro.perf.tracectx import (
    TraceContext,
    current_trace,
    pop_trace,
    push_trace,
)
from repro.perf.tracing import (
    TraceCollector,
    absorb_shard,
    collector_shard,
    get_trace_collector,
    set_trace_collector,
    span,
)

__all__ = ["BalancedReport", "run_balanced"]

GraphSource = Union[SignedGraph, "GraphStore", str, Path]  # noqa: F821


@dataclass(frozen=True)
class BalancedReport:
    """Everything one workload invocation produced.

    ``best`` is the winning subgraph; ``per_seed`` keeps the audit
    trail of every restart (label, size, edges, violations) so a
    regression in one seed family is visible even when another family
    still wins.
    """

    workload: str
    tolerance: int
    restarts: int
    seed: int
    workers: int
    degraded_restarts: int
    num_vertices: int
    num_edges: int
    best: BalancedSubgraph
    per_seed: list
    wall_seconds: float

    def to_json(self) -> dict:
        """JSON-ready document; ``result`` is the machine-readable
        contract (identical for in-memory and store-backed runs)."""
        return {
            "workload": self.workload,
            "graph": {
                "vertices": self.num_vertices,
                "edges": self.num_edges,
            },
            "tolerance": self.tolerance,
            "restarts": self.restarts,
            "seed": self.seed,
            "workers": self.workers,
            "degraded_restarts": self.degraded_restarts,
            "result": {
                "num_vertices": self.best.num_vertices,
                "num_edges": self.best.num_edges,
                "unsatisfied_edges": self.best.unsatisfied_edges,
                "tolerance": self.best.tolerance,
                "seed_label": self.best.seed_label,
                "vertices": [int(v) for v in self.best.vertices],
                "sides": [int(s) for s in self.best.sides],
            },
            "seeds": list(self.per_seed),
            "wall_seconds": round(self.wall_seconds, 4),
        }


def _resolve_source(source: GraphSource):
    """Normalize *source* to ``(graph, store_path, fingerprint)``."""
    from repro.graph.store import GraphStore

    if isinstance(source, SignedGraph):
        return source, None, None
    if isinstance(source, GraphStore):
        return source.graph(), str(source.path), source.fingerprint
    store = GraphStore.open(Path(source))
    return store.graph(), str(store.path), store.fingerprint


def _pool_search(
    label: str,
    sides: np.ndarray,
    tolerance: int,
    peel_frac: float,
    polish: bool,
    fingerprint: str | None,
    trace: dict | None = None,
) -> tuple[BalancedSubgraph, dict | None]:
    """Picklable pool entry: one restart against the worker-slot graph.

    Returns ``(subgraph, span_shard)`` — :class:`BalancedSubgraph` is a
    frozen dataclass, so unlike the campaign clouds the worker's spans
    cannot ride it as a dynamic attribute; they travel as the second
    element instead (``None`` when the parent was not tracing).
    """
    from repro.parallel.pool import _worker_graph

    graph = _worker_graph(fingerprint)
    ctx = TraceContext.from_dict(trace) if trace is not None else None
    collector: TraceCollector | None = None
    if ctx is not None and get_trace_collector() is None:
        collector = TraceCollector(max_events=256)
        set_trace_collector(collector)
    if ctx is not None:
        push_trace(ctx)
    try:
        with span("restart"):
            result = search_from_sides(
                graph,
                sides,
                tolerance=tolerance,
                peel_frac=peel_frac,
                polish=polish,
                seed_label=label,
            )
    finally:
        if ctx is not None:
            pop_trace()
        if collector is not None:
            set_trace_collector(None)
    shard = collector_shard(collector) if collector is not None else None
    return result, shard


def _run_pool(
    graph: SignedGraph,
    seeds: list,
    *,
    tolerance: int,
    peel_frac: float,
    polish: bool,
    workers: int,
    store_path: str | None,
    fingerprint: str | None,
) -> tuple[list[BalancedSubgraph], int]:
    """Fan the restarts over a process pool; returns
    ``(results in portfolio order, degraded-restart count)``."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.parallel.pool import (
        _init_worker,
        _init_worker_store,
        _reset_worker_slot,
    )

    if store_path is not None:
        initializer, initargs = _init_worker_store, (
            store_path,
            fingerprint,
        )
    else:
        from repro.graph.store import graph_fingerprint

        fingerprint = graph_fingerprint(graph)
        initializer, initargs = _init_worker, (graph, fingerprint)

    degraded = 0
    results: list[BalancedSubgraph] = []
    # Restart spans chain under the ambient context (the
    # balanced_extract span's) whenever the parent collects a trace.
    ctx = current_trace()
    trace = ctx.to_dict() if ctx is not None else None
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [
            pool.submit(
                _pool_search,
                label,
                assignment,
                tolerance,
                peel_frac,
                polish,
                fingerprint,
                trace,
            )
            for label, assignment in seeds
        ]
        for (label, assignment), future in zip(seeds, futures):
            try:
                result, shard = future.result()
                if shard:
                    collector = get_trace_collector()
                    if collector is not None:
                        absorb_shard(collector, shard)
                results.append(result)
            except Exception:
                # Restart-granular degradation: recompute in-process so
                # a sick pool changes wall time, never the answer.
                degraded += 1
                results.append(
                    search_from_sides(
                        graph,
                        assignment,
                        tolerance=tolerance,
                        peel_frac=peel_frac,
                        polish=polish,
                        seed_label=label,
                    )
                )
    _reset_worker_slot()
    return results, degraded


def run_balanced(
    source: GraphSource,
    *,
    workload: str = "extract",
    tolerance: int = 0,
    restarts: int = 4,
    seed: int = 0,
    peel_frac: float = DEFAULT_PEEL_FRAC,
    polish: bool = True,
    workers: int = 0,
) -> BalancedReport:
    """Run one balanced-subgraph workload end to end.

    ``workload`` is ``"extract"`` (strict balance; *tolerance* must be
    0) or ``"tolerance"``.  ``workers=0`` runs single-process;
    ``workers>0`` distributes restarts over a pool as described in the
    module docstring.  Metrics spans nest as ``balanced_extract >
    eigen / rounding / polish`` (pool workers time their own spans in
    their private registries; the parent records the portfolio and
    winner either way).
    """
    if workload not in ("extract", "tolerance"):
        raise BalancedSearchError(
            f"unknown workload {workload!r}; expected 'extract' or "
            "'tolerance'"
        )
    if workload == "extract" and tolerance != 0:
        raise BalancedSearchError(
            "workload 'extract' is exact (tolerance 0); use workload "
            f"'tolerance' for tolerance={tolerance}"
        )
    if workers < 0:
        raise BalancedSearchError(f"workers must be >= 0, got {workers}")

    from repro.balanced.seeds import seed_assignments

    graph, store_path, fingerprint = _resolve_source(source)
    start = time.perf_counter()
    degraded = 0
    with span("balanced_extract"):
        with span("eigen"):
            seeds = seed_assignments(graph, restarts=restarts, seed=seed)
        if workers > 0 and len(seeds) > 1:
            results, degraded = _run_pool(
                graph,
                seeds,
                tolerance=tolerance,
                peel_frac=peel_frac,
                polish=polish,
                workers=workers,
                store_path=store_path,
                fingerprint=fingerprint,
            )
        else:
            results = [
                search_from_sides(
                    graph,
                    assignment,
                    tolerance=tolerance,
                    peel_frac=peel_frac,
                    polish=polish,
                    seed_label=label,
                )
                for label, assignment in seeds
            ]
    wall = time.perf_counter() - start

    best = results[0]
    for candidate in results[1:]:
        if candidate.score() > best.score():
            best = candidate
    registry = get_registry()
    registry.count("balanced.runs_total", 1)
    registry.count("balanced.restarts_total", len(results))
    registry.gauge("balanced.best_size", best.num_vertices)

    return BalancedReport(
        workload=workload,
        tolerance=tolerance,
        restarts=restarts,
        seed=seed,
        workers=workers,
        degraded_restarts=degraded,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        best=best,
        per_seed=[
            {
                "label": r.seed_label,
                "num_vertices": r.num_vertices,
                "num_edges": r.num_edges,
                "unsatisfied_edges": r.unsatisfied_edges,
            }
            for r in results
        ],
        wall_seconds=wall,
    )

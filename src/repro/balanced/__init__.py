"""Balanced-subgraph discovery workloads (ROADMAP item 4).

A second workload family on top of the frustration-cloud engine: rather
than balancing the *whole* graph by flipping edge signs, these
algorithms find a large **vertex subset** whose induced subgraph is
already balanced (or nearly so), deleting vertices instead of editing
signs.

* :mod:`repro.balanced.extract` — large balanced subgraph extraction in
  the spirit of Ordozgoiti, Matakos & Gionis (arXiv:2002.00775):
  eigenvector rounding of the signed Laplacian seeds a ±1 side
  assignment, a vectorized greedy peel removes the vertices that
  violate it most, and a local-search polish re-admits every vertex
  that fits back.
* :mod:`repro.balanced.tolerance` — the tolerance-based scalable
  variant of Chen, Peng & Zhang (arXiv:2402.05006): each surviving
  vertex is allowed at most ``t`` unbalanced incident edges, trading
  strict balance for much larger subgraphs.
* :mod:`repro.balanced.runner` — multi-restart orchestration (spectral
  seed plus spanning-tree switchings from the parity kernels),
  single-process or across the worker pool, for in-memory graphs and
  packed ``.rsgs`` stores alike.

CLI: ``repro balanced extract`` / ``repro balanced tolerance``; bench:
``scripts/bench_balanced.py`` gated in CI against
``benchmarks/baselines/bench_balanced_baseline.json``.
"""

from repro.balanced.extract import (
    BalancedSubgraph,
    extract_balanced,
    peel_to_tolerance,
    polish_subgraph,
    satisfied_edges,
    search_from_sides,
)
from repro.balanced.runner import BalancedReport, run_balanced
from repro.balanced.seeds import seed_assignments, spectral_sides, tree_sides
from repro.balanced.tolerance import extract_tolerant, tolerance_violations

__all__ = [
    "BalancedReport",
    "BalancedSubgraph",
    "extract_balanced",
    "extract_tolerant",
    "peel_to_tolerance",
    "polish_subgraph",
    "run_balanced",
    "satisfied_edges",
    "search_from_sides",
    "seed_assignments",
    "spectral_sides",
    "tolerance_violations",
    "tree_sides",
]

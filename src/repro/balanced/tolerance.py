"""Tolerance-based balanced subgraphs (arXiv:2402.05006 style).

Chen, Peng & Zhang relax strict balance: a subgraph is *balanced with
tolerance t* when there is a two-sided vertex partition under which
every vertex has at most ``t`` unbalanced incident edges inside the
subgraph.  ``t = 0`` recovers the exact workload of
:mod:`repro.balanced.extract`; small positive ``t`` typically keeps a
much larger fraction of the graph.

The search machinery is shared — the peel's stopping rule and the
polish's admission rule are already tolerance-aware — so this module
is the thin workload surface plus the **independent auditor**
(:func:`tolerance_violations`) that recomputes per-vertex violation
counts from nothing but the host graph and the returned
``(vertices, sides)``, the way ``core/verify.py`` audits balanced
states.
"""

from __future__ import annotations

import numpy as np

from repro.balanced.extract import BalancedSubgraph
from repro.errors import BalancedSearchError
from repro.graph.csr import SignedGraph

__all__ = ["extract_tolerant", "tolerance_violations"]


def extract_tolerant(
    graph: SignedGraph,
    tolerance: int,
    restarts: int = 4,
    seed: int = 0,
    peel_frac: float | None = None,
    polish: bool = True,
) -> BalancedSubgraph:
    """Best tolerance-*t* subgraph across the standard seed portfolio.

    Same portfolio and determinism contract as
    :func:`repro.balanced.extract.extract_balanced`; only the per-vertex
    violation budget differs.
    """
    from repro.balanced.extract import DEFAULT_PEEL_FRAC, extract_balanced

    if tolerance < 0:
        raise BalancedSearchError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    return extract_balanced(
        graph,
        tolerance=tolerance,
        restarts=restarts,
        seed=seed,
        peel_frac=DEFAULT_PEEL_FRAC if peel_frac is None else peel_frac,
        polish=polish,
    )


def tolerance_violations(
    graph: SignedGraph, vertices: np.ndarray, sides: np.ndarray
) -> np.ndarray:
    """Independent audit: per-kept-vertex unbalanced-edge counts.

    Recomputed from scratch against the *host* graph's edge arrays —
    no state from the search is trusted.  ``result[i]`` is the number
    of induced edges incident to ``vertices[i]`` whose sign contradicts
    the product of its endpoints' sides; a tolerance-*t* subgraph must
    satisfy ``result.max() <= t`` (and an exactly balanced one,
    ``result.max() == 0``, which is equivalent to
    :func:`repro.core.verify.check_balance` passing on the induced
    subgraph with ``sides`` as the switching).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    sides = np.asarray(sides, dtype=np.int8)
    if vertices.shape != sides.shape:
        raise BalancedSearchError(
            "vertices and sides must have matching shapes"
        )
    if len(np.unique(vertices)) != len(vertices):
        raise BalancedSearchError("duplicate vertex ids in subgraph")
    if len(vertices) and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise BalancedSearchError("vertex ids out of range")
    if len(sides) and not np.all(np.abs(sides) == 1):
        raise BalancedSearchError("sides must be +1 or -1")

    side_full = np.zeros(graph.num_vertices, dtype=np.int8)
    side_full[vertices] = sides
    kept = np.zeros(graph.num_vertices, dtype=bool)
    kept[vertices] = True
    induced = kept[graph.edge_u] & kept[graph.edge_v]
    unsat = induced & (
        graph.edge_sign.astype(np.int16)
        * side_full[graph.edge_u].astype(np.int16)
        * side_full[graph.edge_v].astype(np.int16)
        < 0
    )
    counts = np.bincount(
        graph.edge_u[unsat], minlength=graph.num_vertices
    )
    counts += np.bincount(
        graph.edge_v[unsat], minlength=graph.num_vertices
    )
    return counts[vertices]

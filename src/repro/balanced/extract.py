"""Large balanced subgraph extraction (arXiv:2002.00775 style).

A signed graph is balanced iff its vertices split into two sides with
every intra-side edge positive and every inter-side edge negative
(Harary).  Fixing a candidate ±1 side assignment ``sides`` therefore
turns "find a large balanced subgraph" into a *vertex deletion*
problem: an edge ``(u, v, s)`` is **satisfied** when
``s * sides[u] * sides[v] == +1``, and any vertex subset whose induced
edges are all satisfied is balanced — ``sides`` restricted to the
subset is the switching certificate
(:func:`repro.core.verify.check_balance` agrees by construction).

The pipeline mirrors Ordozgoiti et al.'s eigenvector-guided approach:

1. **eigen** — seed assignments come from the bottom eigenvector of
   the signed normalized Laplacian (:mod:`repro.analysis.spectral`)
   and from spanning-tree switchings (the frustration-cloud parity
   kernels, :mod:`repro.balanced.seeds`).
2. **rounding** (:func:`peel_to_tolerance`) — greedily delete the
   vertices with the most unsatisfied incident edges, in vectorized
   rounds over the CSR edge arrays, until every survivor has at most
   ``tolerance`` unsatisfied incident edges (0 = exactly balanced).
3. **polish** (:func:`polish_subgraph`) — local search that re-admits
   any deleted vertex which fits the current subgraph on one of its
   two sides without creating a single new violation, until a fixed
   point.

``tolerance > 0`` yields the Chen-Peng-Zhang relaxation (see
:mod:`repro.balanced.tolerance`); the machinery is shared, with the
exact workload being the ``tolerance == 0`` special case.

All steps are deterministic: ties break on vertex id, so the same
graph bytes (in-memory or ``.rsgs`` memmap) produce the same subgraph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import BalancedSearchError
from repro.graph.csr import SignedGraph
from repro.perf.tracing import span

__all__ = [
    "BalancedSubgraph",
    "extract_balanced",
    "peel_to_tolerance",
    "polish_subgraph",
    "satisfied_edges",
    "search_from_sides",
]

#: Fraction of the over-tolerance vertices removed per peel round.
DEFAULT_PEEL_FRAC = 0.25


@dataclass(frozen=True)
class BalancedSubgraph:
    """One discovered subgraph: host vertex ids, their sides, and audit
    counts.

    ``sides[i]`` is the ±1 side of ``vertices[i]`` in the Harary
    bipartition witnessing (near-)balance; ``unsatisfied_edges`` counts
    induced edges that violate it (0 when ``tolerance == 0``).
    """

    vertices: np.ndarray
    sides: np.ndarray
    num_edges: int
    unsatisfied_edges: int
    tolerance: int
    seed_label: str

    @property
    def num_vertices(self) -> int:
        """Size of the subgraph (the objective being maximized)."""
        return len(self.vertices)

    @cached_property
    def side_of(self) -> dict:
        """``{host vertex id: ±1 side}`` for membership queries."""
        return {
            int(v): int(s) for v, s in zip(self.vertices, self.sides)
        }

    def score(self) -> tuple:
        """Lexicographic objective: more vertices, then more satisfied
        induced edges."""
        return (
            self.num_vertices,
            self.num_edges - self.unsatisfied_edges,
        )


def satisfied_edges(graph: SignedGraph, sides: np.ndarray) -> np.ndarray:
    """Boolean mask over edges: satisfied under the ±1 *sides*.

    ``sides`` must cover every vertex; an edge is satisfied when its
    sign equals the product of its endpoints' sides.
    """
    sides = np.asarray(sides, dtype=np.int8)
    if sides.shape != (graph.num_vertices,):
        raise BalancedSearchError(
            f"sides has shape {sides.shape}, expected "
            f"({graph.num_vertices},)"
        )
    if graph.num_vertices and not np.all(np.abs(sides) == 1):
        raise BalancedSearchError("sides must be +1 or -1")
    prod = (
        graph.edge_sign.astype(np.int16)
        * sides[graph.edge_u].astype(np.int16)
        * sides[graph.edge_v].astype(np.int16)
    )
    return prod > 0


def _bad_degrees(
    graph: SignedGraph, sat: np.ndarray, alive: np.ndarray
) -> np.ndarray:
    """Per-vertex count of live unsatisfied incident edges (0 for dead
    vertices)."""
    live_bad = alive[graph.edge_u] & alive[graph.edge_v] & ~sat
    bad = np.bincount(
        graph.edge_u[live_bad], minlength=graph.num_vertices
    )
    bad += np.bincount(
        graph.edge_v[live_bad], minlength=graph.num_vertices
    )
    return bad


def peel_to_tolerance(
    graph: SignedGraph,
    sat: np.ndarray,
    tolerance: int = 0,
    peel_frac: float = DEFAULT_PEEL_FRAC,
    alive: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy vertex peel: returns the survivor mask.

    Each round recomputes live bad-degrees with two ``bincount`` passes
    over the edge arrays (O(m)) and deletes the worst
    ``ceil(peel_frac * |over-tolerance|)`` vertices — highest bad
    degree first, ties broken toward the lowest vertex id — until every
    survivor has at most *tolerance* unsatisfied live incident edges.
    ``peel_frac`` trades quality (small batches re-rank often) against
    rounds (large batches peel faster); 1 vertex per round is the
    classic greedy.
    """
    if tolerance < 0:
        raise BalancedSearchError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    if not 0.0 < peel_frac <= 1.0:
        raise BalancedSearchError(
            f"peel_frac must be in (0, 1], got {peel_frac}"
        )
    n = graph.num_vertices
    alive = (
        np.ones(n, dtype=bool) if alive is None else alive.copy()
    )
    while True:
        bad = _bad_degrees(graph, sat, alive)
        over = np.nonzero(alive & (bad > tolerance))[0]
        if len(over) == 0:
            return alive
        k = max(1, math.ceil(peel_frac * len(over)))
        # Stable sort on descending bad degree keeps ties in ascending
        # vertex-id order (``over`` is sorted), so removal is
        # deterministic.
        order = np.argsort(-bad[over], kind="stable")
        alive[over[order[:k]]] = False


def polish_subgraph(
    graph: SignedGraph,
    sides: np.ndarray,
    sat: np.ndarray,
    alive: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local-search re-admission of deleted vertices.

    A deleted vertex re-enters when one of its two possible sides
    satisfies *every* edge it has into the current subgraph (so no
    member's violation count grows, and the invariant maintained by the
    peel is preserved for any tolerance).  Candidate discovery is
    vectorized over the edge arrays; accepted candidates are admitted
    in deterministic order (most edges into the subgraph first, then
    lowest id) with an exact per-candidate recheck so that edges
    *between* newly admitted vertices can never introduce a violation.
    Rounds repeat until no vertex is admissible.

    Returns ``(alive, sides, sat)`` with ``sides`` updated for admitted
    vertices and ``sat`` recomputed to match.
    """
    sides = np.asarray(sides, dtype=np.int8).copy()
    alive = alive.copy()
    eu, ev, sign = graph.edge_u, graph.edge_v, graph.edge_sign
    n = graph.num_vertices
    while True:
        # Edges with exactly one live endpoint, viewed from the dead
        # endpoint ``w``: satisfied with sides[w] = +1 iff
        # sign * sides[live endpoint] == +1.
        u_live = alive[eu] & ~alive[ev]
        v_live = alive[ev] & ~alive[eu]
        w = np.concatenate([ev[u_live], eu[v_live]])
        anchor = np.concatenate([eu[u_live], ev[v_live]])
        s = np.concatenate([sign[u_live], sign[v_live]])
        plus_ok = s * sides[anchor] > 0
        deg_in = np.bincount(w, minlength=n)
        plus = np.bincount(w[plus_ok], minlength=n)
        bad_plus = deg_in - plus  # violations if admitted with side +1
        bad_minus = plus          # ... with side -1
        # Vertices with no live edges (their whole neighborhood was
        # peeled) are trivially admissible too; the recheck below keeps
        # edges among them honest once some are re-admitted.
        fits = ~alive & ((bad_plus == 0) | (bad_minus == 0))
        cand = np.nonzero(fits)[0]
        if len(cand) == 0:
            break
        # Largest attachment first: those vertices constrain later
        # admissions the most, and the ordering is what makes parallel
        # and sequential runs agree.
        cand = cand[np.argsort(-deg_in[cand], kind="stable")]
        admitted = 0
        for v in cand:
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            nbrs = graph.adj_vertex[lo:hi]
            eids = graph.adj_edge[lo:hi]
            live = alive[nbrs]
            prod = sign[eids[live]] * sides[nbrs[live]]
            # Recheck against the *current* subgraph (it grew during
            # this round): admit on whichever side violates nothing.
            if not np.any(prod < 0):
                side = 1
            elif not np.any(prod > 0):
                side = -1
            else:
                continue
            alive[v] = True
            sides[v] = side
            admitted += 1
        if admitted == 0:
            break
    return alive, sides, satisfied_edges(graph, sides)


def _result_from_mask(
    graph: SignedGraph,
    sides: np.ndarray,
    sat: np.ndarray,
    alive: np.ndarray,
    tolerance: int,
    seed_label: str,
) -> BalancedSubgraph:
    live_edge = alive[graph.edge_u] & alive[graph.edge_v]
    vertices = np.nonzero(alive)[0].astype(np.int64)
    return BalancedSubgraph(
        vertices=vertices,
        sides=sides[vertices].astype(np.int8),
        num_edges=int(np.count_nonzero(live_edge)),
        unsatisfied_edges=int(np.count_nonzero(live_edge & ~sat)),
        tolerance=tolerance,
        seed_label=seed_label,
    )


def search_from_sides(
    graph: SignedGraph,
    sides: np.ndarray,
    tolerance: int = 0,
    peel_frac: float = DEFAULT_PEEL_FRAC,
    polish: bool = True,
    seed_label: str = "sides",
) -> BalancedSubgraph:
    """Run one full peel + polish search from the assignment *sides*.

    This is the unit of work a restart performs; the spans nest as
    ``balanced_extract > rounding`` and ``balanced_extract > polish``
    when called under the runner's outer span.
    """
    sides = np.asarray(sides, dtype=np.int8)
    with span("rounding"):
        sat = satisfied_edges(graph, sides)
        alive = peel_to_tolerance(
            graph, sat, tolerance=tolerance, peel_frac=peel_frac
        )
    if polish:
        with span("polish"):
            alive, sides, sat = polish_subgraph(graph, sides, sat, alive)
    return _result_from_mask(
        graph, sides, sat, alive, tolerance, seed_label
    )


def extract_balanced(
    graph: SignedGraph,
    tolerance: int = 0,
    restarts: int = 4,
    seed: int = 0,
    peel_frac: float = DEFAULT_PEEL_FRAC,
    polish: bool = True,
) -> BalancedSubgraph:
    """Best subgraph across the standard seed portfolio.

    Convenience single-process entry point; the pool-capable variant
    with reporting lives in :func:`repro.balanced.runner.run_balanced`.
    Seeds are the signed-spectral rounding plus *restarts* spanning-tree
    switchings (see :mod:`repro.balanced.seeds`); the winner is the
    lexicographically best :meth:`BalancedSubgraph.score`, ties going
    to the earliest seed.
    """
    from repro.balanced.seeds import seed_assignments

    with span("balanced_extract"):
        with span("eigen"):
            seeds = seed_assignments(graph, restarts=restarts, seed=seed)
        best: BalancedSubgraph | None = None
        for label, assignment in seeds:
            result = search_from_sides(
                graph,
                assignment,
                tolerance=tolerance,
                peel_frac=peel_frac,
                polish=polish,
                seed_label=label,
            )
            if best is None or result.score() > best.score():
                best = result
    assert best is not None  # seed_assignments never returns empty
    return best

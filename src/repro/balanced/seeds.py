"""Seed side-assignments for the balanced-subgraph search.

Two families, both reusing machinery the frustration-cloud pipeline
already owns:

* :func:`spectral_sides` — the signed-Laplacian bottom eigenvector
  (:func:`repro.analysis.spectral.spectral_embedding` with
  ``signed=True``) rounded entrywise to ±1.  Small signed-Laplacian
  eigenvalues certify near-balanced splits, so its sign pattern is the
  natural analog of the eigenvector rounding in arXiv:2002.00775.
* :func:`tree_sides` — sign-to-root switchings of random spanning
  trees (:func:`repro.core.parity_batch.sign_to_root_batch` over
  :func:`repro.trees.batched.sample_bfs_batch`).  Each row satisfies
  every tree edge by construction, giving diverse deterministic
  restarts with the exact per-index reproducibility the cloud engine
  guarantees.

:func:`seed_assignments` composes the portfolio, degrading gracefully
on inputs where a family is unavailable (tiny graphs for the spectral
seed, disconnected graphs for the tree seeds) and always returning at
least the trivial all-positive assignment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedGraphError, ReproError
from repro.graph.csr import SignedGraph

__all__ = ["seed_assignments", "spectral_sides", "tree_sides"]

#: Below this many vertices the Lanczos eigensolver is pointless (and
#: fragile); the peel explores such graphs exhaustively anyway.
_MIN_SPECTRAL_N = 4


def spectral_sides(graph: SignedGraph, seed: int = 0) -> np.ndarray:
    """±1 rounding of the signed-Laplacian bottom eigenvector.

    Entries exactly at zero round to +1 so the output is a valid side
    assignment for every vertex.
    """
    from repro.analysis.spectral import spectral_embedding

    vec = spectral_embedding(graph, dim=1, signed=True, seed=seed)[:, 0]
    return np.where(vec < 0, -1, 1).astype(np.int8)


def tree_sides(
    graph: SignedGraph, indices, seed: int = 0
) -> np.ndarray:
    """``(len(indices), n)`` ±1 switchings, one per spanning tree.

    Row ``i`` is the sign-to-root vector of BFS tree ``indices[i]``
    under the campaign seeding discipline, so restart ``i`` is a pure
    function of ``(seed, indices[i])`` — independent of how many other
    restarts run, or where.
    """
    from repro.core.parity_batch import sign_to_root_batch
    from repro.trees.batched import sample_bfs_batch

    batch = sample_bfs_batch(graph, seed, list(indices))
    return sign_to_root_batch(graph, batch)


def seed_assignments(
    graph: SignedGraph, restarts: int = 4, seed: int = 0
) -> list[tuple[str, np.ndarray]]:
    """The labeled seed portfolio: spectral first, then tree restarts.

    *restarts* counts the spanning-tree seeds; the spectral seed rides
    along whenever the graph is large enough for the eigensolver.  The
    list is never empty — an all-positive fallback covers degenerate
    inputs — and its order is the deterministic tie-break order of the
    search.
    """
    if restarts < 0:
        raise ReproError(f"restarts must be >= 0, got {restarts}")
    n = graph.num_vertices
    seeds: list[tuple[str, np.ndarray]] = []
    if n >= _MIN_SPECTRAL_N:
        seeds.append(("spectral", spectral_sides(graph, seed=seed)))
    if restarts > 0 and n > 0:
        try:
            rows = tree_sides(graph, range(restarts), seed=seed)
        except DisconnectedGraphError:
            # Tree seeds need one spanning tree; on disconnected input
            # the spectral/fallback seeds still explore every component.
            rows = None
        if rows is not None:
            seeds.extend(
                (f"tree:{i}", rows[i]) for i in range(restarts)
            )
    if not seeds:
        seeds.append(("ones", np.ones(n, dtype=np.int8)))
    return seeds

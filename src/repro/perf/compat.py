"""Legacy phase-timer and op-counter types (pre-PR-4 observability).

These classes predate the :mod:`repro.perf.registry` /
:mod:`repro.perf.tracing` stack and survive for two reasons: the
simulated-machine cost models replay :class:`Counters` region logs, and
a handful of callers still pass an explicit :class:`PhaseTimer`.  New
code should record into the metrics registry via spans; the historical
import paths :mod:`repro.perf.timers` and :mod:`repro.perf.counters`
re-export these names with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["PhaseTimer", "Counters", "RegionStat"]


@dataclass
class PhaseTimer:
    """Accumulating named-phase timer.

    Use as ``with timer.phase("cycles"): ...``.  Phases may repeat;
    times accumulate.  Nesting different phases is allowed and each
    accumulates its own wall time independently (the outer phase
    includes the inner — match the paper by timing disjoint phases).
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one occurrence of the named phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record externally measured (or modeled) time for a phase."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + count

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total time per phase (sums to 1 when nonempty)."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.seconds}
        return {name: t / total for name, t in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulated phases into this one."""
        for name, t in other.seconds.items():
            self.add(name, t, other.counts.get(name, 1))

    def render(self, title: str = "phase breakdown") -> str:
        """Multi-line text rendering, longest phase first."""
        lines = [title]
        frac = self.breakdown()
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            lines.append(
                f"  {name:<24s} {self.seconds[name]:>10.4f}s  {frac[name]:>6.1%}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class RegionStat:
    """Aggregate over all parallel regions sharing a name."""

    launches: int
    total_items: int

    @property
    def avg_items(self) -> float:
        return self.total_items / self.launches if self.launches else 0.0


@dataclass
class Counters:
    """Named scalar counters plus a log of parallel-region launches.

    ``ops`` holds flat counts ("cycle.edges_scanned", ...).  ``regions``
    records each parallel region (kernel launch / OpenMP region) with
    its work-item count, in launch order — the Fig. 10 scaling model
    replays this log under different thread counts.
    """

    ops: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    regions: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment the named scalar counter."""
        self.ops[name] += int(amount)

    def parallel_region(self, name: str, items: int) -> None:
        """Record one parallel-region launch with *items* work items."""
        self.regions.append((name, int(items)))

    def get(self, name: str) -> int:
        """Current value of a scalar counter (0 if never touched)."""
        return int(self.ops.get(name, 0))

    def region_stats(self) -> Dict[str, RegionStat]:
        """Aggregate the region log by name."""
        launches: Dict[str, int] = defaultdict(int)
        items: Dict[str, int] = defaultdict(int)
        for name, k in self.regions:
            launches[name] += 1
            items[name] += k
        return {
            name: RegionStat(launches=launches[name], total_items=items[name])
            for name in launches
        }

    def merge(self, other: "Counters") -> None:
        """Fold *other* into this (used when accumulating over trees)."""
        for name, value in other.ops.items():
            self.ops[name] += value
        self.regions.extend(other.regions)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the scalar counters."""
        return dict(self.ops)

"""Exporters for metrics snapshots: JSON, Prometheus text, phase table.

All exporters consume the JSON-ready dict produced by
:meth:`repro.perf.registry.MetricsRegistry.snapshot` (the same payload
workers ship to the parent and checkpoints embed), so anything that has
a snapshot — a live registry, a ``cloud.metrics`` attribute, a
checkpoint — can be exported the same three ways:

* :func:`to_json` / :func:`write_metrics` — machine-readable archive.
* :func:`to_prometheus` — the Prometheus text exposition format, for
  scraping or pushing from a long-running campaign host.
* :func:`phase_table` — the human-facing per-phase breakdown (what the
  CLI prints under ``--trace`` and the paper plots in Fig. 11).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Mapping, Tuple

from repro.perf.report import TextTable
from repro.perf.tracing import SPAN_PREFIX

__all__ = [
    "phase_seconds",
    "phase_table",
    "span_stats",
    "to_json",
    "to_prometheus",
    "write_metrics",
]


def to_json(snapshot: Mapping, indent: int = 2) -> str:
    """Serialize a metrics snapshot as a JSON string."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_label_value(value) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and newline must be backslash-escaped inside the
    quoted label value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_help_text(text: str) -> str:
    """Escape a ``# HELP`` line body (backslash and newline only)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(snapshot: Mapping) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Every metric gets a ``# HELP`` line (carrying its original dotted
    registry name) and a ``# TYPE`` line.  Counters and gauges map
    directly; histograms emit cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``, matching the ``le`` bucket semantics
    of :class:`~repro.perf.registry.Histogram` — the ``+Inf`` bucket
    equals ``_count`` (total observations), per the exposition spec.
    Label values are escaped with :func:`_prom_label_value`, so a
    hostile metric edge can never break line framing.
    """
    lines: list[str] = []

    def _header(metric: str, kind: str, name: str) -> None:
        lines.append(
            f"# HELP {metric} "
            f"{_prom_help_text(f'repro {kind} {name}')}"
        )
        lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name)
        _header(metric, "counter", name)
        lines.append(f"{metric} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name)
        _header(metric, "gauge", name)
        lines.append(f"{metric} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _prom_name(name)
        _header(metric, "histogram", name)
        cumulative = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            cumulative += count
            le = _prom_label_value(edge)
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["total"]}')
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['total']}")
    return "\n".join(lines) + "\n"


def write_metrics(snapshot: Mapping, path) -> None:
    """Write a snapshot to *path*: Prometheus text when the suffix is
    ``.prom``, JSON otherwise."""
    path = Path(path)
    if path.suffix == ".prom":
        path.write_text(to_prometheus(snapshot), encoding="utf-8")
    else:
        path.write_text(to_json(snapshot) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Span aggregation
# ----------------------------------------------------------------------
def span_stats(snapshot: Mapping) -> Dict[str, Tuple[float, int]]:
    """Per-span-path ``(seconds, calls)`` extracted from a snapshot."""
    counters = snapshot.get("counters", {})
    stats: Dict[str, Tuple[float, int]] = {}
    for name, value in counters.items():
        if not name.startswith(SPAN_PREFIX) or not name.endswith(".seconds"):
            continue
        path = name[len(SPAN_PREFIX):-len(".seconds")]
        calls = int(counters.get(f"{SPAN_PREFIX}{path}.calls", 0))
        stats[path] = (float(value), calls)
    return stats


def phase_seconds(snapshot: Mapping) -> Dict[str, float]:
    """Total seconds per phase *leaf* name, summed across nesting paths.

    Aggregating by leaf makes the same phase comparable whether it ran
    under ``campaign/...`` (sequential) or ``block/...`` (pool worker);
    this is the shape the benchmark baseline stores and the CI
    perf-regression gate compares.
    """
    phases: Dict[str, float] = {}
    for path, (seconds, _calls) in span_stats(snapshot).items():
        leaf = path.rsplit("/", 1)[-1]
        phases[leaf] = phases.get(leaf, 0.0) + seconds
    return phases


def phase_table(snapshot: Mapping, title: str = "phase breakdown") -> str:
    """Human-facing per-phase table: seconds, calls, and share of the
    root span (the campaign), longest phase first.

    Nested spans are shown by their full path, indent-free, so the
    hierarchy is readable while the numbers stay aligned; the root
    span's share is the fraction of *its own* time, i.e. 100%.
    """
    stats = span_stats(snapshot)
    if not stats:
        return f"{title}\n  (no spans recorded)"
    roots = {path: s for path, (s, _c) in stats.items() if "/" not in path}
    root_total = sum(roots.values())
    table = TextTable(title, ["phase", "seconds", "calls", "share"])
    for path in sorted(stats, key=lambda p: stats[p][0], reverse=True):
        seconds, calls = stats[path]
        share = seconds / root_total if root_total > 0 else 0.0
        table.add_row(path, round(seconds, 4), calls, f"{share:.1%}")
    return table.render()

"""Span-based tracing over the metrics registry.

A *span* is a timed, nested phase of work.  The campaign drivers wrap
their hot phases in spans forming the hierarchy::

    campaign > block > tree_sample > labeling > parity_kernel
             > harary > checkpoint_write

(sequential campaigns have no ``block`` level; the ``block`` span is
the root inside a pool worker, whose snapshot merges back under the
parent's ``campaign``).

Each span records three things into the *active*
:class:`~repro.perf.registry.MetricsRegistry` (resolved at span entry,
so a span opened inside a :func:`~repro.perf.registry.collecting`
scope lands in that scope):

* counter ``span.<path>.seconds`` — total wall seconds in the span,
* counter ``span.<path>.calls`` — number of entries,
* histogram ``span.<path>`` — the per-call duration distribution,

where ``<path>`` is the ``/``-joined nesting path on the current
thread (``campaign/tree_sample``).  Phase breakdowns aggregate these by
leaf name (see :func:`repro.perf.export.phase_seconds`), so the same
phase is comparable whether it ran under ``campaign`` or ``block``.

Overhead: when the active registry is disabled, ``__enter__`` does one
attribute check and returns — no clock read, no allocation beyond the
span object itself.  When enabled, a span costs two ``perf_counter``
reads plus three locked registry updates, paid once per *phase*, never
per edge or per vertex.

When a :class:`TraceCollector` is installed (``collecting_trace()`` /
``--trace-out``), every closed span additionally appends one
:class:`SpanEvent` (path, start, end, thread id) to it — the raw
material for Chrome/Perfetto export via
:mod:`repro.perf.trace_export`.  Collection is in the parent process
only; pool workers' spans arrive as merged registry metrics, not as
events.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.perf.registry import MetricsRegistry, get_registry

__all__ = [
    "SPAN_PREFIX",
    "Span",
    "SpanEvent",
    "Tracer",
    "TraceCollector",
    "get_tracer",
    "span",
    "get_trace_collector",
    "set_trace_collector",
    "collecting_trace",
]

#: Registry-name prefix marking span-derived metrics.
SPAN_PREFIX = "span."


class Span:
    """One span occurrence; use as a context manager."""

    __slots__ = ("_tracer", "name", "path", "_registry", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self._registry: Optional[MetricsRegistry] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        registry = get_registry()
        if not registry.enabled:
            return self
        self._registry = registry
        stack = self._tracer._stack()
        self.path = f"{stack[-1]}/{self.name}" if stack else self.name
        stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        registry = self._registry
        if registry is None:
            return False
        end = time.perf_counter()
        elapsed = end - self._start
        self._tracer._stack().pop()
        path = self.path
        registry.count(f"{SPAN_PREFIX}{path}.seconds", elapsed)
        registry.count(f"{SPAN_PREFIX}{path}.calls", 1)
        registry.observe(f"{SPAN_PREFIX}{path}", elapsed)
        collector = _COLLECTOR
        if collector is not None:
            collector.record(path, self._start, end)
        self._registry = None
        return False


class Tracer:
    """Per-thread span nesting over the active metrics registry.

    The process-global tracer (:func:`get_tracer`) is what the library
    instruments with; separate tracers exist only to isolate nesting
    paths in tests.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """A new span named *name*, nested under the current span (if
        any) on this thread."""
        return Span(self, name)

    def current_path(self) -> Optional[str]:
        """The innermost open span path on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None


@dataclass(frozen=True)
class SpanEvent:
    """One closed span occurrence: nesting path, ``perf_counter``
    start/end, and the recording thread's id."""

    path: str
    start: float
    end: float
    thread: int

    @property
    def duration(self) -> float:
        """Seconds spent in this occurrence."""
        return self.end - self.start


class TraceCollector:
    """Thread-safe sink of :class:`SpanEvent` records.

    Install one with :func:`set_trace_collector` (or the
    :func:`collecting_trace` scope) and every span closed while it is
    active appends an event.  Export to Chrome/Perfetto JSON with
    :func:`repro.perf.trace_export.spans_to_events`.

    ``max_events`` bounds the buffer for long-lived processes (the
    serve daemon traces indefinitely): once full, new events are
    dropped and counted in ``dropped`` rather than growing without
    limit.  The default 0 keeps the historical unbounded behaviour for
    short campaign traces.
    """

    def __init__(self, max_events: int = 0) -> None:
        if max_events < 0:
            raise ValueError(
                f"max_events must be >= 0 (0 = unbounded), got {max_events}"
            )
        self.max_events = max_events
        self.dropped = 0
        self._lock = threading.Lock()
        self._events: List[SpanEvent] = []

    def record(self, path: str, start: float, end: float) -> None:
        """Append one closed-span event (called from ``Span.__exit__``).

        Drops (and counts) the event when the buffer is at capacity."""
        event = SpanEvent(path, start, end, threading.get_ident())
        with self._lock:
            if self.max_events and len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def events(self) -> List[SpanEvent]:
        """A snapshot copy of the recorded events, in close order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_TRACER = Tracer()
_COLLECTOR: Optional[TraceCollector] = None


def get_trace_collector() -> Optional[TraceCollector]:
    """The installed trace collector, or ``None`` (collection off)."""
    return _COLLECTOR


def set_trace_collector(collector: Optional[TraceCollector]) -> None:
    """Install *collector* as the process-global span-event sink
    (``None`` turns collection off)."""
    global _COLLECTOR
    _COLLECTOR = collector


@contextlib.contextmanager
def collecting_trace() -> Iterator[TraceCollector]:
    """Scope that installs a fresh :class:`TraceCollector`, yielding it::

        with collecting_trace() as trace:
            run_campaign(...)
        write_chrome_trace(spans_to_events(trace.events()), path)

    The previous collector (usually ``None``) is restored on exit.
    Note spans only record when the metrics registry is enabled — a
    disabled registry short-circuits ``Span.__enter__``.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    collector = TraceCollector()
    _COLLECTOR = collector
    try:
        yield collector
    finally:
        _COLLECTOR = previous


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str) -> Span:
    """Shorthand for ``get_tracer().span(name)`` — the way the library
    instruments its hot paths::

        with span("parity_kernel"):
            signs, s2r = balance_batch(graph, batch)
    """
    return _TRACER.span(name)

"""Span-based tracing over the metrics registry.

A *span* is a timed, nested phase of work.  The campaign drivers wrap
their hot phases in spans forming the hierarchy::

    campaign > block > tree_sample > labeling > parity_kernel
             > harary > checkpoint_write

(sequential campaigns have no ``block`` level; the ``block`` span is
the root inside a pool worker, whose snapshot merges back under the
parent's ``campaign``).

Each span records three things into the *active*
:class:`~repro.perf.registry.MetricsRegistry` (resolved at span entry,
so a span opened inside a :func:`~repro.perf.registry.collecting`
scope lands in that scope):

* counter ``span.<path>.seconds`` — total wall seconds in the span,
* counter ``span.<path>.calls`` — number of entries,
* histogram ``span.<path>`` — the per-call duration distribution,

where ``<path>`` is the ``/``-joined nesting path on the current
thread (``campaign/tree_sample``).  Phase breakdowns aggregate these by
leaf name (see :func:`repro.perf.export.phase_seconds`), so the same
phase is comparable whether it ran under ``campaign`` or ``block``.

Overhead: when the active registry is disabled, ``__enter__`` does one
attribute check and returns — no clock read, no allocation beyond the
span object itself.  When enabled, a span costs two ``perf_counter``
reads plus three locked registry updates, paid once per *phase*, never
per edge or per vertex.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.perf.registry import MetricsRegistry, get_registry

__all__ = ["SPAN_PREFIX", "Span", "Tracer", "get_tracer", "span"]

#: Registry-name prefix marking span-derived metrics.
SPAN_PREFIX = "span."


class Span:
    """One span occurrence; use as a context manager."""

    __slots__ = ("_tracer", "name", "path", "_registry", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self._registry: Optional[MetricsRegistry] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        registry = get_registry()
        if not registry.enabled:
            return self
        self._registry = registry
        stack = self._tracer._stack()
        self.path = f"{stack[-1]}/{self.name}" if stack else self.name
        stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        registry = self._registry
        if registry is None:
            return False
        elapsed = time.perf_counter() - self._start
        self._tracer._stack().pop()
        path = self.path
        registry.count(f"{SPAN_PREFIX}{path}.seconds", elapsed)
        registry.count(f"{SPAN_PREFIX}{path}.calls", 1)
        registry.observe(f"{SPAN_PREFIX}{path}", elapsed)
        self._registry = None
        return False


class Tracer:
    """Per-thread span nesting over the active metrics registry.

    The process-global tracer (:func:`get_tracer`) is what the library
    instruments with; separate tracers exist only to isolate nesting
    paths in tests.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """A new span named *name*, nested under the current span (if
        any) on this thread."""
        return Span(self, name)

    def current_path(self) -> Optional[str]:
        """The innermost open span path on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str) -> Span:
    """Shorthand for ``get_tracer().span(name)`` — the way the library
    instruments its hot paths::

        with span("parity_kernel"):
            signs, s2r = balance_batch(graph, batch)
    """
    return _TRACER.span(name)

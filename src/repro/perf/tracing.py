"""Span-based tracing over the metrics registry.

A *span* is a timed, nested phase of work.  The campaign drivers wrap
their hot phases in spans forming the hierarchy::

    campaign > block > tree_sample > labeling > parity_kernel
             > harary > checkpoint_write

(sequential campaigns have no ``block`` level; the ``block`` span is
the root inside a pool worker, whose snapshot merges back under the
parent's ``campaign``).

Each span records three things into the *active*
:class:`~repro.perf.registry.MetricsRegistry` (resolved at span entry,
so a span opened inside a :func:`~repro.perf.registry.collecting`
scope lands in that scope):

* counter ``span.<path>.seconds`` — total wall seconds in the span,
* counter ``span.<path>.calls`` — number of entries,
* histogram ``span.<path>`` — the per-call duration distribution,

where ``<path>`` is the ``/``-joined nesting path on the current
thread (``campaign/tree_sample``).  Phase breakdowns aggregate these by
leaf name (see :func:`repro.perf.export.phase_seconds`), so the same
phase is comparable whether it ran under ``campaign`` or ``block``.

Overhead: when the active registry is disabled, ``__enter__`` does one
attribute check and returns — no clock read, no allocation beyond the
span object itself.  When enabled, a span costs two ``perf_counter``
reads plus three locked registry updates, paid once per *phase*, never
per edge or per vertex.

When a :class:`TraceCollector` is installed (``collecting_trace()`` /
``--trace-out``), every closed span additionally appends one
:class:`SpanEvent` (path, start, end, thread id, trace identity) to it
— the raw material for Chrome/Perfetto export via
:mod:`repro.perf.trace_export`.  While a collector is active, spans
also mint/extend a :class:`~repro.perf.tracectx.TraceContext`: the
first span on a thread roots a new trace (or attaches under an ambient
context installed by :func:`~repro.perf.tracectx.trace_scope`, e.g. a
serve request), and nested spans become its children, so the flat
event list reassembles into causal trees keyed by ``trace_id``.

Pool workers collect into their own bounded collector and ship it back
as a *shard* (:func:`collector_shard`) riding the block result; the
parent folds shards in with :func:`absorb_shard`, which rebases the
worker's ``perf_counter`` timestamps onto the parent's clock via each
shard's wall-clock anchor — one stitched timeline across processes.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.perf.registry import MetricsRegistry, get_registry
from repro.perf.tracectx import TraceContext, current_trace, pop_trace, push_trace

__all__ = [
    "SPAN_PREFIX",
    "Span",
    "SpanEvent",
    "Tracer",
    "TraceCollector",
    "get_tracer",
    "span",
    "get_trace_collector",
    "set_trace_collector",
    "collecting_trace",
    "collector_shard",
    "absorb_shard",
]

#: Registry-name prefix marking span-derived metrics.
SPAN_PREFIX = "span."


class Span:
    """One span occurrence; use as a context manager."""

    __slots__ = ("_tracer", "name", "path", "_registry", "_start",
                 "_ctx", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self._registry: Optional[MetricsRegistry] = None
        self._start = 0.0
        self._ctx: Optional[TraceContext] = None
        self._parent_id = ""

    def __enter__(self) -> "Span":
        registry = get_registry()
        if not registry.enabled:
            return self
        self._registry = registry
        stack = self._tracer._stack()
        self.path = f"{stack[-1]}/{self.name}" if stack else self.name
        stack.append(self.path)
        if _COLLECTOR is not None:
            # Only pay for trace identity while something records it.
            parent = current_trace()
            if parent is None:
                self._ctx = TraceContext.mint()
                self._parent_id = ""
            else:
                self._ctx = parent.child()
                self._parent_id = parent.span_id
            push_trace(self._ctx)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        registry = self._registry
        if registry is None:
            return False
        end = time.perf_counter()
        elapsed = end - self._start
        self._tracer._stack().pop()
        path = self.path
        registry.count(f"{SPAN_PREFIX}{path}.seconds", elapsed)
        registry.count(f"{SPAN_PREFIX}{path}.calls", 1)
        registry.observe(f"{SPAN_PREFIX}{path}", elapsed)
        ctx = self._ctx
        if ctx is not None:
            pop_trace()
            self._ctx = None
        collector = _COLLECTOR
        if collector is not None:
            if ctx is not None:
                collector.record(path, self._start, end, ctx.trace_id,
                                 ctx.span_id, self._parent_id)
            else:
                collector.record(path, self._start, end)
        self._registry = None
        return False


class Tracer:
    """Per-thread span nesting over the active metrics registry.

    The process-global tracer (:func:`get_tracer`) is what the library
    instruments with; separate tracers exist only to isolate nesting
    paths in tests.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """A new span named *name*, nested under the current span (if
        any) on this thread."""
        return Span(self, name)

    def current_path(self) -> Optional[str]:
        """The innermost open span path on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None


@dataclass(frozen=True)
class SpanEvent:
    """One closed span occurrence: nesting path, ``perf_counter``
    start/end, the recording thread's id, and (when a trace context
    was active) its position in the causal tree.

    ``pid`` is 0 for events recorded in this process; events absorbed
    from a worker shard carry the worker's pid so export can lay them
    on their own process row."""

    path: str
    start: float
    end: float
    thread: int
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    pid: int = 0

    @property
    def duration(self) -> float:
        """Seconds spent in this occurrence."""
        return self.end - self.start


class TraceCollector:
    """Thread-safe sink of :class:`SpanEvent` records.

    Install one with :func:`set_trace_collector` (or the
    :func:`collecting_trace` scope) and every span closed while it is
    active appends an event.  Export to Chrome/Perfetto JSON with
    :func:`repro.perf.trace_export.spans_to_events`.

    ``max_events`` bounds the buffer for long-lived processes (the
    serve daemon traces indefinitely): once full, new events are
    dropped and counted in ``dropped`` rather than growing without
    limit.  The default 0 keeps the historical unbounded behaviour for
    short campaign traces.
    """

    def __init__(self, max_events: int = 0) -> None:
        if max_events < 0:
            raise ValueError(
                f"max_events must be >= 0 (0 = unbounded), got {max_events}"
            )
        self.max_events = max_events
        self.dropped = 0
        self._lock = threading.Lock()
        self._events: List[SpanEvent] = []

    def record(self, path: str, start: float, end: float,
               trace_id: str = "", span_id: str = "",
               parent_id: str = "") -> None:
        """Append one closed-span event (called from ``Span.__exit__``).

        Drops (and counts) the event when the buffer is at capacity."""
        self.record_event(SpanEvent(path, start, end,
                                    threading.get_ident(),
                                    trace_id, span_id, parent_id))

    def record_event(self, event: SpanEvent) -> None:
        """Append an already-built event (the shard-absorb path uses
        this to preserve worker thread/pid/trace identity)."""
        with self._lock:
            if self.max_events and len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def events(self) -> List[SpanEvent]:
        """A snapshot copy of the recorded events, in close order."""
        with self._lock:
            return list(self._events)

    def count_dropped(self, n: int) -> None:
        """Fold *n* drops from an absorbed shard into ``dropped``."""
        if n:
            with self._lock:
                self.dropped += n

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_TRACER = Tracer()
_COLLECTOR: Optional[TraceCollector] = None


def get_trace_collector() -> Optional[TraceCollector]:
    """The installed trace collector, or ``None`` (collection off)."""
    return _COLLECTOR


def set_trace_collector(collector: Optional[TraceCollector]) -> None:
    """Install *collector* as the process-global span-event sink
    (``None`` turns collection off)."""
    global _COLLECTOR
    _COLLECTOR = collector


@contextlib.contextmanager
def collecting_trace(max_events: int = 0) -> Iterator[TraceCollector]:
    """Scope that installs a fresh :class:`TraceCollector`, yielding it::

        with collecting_trace() as trace:
            run_campaign(...)
        write_chrome_trace(spans_to_events(trace.events()), path)

    The previous collector (usually ``None``) is restored on exit.
    Note spans only record when the metrics registry is enabled — a
    disabled registry short-circuits ``Span.__enter__``.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    collector = TraceCollector(max_events)
    _COLLECTOR = collector
    try:
        yield collector
    finally:
        _COLLECTOR = previous


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str) -> Span:
    """Shorthand for ``get_tracer().span(name)`` — the way the library
    instruments its hot paths::

        with span("parity_kernel"):
            signs, s2r = balance_batch(graph, batch)
    """
    return _TRACER.span(name)


# -- cross-process span shards -----------------------------------------
#
# perf_counter timestamps are meaningless across processes, so a shard
# carries a wall-clock *anchor* (``time.time() - time.perf_counter()``
# at ship time).  The parent rebases each event by the difference
# between the shard's anchor and its own, landing worker spans on the
# parent's perf_counter timeline (same machine, so clock skew is the
# NTP-level noise of ``time.time()``, far below span durations).

def collector_shard(collector: TraceCollector) -> Dict[str, Any]:
    """Package *collector*'s events for shipment to another process.

    The shard is plain JSON-able data (it rides pickled block results
    and flight-recorder dumps alike): the worker pid, the wall-clock
    anchor, the drop count, and one compact row per event.
    """
    return {
        "pid": os.getpid(),
        "anchor": time.time() - time.perf_counter(),
        "dropped": collector.dropped,
        "events": [
            [e.path, e.start, e.end, e.thread,
             e.trace_id, e.span_id, e.parent_id]
            for e in collector.events()
        ],
    }


def absorb_shard(collector: TraceCollector, shard: Dict[str, Any]) -> int:
    """Fold a worker's *shard* into *collector*, rebasing timestamps
    onto this process's ``perf_counter`` clock; returns the number of
    events absorbed."""
    offset = float(shard.get("anchor", 0.0)) - (
        time.time() - time.perf_counter()
    )
    pid = int(shard.get("pid", 0))
    absorbed = 0
    for row in shard.get("events", ()):
        path, start, end, thread = row[0], row[1], row[2], row[3]
        trace_id, span_id, parent_id = (
            (row[4], row[5], row[6]) if len(row) >= 7 else ("", "", "")
        )
        collector.record_event(SpanEvent(
            str(path), float(start) + offset, float(end) + offset,
            int(thread), str(trace_id), str(span_id), str(parent_id),
            pid=pid,
        ))
        absorbed += 1
    collector.count_dropped(int(shard.get("dropped", 0)))
    return absorbed

"""Operation counters feeding the simulated-machine cost models.

The paper's performance story is about *work*: how many vertices a
cycle walk visits, how many adjacency entries it scans, how many
parallel regions a tree needs.  The kernels record those quantities in
a :class:`Counters` object; the models in :mod:`repro.parallel` then
turn work into modeled time under a CPU-thread or GPU-warp machine.
Counting is cheap (a few dict increments per phase, aggregate numpy
sums per kernel) and never changes algorithm results.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Counters", "RegionStat"]


@dataclass(frozen=True)
class RegionStat:
    """Aggregate over all parallel regions sharing a name."""

    launches: int
    total_items: int

    @property
    def avg_items(self) -> float:
        return self.total_items / self.launches if self.launches else 0.0


@dataclass
class Counters:
    """Named scalar counters plus a log of parallel-region launches.

    ``ops`` holds flat counts ("cycle.edges_scanned", ...).  ``regions``
    records each parallel region (kernel launch / OpenMP region) with
    its work-item count, in launch order — the Fig. 10 scaling model
    replays this log under different thread counts.
    """

    ops: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    regions: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment the named scalar counter."""
        self.ops[name] += int(amount)

    def parallel_region(self, name: str, items: int) -> None:
        """Record one parallel-region launch with *items* work items."""
        self.regions.append((name, int(items)))

    def get(self, name: str) -> int:
        """Current value of a scalar counter (0 if never touched)."""
        return int(self.ops.get(name, 0))

    def region_stats(self) -> Dict[str, RegionStat]:
        """Aggregate the region log by name."""
        launches: Dict[str, int] = defaultdict(int)
        items: Dict[str, int] = defaultdict(int)
        for name, k in self.regions:
            launches[name] += 1
            items[name] += k
        return {
            name: RegionStat(launches=launches[name], total_items=items[name])
            for name in launches
        }

    def merge(self, other: "Counters") -> None:
        """Fold *other* into this (used when accumulating over trees)."""
        for name, value in other.ops.items():
            self.ops[name] += value
        self.regions.extend(other.regions)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the scalar counters."""
        return dict(self.ops)

"""Deprecated import path for :class:`~repro.perf.compat.Counters`.

Scalar op counting moved to the metrics registry
(:mod:`repro.perf.registry`) in PR 4; the legacy classes themselves
live in :mod:`repro.perf.compat` (the machine models still replay
their region logs).  Importing from here keeps working but warns.
"""

from __future__ import annotations

import warnings

from repro.perf.compat import Counters, RegionStat

__all__ = ["Counters", "RegionStat"]

warnings.warn(
    "repro.perf.counters is deprecated: import Counters from "
    "repro.perf.compat, or count into repro.perf.registry",
    DeprecationWarning,
    stacklevel=2,
)

"""Trace identity: W3C-traceparent contexts threaded across processes.

A :class:`TraceContext` is the identity half of distributed tracing —
a 128-bit ``trace_id`` naming one causal tree (a campaign, an HTTP
request) plus a 64-bit ``span_id`` naming the node the next child
hangs under.  The timing half stays in :mod:`repro.perf.tracing`:
spans read the ambient context at entry, derive a child id, and stamp
both ids on the :class:`~repro.perf.tracing.SpanEvent` they emit, so a
collector's flat event list reassembles into one tree per trace_id.

Wire format is the W3C ``traceparent`` header (version 00)::

    00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01

which is what the serve layer accepts and returns, and — via
:meth:`TraceContext.to_dict` — what rides pickled pool-task payloads
into workers.  Ids are minted from ``os.urandom`` once per trace;
child span ids come from a cheap per-process counter mixed with the
pid so two workers can never mint the same id.

The ambient context is a thread-local stack: :func:`current_trace`
reads the top, :func:`trace_scope` pushes one for a ``with`` body.
Everything here is allocation-light and lock-free; when tracing is off
nothing in this module runs at all (spans only consult it while a
trace collector is installed).
"""

from __future__ import annotations

import contextlib
import itertools
import os
import re
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = [
    "TraceContext",
    "current_trace",
    "trace_scope",
    "mint_trace",
    "new_span_id",
    "push_trace",
    "pop_trace",
]

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

# Per-process span-id sequence.  Mixing the pid into the high half
# keeps ids unique across pool workers without coordination; the
# urandom seed keeps them unique across successive processes that
# happen to share a recycled pid.
_SPAN_SEQ = itertools.count(int.from_bytes(os.urandom(4), "big"))


def new_span_id() -> str:
    """A 16-hex-char span id unique within (and across) processes."""
    low = next(_SPAN_SEQ) & 0xFFFFFFFF
    return f"{os.getpid() & 0xFFFFFFFF:08x}{low:08x}"


@dataclass(frozen=True)
class TraceContext:
    """One position in a causal tree: ``trace_id`` names the tree,
    ``span_id`` the node new children attach under."""

    trace_id: str
    span_id: str

    @staticmethod
    def mint() -> "TraceContext":
        """A fresh root context with a random 32-hex trace id."""
        return TraceContext(os.urandom(16).hex(), new_span_id())

    def child(self) -> "TraceContext":
        """A context for work nested under this one (same trace, new
        span id)."""
        return TraceContext(self.trace_id, new_span_id())

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value (version 00,
        flags 01 = sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @staticmethod
    def from_traceparent(value: str) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` when malformed or
        carrying the all-zero invalid ids."""
        m = _TRACEPARENT_RE.match(value.strip().lower())
        if m is None:
            return None
        _, trace_id, span_id, _ = m.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return TraceContext(trace_id, span_id)

    def to_dict(self) -> Dict[str, str]:
        """A plain-dict form for pickled task payloads / JSON."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(data: Optional[Dict[str, str]]) -> Optional["TraceContext"]:
        """Inverse of :meth:`to_dict`; tolerates ``None`` and junk."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return TraceContext(str(trace_id), str(span_id))


_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_trace() -> Optional[TraceContext]:
    """The ambient context on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """Make *ctx* the ambient context for the ``with`` body.

    Spans opened inside derive their ids from it; nested scopes stack
    (the serve handler pushes the request context, the growth worker
    pushes the campaign context, each restored on exit).
    """
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def push_trace(ctx: TraceContext) -> None:
    """Push *ctx* without a ``with`` body (``Span.__enter__`` uses
    this; every push must be paired with one :func:`pop_trace`)."""
    _stack().append(ctx)


def pop_trace() -> None:
    """Undo one :func:`push_trace` (no-op on an empty stack, so an
    unbalanced teardown can't raise from ``__exit__``)."""
    stack = _stack()
    if stack:
        stack.pop()


def mint_trace() -> TraceContext:
    """Shorthand for :meth:`TraceContext.mint`."""
    return TraceContext.mint()

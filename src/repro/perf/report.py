"""Plain-text table and series rendering for the benchmark harness.

Every benchmark regenerates its table/figure as text (the paper's rows
or series), so results are diffable and show up directly in pytest
output.  These helpers keep the formatting uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["TextTable", "geomean", "format_series"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for runtimes)."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    for v in vals:
        import math

        log_sum += math.log(v)
    import math

    return math.exp(log_sum / len(vals))


@dataclass
class TextTable:
    """Monospace table with a title, headers, and typed columns."""

    title: str
    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """Monospace rendering with aligned, right-justified numbers."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                          for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit()


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as aligned ``x: y`` lines."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {str(x):>12s}: {_fmt(float(y))}")
    return "\n".join(lines)

"""Dynamic-memory model (Table 4).

The paper reports the dynamically allocated megabytes of the OpenMP and
CUDA codes per input.  Allocation is fixed up front and linear in the
graph size (§6.4), so the three columns are linear functions of
``(n, m)``.  We model each column as a component ledger whose
coefficients were fitted to the published Table 4 (fit residual < 1 MB
on 18 of 20 rows; see EXPERIMENTS.md):

* **OpenMP host** ≈ 26 B/vertex + 48 B/edge.
  Decomposition: per vertex — parent, level, new ID, subtree count
  (4 B each), status accumulator (8 B), bipartition side + flags (2 B);
  per edge — two directed CSR entries × (4 B neighbor + 16 B
  two-word range/sign encoding, §3.2.1) + 8 B edge endpoints.
* **CUDA device** ≈ 24 B/vertex + 62.5 B/edge.
  The +22% over OpenMP (§6.4) comes from the two level worklists used
  by the Harary bipartitioning, which the fit attributes to the edge
  term (≈ 14.5 B/edge averaged over the inputs).
* **CUDA host** ≈ 19 B/vertex + 30.5 B/edge — the host mirror minus
  the device-only arrays (≈ ⅔ of the OpenMP footprint, §6.4).

These model the *paper's C++/CUDA* codes, not this Python library;
:func:`python_actual_mb` reports our own CSR footprint for contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import SignedGraph

__all__ = [
    "MemoryModel",
    "OPENMP_HOST",
    "CUDA_DEVICE",
    "CUDA_HOST",
    "openmp_host_mb",
    "cuda_device_mb",
    "cuda_host_mb",
    "python_actual_mb",
]

_MB = 1.0e6  # Table 4 uses decimal megabytes


@dataclass(frozen=True)
class MemoryModel:
    """Linear allocation model ``bytes = per_vertex·n + per_edge·m``."""

    name: str
    bytes_per_vertex: float
    bytes_per_edge: float

    def bytes(self, num_vertices: int, num_edges: int) -> float:
        """Modeled allocation in bytes for an (n, m) graph."""
        return (
            self.bytes_per_vertex * num_vertices
            + self.bytes_per_edge * num_edges
        )

    def megabytes(self, num_vertices: int, num_edges: int) -> float:
        """Modeled allocation in decimal MB (Table 4 units)."""
        return self.bytes(num_vertices, num_edges) / _MB


OPENMP_HOST = MemoryModel("openmp_host", 26.0, 48.0)
CUDA_DEVICE = MemoryModel("cuda_device", 24.0, 62.5)
CUDA_HOST = MemoryModel("cuda_host", 19.0, 30.5)


def openmp_host_mb(num_vertices: int, num_edges: int) -> float:
    """Modeled OpenMP host allocation in MB."""
    return OPENMP_HOST.megabytes(num_vertices, num_edges)


def cuda_device_mb(num_vertices: int, num_edges: int) -> float:
    """Modeled CUDA device allocation in MB."""
    return CUDA_DEVICE.megabytes(num_vertices, num_edges)


def cuda_host_mb(num_vertices: int, num_edges: int) -> float:
    """Modeled CUDA host allocation in MB."""
    return CUDA_HOST.megabytes(num_vertices, num_edges)


def python_actual_mb(graph: SignedGraph) -> float:
    """Actual bytes held by this library's CSR arrays, in MB."""
    return graph.nbytes() / _MB


def max_edges_within(budget_mb: float, model: MemoryModel, avg_degree: float) -> int:
    """Largest edge count fitting *budget_mb* under *model*, assuming
    ``n = m / avg_degree`` — the §6.4 capacity estimate (e.g. ~150 M
    edges in 12 GB of device memory)."""
    per_edge = model.bytes_per_edge + model.bytes_per_vertex / max(avg_degree, 1e-9)
    return int(budget_mb * _MB / per_edge)

"""Chrome/Perfetto trace export for spans and modeled timelines.

Emits the ``chrome://tracing`` JSON object format — a
``{"traceEvents": [...]}`` document of complete (``"ph": "X"``) events
with microsecond timestamps — which both the legacy Chrome viewer and
Perfetto (https://ui.perfetto.dev) load directly.

Two producers feed it:

* real executions — :class:`~repro.perf.tracing.SpanEvent` records from
  a :class:`~repro.perf.tracing.TraceCollector`
  (:func:`spans_to_events`);
* modeled executions — :class:`~repro.perf.timeline.ExecutionTimeline`
  / :class:`~repro.perf.timeline.MachineProfile`
  (:func:`timeline_to_events`, :func:`profile_to_events`).

Both land in one event list, so a modeled GPU schedule renders in the
same viewer — and on the same time axis — as the measured Python run.
:func:`validate_chrome_trace` is the minimal schema gate used by tests
and the CI smoke run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.perf.timeline import ExecutionTimeline, MachineProfile
from repro.perf.tracing import SpanEvent

__all__ = [
    "REQUIRED_EVENT_KEYS",
    "spans_to_events",
    "events_for_trace",
    "timeline_to_events",
    "profile_to_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "load_chrome_trace",
]

#: Keys every complete ("X") event must carry — the CI smoke schema.
REQUIRED_EVENT_KEYS = ("ph", "ts", "dur", "pid", "tid", "name")

#: Seconds to Chrome-trace microseconds.
_US = 1e6


def _meta(pid: int, name: str, tid: int = 0,
          thread_name: Optional[str] = None) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": tid, "name": "process_name",
        "args": {"name": name},
    }]
    if thread_name is not None:
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": thread_name},
        })
    return events


def spans_to_events(
    span_events: Sequence[SpanEvent],
    pid: int = 1,
    process_name: str = "repro",
) -> List[Dict[str, Any]]:
    """Convert collected span events to Chrome trace events.

    Timestamps are rebased so the earliest span starts at 0 µs; thread
    ids are remapped to small consecutive integers per process row
    (tid 0 = the thread that opened the first span), each named in a
    metadata event.  Events absorbed from worker shards (nonzero
    ``SpanEvent.pid``) land on their own process row named
    ``worker-<pid>``, already rebased onto the parent's clock by
    :func:`~repro.perf.tracing.absorb_shard`, so one stitched document
    shows the parent and every worker on a shared time axis.  Span
    trace identity (``trace_id``/``span_id``/``parent_id``) rides in
    each event's ``args`` for tooling that reassembles causal trees.
    """
    if not span_events:
        return _meta(pid, process_name)
    base = min(e.start for e in span_events)
    tid_maps: Dict[int, Dict[int, int]] = {}
    events: List[Dict[str, Any]] = _meta(pid, process_name)
    seen_pids = {pid}
    for e in sorted(span_events, key=lambda e: e.start):
        row_pid = e.pid or pid
        if row_pid not in seen_pids:
            seen_pids.add(row_pid)
            events.extend(_meta(row_pid, f"worker-{row_pid}"))
        tid_map = tid_maps.setdefault(row_pid, {})
        tid = tid_map.setdefault(e.thread, len(tid_map))
        args: Dict[str, Any] = {"path": e.path}
        if e.trace_id:
            args["trace_id"] = e.trace_id
            args["span_id"] = e.span_id
            args["parent_id"] = e.parent_id
        events.append({
            "ph": "X",
            "ts": (e.start - base) * _US,
            "dur": e.duration * _US,
            "pid": row_pid,
            "tid": tid,
            "name": e.path.rsplit("/", 1)[-1],
            "args": args,
        })
    for row_pid, tid_map in tid_maps.items():
        name = process_name if row_pid == pid else f"worker-{row_pid}"
        for _, tid in tid_map.items():
            events.extend(_meta(row_pid, name, tid,
                                thread_name=f"thread-{tid}")[1:])
    return events


def events_for_trace(
    span_events: Sequence[SpanEvent], trace_id: str
) -> List[SpanEvent]:
    """The subset of *span_events* belonging to causal tree
    *trace_id* — how the serve ``/debug/trace`` endpoint slices one
    request's spans out of the daemon's long-lived collector."""
    return [e for e in span_events if e.trace_id == trace_id]


def timeline_to_events(
    timeline: ExecutionTimeline,
    pid: int = 2,
    process_name: Optional[str] = None,
    base_seconds: float = 0.0,
) -> List[Dict[str, Any]]:
    """Convert a modeled schedule timeline to Chrome trace events; each
    worker/warp becomes one trace row (tid)."""
    events = _meta(pid, process_name or f"model:{timeline.label}")
    for s in timeline.segments:
        args: Dict[str, Any] = {k: v for k, v in s.meta.items()}
        if s.task >= 0:
            args["task"] = s.task
        events.append({
            "ph": "X",
            "ts": (base_seconds + s.start) * _US,
            "dur": s.duration * _US,
            "pid": pid,
            "tid": s.worker,
            "name": s.name,
            "args": args,
        })
    return events


def profile_to_events(
    profile: MachineProfile, pid: int = 2
) -> List[Dict[str, Any]]:
    """Convert a machine profile to Chrome trace events.

    Phase timelines are laid out back-to-back on one time axis (each
    phase's schedule internally starts at 0), and the launch ledger is
    summarized on a dedicated ``launches`` row (tid -1).
    """
    events = _meta(pid, f"model:{profile.machine}")
    offset = 0.0
    for phase, timeline in profile.timelines.items():
        events.extend(
            e for e in timeline_to_events(
                timeline, pid=pid, base_seconds=offset
            )
            if e["ph"] != "M"
        )
        events.append({
            "ph": "X",
            "ts": offset * _US,
            "dur": timeline.makespan * _US,
            "pid": pid,
            "tid": -1,
            "name": phase,
            "args": {
                "occupancy": timeline.average_occupancy(),
                "load_imbalance": timeline.load_imbalance(),
            },
        })
        offset += timeline.makespan
    for phase, (ovh, tot) in sorted(profile.launch_overhead().items()):
        events.append({
            "ph": "C",
            "ts": 0,
            "pid": pid,
            "tid": -1,
            "name": f"launch_overhead:{phase}",
            "args": {"overhead_seconds": ovh, "total_seconds": tot},
        })
    return events


def write_chrome_trace(
    events: Sequence[Dict[str, Any]], path: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write *events* as a ``{"traceEvents": [...]}`` JSON document.

    The document is validated against the minimal schema before it
    touches disk, so a written trace always loads in Perfetto.
    """
    doc: Dict[str, Any] = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    validate_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read and schema-validate a Chrome trace document."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_chrome_trace(doc)
    return doc


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`~repro.errors.ReproError` unless *doc* is a valid
    minimal Chrome trace: a dict with a ``traceEvents`` list whose
    complete (``"X"``) events carry ``ph``, ``ts``, ``dur``, ``pid``,
    ``tid``, and ``name`` with sane types."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ReproError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ReproError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ReproError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph is None or "pid" not in event or "name" not in event:
            raise ReproError(
                f"traceEvents[{i}] lacks ph/pid/name: {event!r}"
            )
        if ph == "X":
            missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
            if missing:
                raise ReproError(
                    f"traceEvents[{i}] missing keys {missing}: {event!r}"
                )
            if not isinstance(event["ts"], (int, float)) or not isinstance(
                event["dur"], (int, float)
            ):
                raise ReproError(
                    f"traceEvents[{i}] ts/dur must be numbers: {event!r}"
                )
            if event["dur"] < 0:
                raise ReproError(f"traceEvents[{i}] has negative duration")

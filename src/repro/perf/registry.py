"""Process-global metrics registry: counters, gauges, histogram timers.

This is the aggregation half of the observability layer (the other half
is the span tracer in :mod:`repro.perf.tracing`).  A
:class:`MetricsRegistry` holds three families of named metrics:

* **Counters** — monotonic non-negative accumulators ("how many states
  were balanced", "how many seconds were spent inside the parity
  kernel").  Float-valued so span durations can accumulate exactly.
* **Gauges** — last-write-wins point-in-time values ("checkpoint bytes
  written", "pool size").
* **Histograms** — fixed-bucket-edge distributions (span durations),
  with Prometheus ``le`` semantics: an observation lands in the first
  bucket whose upper edge is >= the value, values above the last edge
  land in the overflow bucket.

Design constraints, in order:

1. **Worker merge is lossless and associative.**  Counters add, gauges
   take the newest write, histograms add bucket-wise (edges must
   match).  A pool campaign that serializes each worker's registry
   snapshot back with its block result and merges them in any grouping
   produces exactly the registry a sequential run would (timings aside,
   which are genuinely different work).
2. **Thread-safe.**  All mutation happens under one lock per registry;
   snapshots are taken under the same lock, so a concurrent reader
   never sees a half-merged state.
3. **Near-zero overhead when disabled.**  Every mutator begins with a
   single attribute check and returns immediately; no lock is taken,
   no allocation happens.

The *active* registry is resolved by :func:`get_registry`: normally the
process-global singleton, but :func:`collecting` pushes a fresh
thread-local child so a campaign (or a pool worker's block) can capture
exactly its own metrics; on exit the child is folded into its parent,
so the global registry still sees everything.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "get_registry",
    "metrics_enabled",
    "reset_global_registry",
    "set_metrics_enabled",
]

#: Default histogram bucket upper edges, in seconds: exponential-ish
#: coverage from 0.1 ms to 5 minutes (span durations range from a
#: per-state kernel call to a whole campaign).
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Histogram:
    """Fixed-bucket histogram with ``le`` (less-or-equal) bucket edges.

    ``counts`` has ``len(edges) + 1`` entries; the last is the overflow
    bucket for observations above every edge.  An observation equal to
    an edge lands in that edge's bucket.
    """

    __slots__ = ("edges", "counts", "total", "sum")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ReproError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ReproError(f"bucket edges must strictly increase: {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        """Add *other*'s buckets into this histogram (same edges only)."""
        if self.edges != other.edges:
            raise ReproError(
                f"cannot merge histograms with different bucket edges: "
                f"{self.edges} vs {other.edges}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``) from the buckets.

        Returns the upper edge of the bucket containing the target rank
        (the overflow bucket reports the last edge), which is how
        Prometheus's ``histogram_quantile`` resolves too: an upper
        bound, exact to bucket granularity.  Returns 0.0 with no
        observations.
        """
        if not 0 <= q <= 1:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for edge, count in zip(self.edges, self.counts):
            seen += count
            if seen >= rank:
                return edge
        return self.edges[-1]

    def to_dict(self) -> dict:
        """JSON-ready snapshot of this histogram."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(tuple(data["edges"]))
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ReproError(
                f"histogram snapshot has {len(counts)} buckets, expected "
                f"{len(hist.counts)} for its edges"
            )
        hist.counts = [int(c) for c in counts]
        hist.total = int(data["total"])
        hist.sum = float(data["sum"])
        return hist


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock.

    See the module docstring for the merge/threading/overhead contract.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutation ------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Increment the monotonic counter *name* by *amount* (>= 0)."""
        if not self.enabled:
            return
        if amount < 0:
            raise ReproError(
                f"counters are monotonic; cannot add {amount} to {name!r}"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_BUCKET_EDGES,
    ) -> None:
        """Record *value* in the histogram *name* (created on first use
        with *edges*; later calls must agree on the edges)."""
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges)
            hist.observe(value)

    def reset(self) -> None:
        """Drop every metric (the enabled flag is left alone)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reads ---------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        """Plain-dict copy of all counters."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        """Plain-dict copy of all gauges."""
        with self._lock:
            return dict(self._gauges)

    def snapshot(self) -> dict:
        """JSON-ready snapshot: the wire format workers ship back to
        the parent and checkpoints embed."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    # -- merge ---------------------------------------------------------
    def merge_snapshot(self, snap: Mapping | None) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters and histograms add; gauges take the snapshot's value.
        Merging is associative, so worker snapshots can be folded in
        any grouping with the same result.  A ``None`` or empty
        snapshot is a no-op.  Merging ignores the enabled flag: merge
        is bookkeeping, not instrumentation.
        """
        if not snap:
            return
        counters = snap.get("counters", {})
        gauges = snap.get("gauges", {})
        histograms = snap.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(
                {name: float(v) for name, v in gauges.items()}
            )
            for name, data in histograms.items():
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = Histogram.from_dict(data)
                else:
                    hist.merge(Histogram.from_dict(data))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (via its snapshot, so
        *other* may keep mutating concurrently)."""
        self.merge_snapshot(other.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(enabled={self.enabled}, "
                f"{len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)"
            )


# ----------------------------------------------------------------------
# Process-global registry + thread-local scoping
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()
_SCOPES = threading.local()


def _stack() -> list:
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = _SCOPES.stack = []
    return stack


def get_registry() -> MetricsRegistry:
    """The active registry: the innermost :func:`collecting` scope on
    this thread, else the process-global registry."""
    stack = _stack()
    return stack[-1] if stack else _GLOBAL


def set_metrics_enabled(enabled: bool) -> bool:
    """Enable/disable the process-global registry (and, through
    inheritance, every new :func:`collecting` scope).  Returns the
    previous setting so callers can restore it."""
    previous = _GLOBAL.enabled
    _GLOBAL.enabled = bool(enabled)
    return previous


def metrics_enabled() -> bool:
    """Whether the active registry is recording."""
    return get_registry().enabled


def reset_global_registry() -> None:
    """Drop every metric from the process-global registry (tests, CLI)."""
    _GLOBAL.reset()


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
    merge: bool = True,
) -> Iterator[MetricsRegistry]:
    """Scope a fresh registry over the enclosed block on this thread.

    All instrumentation inside the block records into the scoped
    registry (it inherits the parent's enabled flag); on exit the
    scoped registry is merged into its parent, so nothing is lost —
    the caller just gets a clean window over its own work::

        with collecting() as metrics:
            cloud = sample_cloud(graph, 100, seed=0)
        cloud_metrics = metrics.snapshot()

    This is how drivers attach a campaign's own metrics to the
    returned cloud.  ``merge=False`` detaches the window: nothing is
    folded into the parent on exit, so the snapshot is the *only* copy.
    Pool workers use this — their block snapshot travels back with the
    block result and the parent merges it exactly once, whether the
    block ran in a worker process or degraded to in-process execution.
    """
    parent = get_registry()
    reg = registry if registry is not None else MetricsRegistry(
        enabled=parent.enabled
    )
    stack = _stack()
    stack.append(reg)
    try:
        yield reg
    finally:
        stack.pop()
        if merge:
            parent.merge(reg)

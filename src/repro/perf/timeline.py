"""Execution timelines: per-worker assignment schedules with derived reports.

The scalar ``makespan_*`` simulators in :mod:`repro.parallel.schedule`
answer *how long*; this module answers *why*.  An
:class:`ExecutionTimeline` holds the per-worker segment list a schedule
policy produced — (task id, start, end, worker) — and derives the
structure the paper's performance story turns on (§6.1–6.3):

* **occupancy curve** — how many workers are busy at each instant,
* **load-imbalance ratio** — max worker busy time over the mean,
* **straggler attribution** — the top-k longest segments, carrying
  whatever metadata the producer attached (vertex id, cycle count,
  degree), which is how a 43k-degree hub shows up by name instead of
  as an anonymous tail.

A :class:`MachineProfile` bundles one timeline per pipeline phase with
the kernel-launch ledger (:class:`KernelLaunch`) so GPU launch-overhead
and warp-divergence breakdowns land next to the schedules that caused
them.  Profiles and timelines both export to Chrome/Perfetto trace JSON
via :mod:`repro.perf.trace_export`.

Timelines are collected only on request (``timeline=True`` /
``CpuMachine.profile``); the scalar paths never touch this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EngineError

__all__ = [
    "TimelineSegment",
    "ExecutionTimeline",
    "KernelLaunch",
    "MachineProfile",
]


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous span of work assigned to one worker.

    ``task`` is the producer's task index (-1 when the segment covers a
    chunk rather than a single task); ``meta`` carries attribution
    (vertex id, cycle count, chunk bounds) for straggler reports.
    """

    name: str
    worker: int
    start: float
    end: float
    task: int = -1
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds of work in this segment."""
        return self.end - self.start


class ExecutionTimeline:
    """A per-worker assignment timeline with derived schedule reports."""

    def __init__(
        self,
        workers: int,
        segments: Optional[Sequence[TimelineSegment]] = None,
        label: str = "schedule",
    ) -> None:
        """A timeline over *workers* workers, optionally pre-seeded."""
        if workers < 1:
            raise EngineError("timeline needs at least one worker")
        self.workers = int(workers)
        self.label = label
        self.segments: List[TimelineSegment] = list(segments or [])

    # -- construction ---------------------------------------------------
    def add(
        self,
        name: str,
        worker: int,
        start: float,
        end: float,
        task: int = -1,
        **meta: Any,
    ) -> None:
        """Append one segment."""
        self.segments.append(
            TimelineSegment(name, int(worker), float(start), float(end), task, meta)
        )

    def extend(self, segments: Sequence[TimelineSegment]) -> None:
        """Append many segments."""
        self.segments.extend(segments)

    def scaled(self, factor: float, label: Optional[str] = None) -> "ExecutionTimeline":
        """A copy with every start/end multiplied by *factor* (e.g. ops
        to seconds)."""
        out = ExecutionTimeline(self.workers, label=label or self.label)
        out.segments = [
            TimelineSegment(
                s.name, s.worker, s.start * factor, s.end * factor, s.task, s.meta
            )
            for s in self.segments
        ]
        return out

    def shifted(self, offset: float) -> "ExecutionTimeline":
        """A copy with every start/end moved by *offset* seconds."""
        out = ExecutionTimeline(self.workers, label=self.label)
        out.segments = [
            TimelineSegment(
                s.name, s.worker, s.start + offset, s.end + offset, s.task, s.meta
            )
            for s in self.segments
        ]
        return out

    def relabel(self, fn) -> "ExecutionTimeline":
        """A copy with each segment replaced by ``fn(segment)`` — the
        hook machines use to attach vertex/degree attribution."""
        out = ExecutionTimeline(self.workers, label=self.label)
        out.segments = [fn(s) for s in self.segments]
        return out

    # -- scalar reports -------------------------------------------------
    @property
    def makespan(self) -> float:
        """Latest segment end (0.0 when empty)."""
        return max((s.end for s in self.segments), default=0.0)

    @property
    def busy_seconds(self) -> float:
        """Total work across all workers."""
        return sum(s.duration for s in self.segments)

    def worker_busy(self) -> np.ndarray:
        """Busy seconds per worker (length ``self.workers``)."""
        busy = np.zeros(self.workers, dtype=np.float64)
        for s in self.segments:
            busy[s.worker] += s.duration
        return busy

    def load_imbalance(self) -> float:
        """Max worker busy time over mean busy time (1.0 = perfectly
        balanced; large values mean one straggling worker sets the
        makespan)."""
        busy = self.worker_busy()
        mean = busy.mean()
        if mean <= 0.0:
            return 1.0
        return float(busy.max() / mean)

    def average_occupancy(self) -> float:
        """Mean fraction of workers busy over the makespan."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        return self.busy_seconds / (span * self.workers)

    def occupancy_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Step function ``(times, busy_workers)`` via an event sweep.

        ``busy_workers[i]`` holds between ``times[i]`` and
        ``times[i+1]``; the last value is always 0 (everything ended).
        """
        if not self.segments:
            return np.zeros(1), np.zeros(1)
        events: List[Tuple[float, int]] = []
        for s in self.segments:
            events.append((s.start, +1))
            events.append((s.end, -1))
        events.sort()
        times: List[float] = []
        counts: List[int] = []
        level = 0
        for t, delta in events:
            level += delta
            if times and times[-1] == t:
                counts[-1] = level
            else:
                times.append(t)
                counts.append(level)
        return np.asarray(times), np.asarray(counts, dtype=np.int64)

    def stragglers(self, k: int = 5) -> List[TimelineSegment]:
        """The *k* longest segments, longest first — the tasks that set
        the tail of the schedule."""
        return sorted(self.segments, key=lambda s: -s.duration)[:k]

    def validate(self) -> None:
        """Raise :class:`EngineError` on malformed timelines: negative
        durations, out-of-range workers, or overlapping segments on one
        worker."""
        per_worker: Dict[int, List[TimelineSegment]] = {}
        for s in self.segments:
            if not (0 <= s.worker < self.workers):
                raise EngineError(
                    f"segment worker {s.worker} outside [0, {self.workers})"
                )
            if s.end < s.start:
                raise EngineError(f"segment {s.name!r} ends before it starts")
            per_worker.setdefault(s.worker, []).append(s)
        for worker, segs in per_worker.items():
            segs.sort(key=lambda s: s.start)
            for a, b in zip(segs, segs[1:]):
                if b.start < a.end - 1e-12 * max(1.0, a.end):
                    raise EngineError(
                        f"worker {worker} segments overlap: "
                        f"{a.name!r} [{a.start}, {a.end}) and "
                        f"{b.name!r} [{b.start}, {b.end})"
                    )

    def report(self, k: int = 3) -> str:
        """Human one-paragraph summary (used by ``model --timeline``)."""
        lines = [
            f"{self.label}: {len(self.segments)} segments on "
            f"{self.workers} workers, makespan {self.makespan:.3e} s",
            f"  occupancy {self.average_occupancy():.1%}, "
            f"load imbalance {self.load_imbalance():.2f}x",
        ]
        for s in self.stragglers(k):
            extra = "".join(
                f" {key}={val}" for key, val in sorted(s.meta.items())
            )
            lines.append(
                f"  straggler: {s.name} worker {s.worker} "
                f"{s.duration:.3e} s{extra}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class KernelLaunch:
    """One modeled kernel launch (GPU) or parallel region (CPU)."""

    phase: str
    name: str
    seconds: float
    overhead_seconds: float
    items: int = 0
    launches: int = 1


class MachineProfile:
    """Per-phase timelines plus the launch/divergence ledger for one
    modeled machine execution."""

    def __init__(self, machine: str) -> None:
        """An empty profile for machine *machine* ("serial", "openmp",
        "cuda", ...)."""
        self.machine = machine
        self.timelines: Dict[str, ExecutionTimeline] = {}
        self.launches: List[KernelLaunch] = []
        self.divergence: Dict[str, float] = {}

    def add_timeline(self, phase: str, timeline: ExecutionTimeline) -> None:
        """Attach the schedule timeline for *phase*."""
        self.timelines[phase] = timeline

    def add_launch(
        self,
        phase: str,
        name: str,
        seconds: float,
        overhead_seconds: float,
        items: int = 0,
        launches: int = 1,
    ) -> None:
        """Record one kernel launch / parallel region in the ledger."""
        self.launches.append(
            KernelLaunch(phase, name, float(seconds), float(overhead_seconds),
                         int(items), int(launches))
        )

    # -- derived reports ------------------------------------------------
    def launch_overhead(self) -> Dict[str, Tuple[float, float]]:
        """Per-phase ``(overhead_seconds, total_seconds)`` — how much of
        each phase is launch/fork-join cost rather than work (§6.1's
        small-graph ceiling)."""
        out: Dict[str, Tuple[float, float]] = {}
        for launch in self.launches:
            ovh, tot = out.get(launch.phase, (0.0, 0.0))
            out[launch.phase] = (ovh + launch.overhead_seconds,
                                 tot + launch.seconds)
        return out

    def stragglers(
        self,
        k: int = 5,
        phase: str = "cycle_processing",
        degrees: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Any]]:
        """Top-k straggler attribution for *phase*.

        Returns dicts with worker/seconds plus any producer metadata
        (``vertex``, ``cycles``); when *degrees* is given and a segment
        names a vertex, its degree is added — reproducing the paper's
        max-degree correlation (§6.2) as a first-class report.
        """
        timeline = self.timelines.get(phase)
        if timeline is None:
            return []
        out = []
        for s in timeline.stragglers(k):
            row: Dict[str, Any] = {
                "worker": s.worker,
                "seconds": s.duration,
                "name": s.name,
            }
            row.update(s.meta)
            vertex = s.meta.get("vertex")
            if degrees is not None and vertex is not None:
                row["degree"] = int(degrees[int(vertex)])
            out.append(row)
        return out

    def report(self, degrees: Optional[np.ndarray] = None, k: int = 3) -> str:
        """Human-readable profile summary for ``model --timeline``."""
        lines = [f"machine profile: {self.machine}"]
        for phase, timeline in self.timelines.items():
            lines.append(
                f"  {phase}: makespan {timeline.makespan:.3e} s, "
                f"occupancy {timeline.average_occupancy():.1%}, "
                f"imbalance {timeline.load_imbalance():.2f}x"
            )
        overhead = self.launch_overhead()
        for phase, (ovh, tot) in sorted(overhead.items()):
            if tot > 0:
                lines.append(
                    f"  {phase}: launch/fork overhead {ovh:.3e} s "
                    f"({ovh / tot:.1%} of {tot:.3e} s)"
                )
        for key, val in sorted(self.divergence.items()):
            lines.append(f"  divergence[{key}]: {val:.3f}")
        for row in self.stragglers(k, degrees=degrees):
            extra = "".join(
                f" {key}={val}"
                for key, val in sorted(row.items())
                if key not in ("worker", "seconds", "name")
            )
            lines.append(
                f"  straggler: worker {row['worker']} "
                f"{row['seconds']:.3e} s{extra}"
            )
        return "\n".join(lines)

"""Append-only campaign event journal (JSONL) with crash-safe reads.

Long campaigns need a durable, replayable record of *what happened* —
block retries, degradations, checkpoint writes, convergence snapshots —
that survives the process dying mid-line.  The journal is a plain JSONL
file:

* **append-only, line-buffered** — every event is one JSON object on
  one line, flushed as it is written; a crash can tear at most the
  final line;
* **self-numbering** — events carry a monotonically increasing ``seq``
  (continued across re-opens, so a resumed campaign appends after the
  crash point) plus a wall-clock ``ts``;
* **valid-prefix recovery** — :func:`read_journal` replays every intact
  line and tolerates a torn final line (``strict=True`` raises
  :class:`~repro.errors.JournalError` for corruption *before* the
  tail);
* **replayable** — :func:`summarize_journal` folds a journal into the
  same counts a live :class:`~repro.parallel.supervisor.RunReport`
  carries, so ``repro journal summarize`` cross-checks a finished (or
  half-finished) run without its process.

Emission is decoupled from the campaign code via a process-global
journal handle: drivers call :func:`journal_event` unconditionally,
which is a no-op single ``None`` check unless a journal is installed
(``--journal`` / :func:`journaling`).  Journaling therefore never
changes results — it only appends to a side file.
"""

from __future__ import annotations

import contextlib
import errno
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import JournalError

__all__ = [
    "Journal",
    "get_journal",
    "set_journal",
    "journal_event",
    "journaling",
    "read_journal",
    "summarize_journal",
    "render_summary",
]

PathLike = Union[str, Path]

# Fault-injection seam (see repro.util.faults): journal writes go
# through this module attribute so disk-full tests can fail them
# without touching the real file object.
_wrap_stream = lambda fh: fh  # noqa: E731 - deliberate seam, like checkpoint's


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays so campaign payloads serialize."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


class Journal:
    """An open, line-buffered append-only event journal.

    Journal writes are best-effort by contract: an I/O failure on
    *emit* (classically ENOSPC) must never kill the campaign or daemon
    that was merely narrating its progress.  The first failed write
    flips the journal into a **degraded** state — the failure is
    counted (``journal.write_errors_total``) and every later emit
    becomes a cheap no-op — rather than raising into code that treats
    journaling as free.
    """

    def __init__(self, path: PathLike) -> None:
        """Open (creating or appending to) the journal at *path*.

        When the file already has events, numbering continues after the
        last intact line — a resumed campaign's events sort after the
        crash point.  A torn final line (crash mid-write) is
        truncated away first, so the next event starts on a fresh line
        instead of gluing itself onto the partial record.
        """
        self.path = Path(path)
        self.degraded = False
        # One journal is shared by every thread of a campaign or the
        # serve daemon; the lock keeps (seq assignment, line write)
        # atomic so records never interleave or reuse a seq.
        self._lock = threading.Lock()
        try:
            if self.path.exists():
                existing, torn, tail_offset = _read_lines(self.path)
                if torn:
                    with open(self.path, "r+b") as fh:
                        fh.truncate(tail_offset)
            else:
                existing = []
            self._seq = (existing[-1]["seq"] + 1) if existing else 0
            # buffering=1: line-buffered — each event line is pushed to
            # the OS as soon as it is complete.
            self._fh = open(self.path, "a", buffering=1, encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {path}: {exc}") from exc

    def emit(self, kind: str, **fields: Any) -> int:
        """Append one event line; returns its sequence number.

        Returns ``-1`` without writing once the journal has degraded
        (a previous write failed); the event is dropped, never raised.
        """
        with self._lock:
            if self.degraded:
                return -1
            seq = self._seq
            record: Dict[str, Any] = {
                "seq": seq, "ts": time.time(), "kind": kind,
            }
            record.update(fields)
            line = json.dumps(
                record, default=_jsonable, separators=(",", ":")
            )
            try:
                fh = _wrap_stream(self._fh)
                fh.write(line + "\n")
                fh.flush()
            except OSError as exc:
                self._degrade(exc)
                return -1
            self._seq += 1
            return seq

    def _degrade(self, exc: OSError) -> None:
        """Flip into drop-everything mode after a failed write."""
        # Import here: registry -> journal would otherwise be a cycle.
        from repro.perf.registry import get_registry

        self.degraded = True
        registry = get_registry()
        registry.count("journal.write_errors_total", 1)
        if exc.errno == errno.ENOSPC:
            registry.count("journal.disk_full_total", 1)
        registry.gauge("journal.degraded", 1.0)

    def close(self) -> None:
        """Flush and close the underlying file (best-effort: a full
        disk at close time is already recorded, not re-raised)."""
        if not self._fh.closed:
            with contextlib.suppress(OSError):
                self._fh.flush()
            with contextlib.suppress(OSError):
                self._fh.close()

    def __enter__(self) -> "Journal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close on scope exit; never swallows exceptions."""
        self.close()
        return False


_JOURNAL: Optional[Journal] = None


def get_journal() -> Optional[Journal]:
    """The installed process-global journal, or ``None``."""
    return _JOURNAL


def set_journal(journal: Optional[Journal]) -> None:
    """Install *journal* as the process-global event sink (``None``
    turns journaling off)."""
    global _JOURNAL
    _JOURNAL = journal


def journal_event(kind: str, **fields: Any) -> None:
    """Emit an event to the installed journal; a single ``None`` check
    when journaling is off — the instrumentation the campaign drivers
    call unconditionally."""
    journal = _JOURNAL
    if journal is not None:
        journal.emit(kind, **fields)


@contextlib.contextmanager
def journaling(path: PathLike) -> Iterator[Journal]:
    """Scope that opens a journal at *path* and installs it globally::

        with journaling("run.jsonl"):
            sample_cloud_pool(...)

    The previous journal (usually ``None``) is restored — and the file
    closed — on exit, crash or not.
    """
    global _JOURNAL
    previous = _JOURNAL
    journal = Journal(path)
    _JOURNAL = journal
    try:
        yield journal
    finally:
        _JOURNAL = previous
        journal.close()


# ----------------------------------------------------------------------
# Reading / replay


def _read_lines(path: Path) -> Tuple[List[Dict[str, Any]], bool, int]:
    """(intact events, torn_tail, tail_offset).  Stops at the first
    corrupt line; the corruption counts as a torn tail only if nothing
    intact follows it (i.e. it *is* the tail).  ``tail_offset`` is the
    byte offset where the torn tail starts (the file size when intact),
    which is where an appending re-open truncates to."""
    events: List[Dict[str, Any]] = []
    torn = False
    with open(path, "rb") as fh:
        data = fh.read()
    raw_lines = data.split(b"\n")
    offset = 0
    tail_offset = len(data)
    for i, raw in enumerate(raw_lines):
        try:
            if not raw.strip():
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
                if not isinstance(event, dict) or "kind" not in event:
                    raise ValueError("not an event object")
            except (ValueError, UnicodeDecodeError):
                torn = True
                remainder = b"".join(raw_lines[i + 1:]).strip()
                if remainder:
                    # Corruption mid-file: the prefix is still valid,
                    # but this is worse than a torn tail.
                    raise JournalError(
                        f"{path}: corrupt journal line {i} with intact "
                        "lines after it"
                    ) from None
                tail_offset = offset
                break
            events.append(event)
        finally:
            offset += len(raw) + 1
    return events, torn, tail_offset


def read_journal(
    path: PathLike, strict: bool = False
) -> List[Dict[str, Any]]:
    """Replay the journal at *path*, returning its intact events.

    A torn final line (the signature of a crash mid-write) is silently
    dropped; corruption *before* intact lines always raises
    :class:`~repro.errors.JournalError`, and ``strict=True`` raises for
    a torn tail too.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    events, torn, _tail = _read_lines(path)
    if torn and strict:
        raise JournalError(f"{path}: torn final line")
    return events


def summarize_journal(path: PathLike) -> Dict[str, Any]:
    """Fold a journal into campaign-level counts.

    The block/retry/timeout/quarantine counts are defined to match the
    corresponding :class:`~repro.parallel.supervisor.RunReport` fields,
    so a summarized journal cross-checks the live report of the run
    that wrote it.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    events, torn, _tail = _read_lines(path)
    kinds: Dict[str, int] = {}
    summary: Dict[str, Any] = {
        "path": str(path),
        "events": len(events),
        "torn_tail": torn,
        "kinds": kinds,
        "campaign": {},
        "states": 0,
        "blocks_completed": 0,
        "retries": 0,
        "timeouts": 0,
        "pool_rebuilds": 0,
        "quarantined": [],
        "degraded": 0,
        "deadline_hit": False,
        "checkpoints": 0,
        "completed": False,
        "frustration_bound": None,
        "serve_degraded": 0,
        "serve_recovered": 0,
        "disk_full": 0,
        "steal": None,
    }
    for event in events:
        kind = event["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "campaign_started":
            summary["campaign"] = {
                k: v for k, v in event.items()
                if k not in ("seq", "ts", "kind")
            }
        elif kind == "block_completed":
            summary["blocks_completed"] += 1
            summary["states"] += int(event.get("states", 0))
        elif kind == "block_retried":
            summary["retries"] += 1
        elif kind == "block_timeout":
            summary["timeouts"] += 1
        elif kind == "pool_rebuilt":
            summary["pool_rebuilds"] += 1
        elif kind == "block_quarantined":
            summary["quarantined"].append(int(event.get("block", -1)))
        elif kind == "block_degraded":
            summary["degraded"] += 1
        elif kind == "deadline_hit":
            summary["deadline_hit"] = True
        elif kind == "checkpoint_written":
            summary["checkpoints"] += 1
        elif kind == "campaign_completed":
            summary["completed"] = True
            if "states" in event:
                summary["states"] = int(event["states"])
        elif kind == "convergence":
            if "frustration_upper_bound" in event:
                summary["frustration_bound"] = event["frustration_upper_bound"]
        elif kind == "serve_degraded":
            summary["serve_degraded"] += 1
        elif kind == "serve_recovered":
            summary["serve_recovered"] += 1
        elif kind == "disk_full":
            summary["disk_full"] += 1
        elif kind == "steal_summary":
            # Keep the last summary: a resumed campaign's final steal
            # picture supersedes the pre-crash one.
            summary["steal"] = {
                "workers": int(event.get("workers", 0)),
                "workers_used": int(event.get("workers_used", 0)),
                "blocks": dict(event.get("blocks", {})),
                "states": dict(event.get("states", {})),
            }
    return summary


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_journal` output."""
    lines = [f"journal: {summary['path']}"]
    lines.append(
        f"  events: {summary['events']}"
        + (" (torn final line dropped)" if summary["torn_tail"] else "")
    )
    campaign = summary["campaign"]
    if campaign:
        spec = ", ".join(f"{k}={v}" for k, v in sorted(campaign.items()))
        lines.append(f"  campaign: {spec}")
    lines.append(
        f"  completed: {'yes' if summary['completed'] else 'no'}; "
        f"states: {summary['states']}; "
        f"blocks completed: {summary['blocks_completed']}"
    )
    lines.append(
        f"  retries: {summary['retries']}; timeouts: {summary['timeouts']}; "
        f"pool rebuilds: {summary['pool_rebuilds']}; "
        f"degraded: {summary['degraded']}"
    )
    if summary["quarantined"]:
        lines.append(f"  quarantined blocks: {summary['quarantined']}")
    if summary["deadline_hit"]:
        lines.append("  deadline hit: campaign stopped early")
    if summary["checkpoints"]:
        lines.append(f"  checkpoints written: {summary['checkpoints']}")
    if summary["frustration_bound"] is not None:
        lines.append(
            f"  last frustration upper bound: {summary['frustration_bound']}"
        )
    if summary.get("serve_degraded") or summary.get("serve_recovered"):
        lines.append(
            f"  breaker: degraded {summary.get('serve_degraded', 0)}x, "
            f"recovered {summary.get('serve_recovered', 0)}x"
        )
    if summary.get("disk_full"):
        lines.append(f"  disk-full events: {summary['disk_full']}")
    steal = summary.get("steal")
    if steal:
        per_worker = ", ".join(
            f"pid {pid}: {count}"
            for pid, count in sorted(steal["blocks"].items())
        )
        lines.append(
            f"  steal: {steal['workers_used']}/{steal['workers']} workers "
            f"took blocks ({per_worker})"
        )
    other = {
        k: v for k, v in sorted(summary["kinds"].items())
        if k not in (
            "campaign_started", "campaign_completed", "block_completed",
            "block_retried", "block_timeout", "pool_rebuilt",
            "block_quarantined", "block_degraded", "deadline_hit",
            "checkpoint_written", "convergence",
            "serve_degraded", "serve_recovered", "disk_full",
            "steal_summary",
        )
    }
    if other:
        lines.append(
            "  other events: "
            + ", ".join(f"{k}={v}" for k, v in other.items())
        )
    return "\n".join(lines)

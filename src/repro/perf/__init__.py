"""Observability subsystem: metrics registry, span tracing, exporters,
phase timers, work counters, the Table-4 memory model, and text
rendering.

``repro.perf`` is the single entry point for everything performance-
and observability-related:

* :class:`MetricsRegistry` / :func:`get_registry` / :func:`collecting`
  — process-global, thread- and worker-safe counters, gauges, and
  histogram timers (:mod:`repro.perf.registry`).
* :func:`span` / :class:`Tracer` — nested phase spans recorded into
  the active registry (:mod:`repro.perf.tracing`).
* :func:`phase_table` / :func:`to_prometheus` / :func:`write_metrics`
  — exporters for people and machines (:mod:`repro.perf.export`).
* :class:`ExecutionTimeline` / :class:`MachineProfile` — per-worker
  schedule timelines with occupancy/straggler/divergence reports from
  the simulated machines (:mod:`repro.perf.timeline`), and their
  Chrome/Perfetto export (:mod:`repro.perf.trace_export`), which also
  renders real span traces (:class:`TraceCollector`).
* :class:`Journal` / :func:`journal_event` — the append-only campaign
  event journal with crash-safe replay (:mod:`repro.perf.journal`).
* :class:`PhaseTimer` and :class:`Counters` — legacy per-call-site
  accumulators (:mod:`repro.perf.compat`); they feed the Fig. 10/11
  experiments and the simulated-machine cost models, and coexist with
  the registry (spans time *phases of a campaign*, timers/counters
  profile *one balance call*).
* :func:`trace_cycle` — the Fig. 6 cycle-walk narrator
  (:mod:`repro.core.trace`), re-exported here because "why did this
  cycle balance that way" is the micro end of the same observability
  story.
"""

from repro.perf.compat import Counters, PhaseTimer, RegionStat
from repro.perf.flight import (
    FlightRecorder,
    find_flight_dumps,
    flight_clear_inflight,
    flight_dump,
    flight_event,
    flight_mark_inflight,
    get_flight_recorder,
    install_flight_recorder,
    iter_flight_dumps,
    read_flight_dump,
    set_flight_recorder,
)
from repro.perf.export import (
    phase_seconds,
    phase_table,
    span_stats,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.perf.journal import (
    Journal,
    get_journal,
    journal_event,
    journaling,
    read_journal,
    render_summary,
    set_journal,
    summarize_journal,
)
from repro.perf.memory import (
    CUDA_DEVICE,
    CUDA_HOST,
    OPENMP_HOST,
    MemoryModel,
    cuda_device_mb,
    cuda_host_mb,
    openmp_host_mb,
    python_actual_mb,
)
from repro.perf.registry import (
    DEFAULT_BUCKET_EDGES,
    Histogram,
    MetricsRegistry,
    collecting,
    get_registry,
    metrics_enabled,
    reset_global_registry,
    set_metrics_enabled,
)
from repro.perf.report import TextTable, format_series, geomean
from repro.perf.timeline import (
    ExecutionTimeline,
    KernelLaunch,
    MachineProfile,
    TimelineSegment,
)
from repro.perf.trace_export import (
    REQUIRED_EVENT_KEYS,
    events_for_trace,
    load_chrome_trace,
    profile_to_events,
    spans_to_events,
    timeline_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.perf.tracectx import (
    TraceContext,
    current_trace,
    mint_trace,
    trace_scope,
)
from repro.perf.tracing import (
    SPAN_PREFIX,
    Span,
    SpanEvent,
    TraceCollector,
    Tracer,
    absorb_shard,
    collecting_trace,
    collector_shard,
    get_trace_collector,
    get_tracer,
    set_trace_collector,
    span,
)

__all__ = [
    "Counters",
    "RegionStat",
    "PhaseTimer",
    "MemoryModel",
    "OPENMP_HOST",
    "CUDA_DEVICE",
    "CUDA_HOST",
    "openmp_host_mb",
    "cuda_device_mb",
    "cuda_host_mb",
    "python_actual_mb",
    "TextTable",
    "format_series",
    "geomean",
    "DEFAULT_BUCKET_EDGES",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "get_registry",
    "metrics_enabled",
    "reset_global_registry",
    "set_metrics_enabled",
    "SPAN_PREFIX",
    "Span",
    "SpanEvent",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "absorb_shard",
    "collecting_trace",
    "collector_shard",
    "current_trace",
    "get_trace_collector",
    "get_tracer",
    "mint_trace",
    "set_trace_collector",
    "span",
    "trace_scope",
    "FlightRecorder",
    "find_flight_dumps",
    "flight_clear_inflight",
    "flight_dump",
    "flight_event",
    "flight_mark_inflight",
    "get_flight_recorder",
    "install_flight_recorder",
    "iter_flight_dumps",
    "read_flight_dump",
    "set_flight_recorder",
    "TimelineSegment",
    "ExecutionTimeline",
    "KernelLaunch",
    "MachineProfile",
    "REQUIRED_EVENT_KEYS",
    "events_for_trace",
    "spans_to_events",
    "timeline_to_events",
    "profile_to_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "Journal",
    "get_journal",
    "set_journal",
    "journal_event",
    "journaling",
    "read_journal",
    "summarize_journal",
    "render_summary",
    "phase_seconds",
    "phase_table",
    "span_stats",
    "to_json",
    "to_prometheus",
    "write_metrics",
    "CycleTrace",
    "TraceStep",
    "trace_cycle",
]

# The cycle narrator lives in repro.core.trace, which (through
# repro.core) imports kernels that themselves import repro.perf — so
# its re-export here must be lazy (PEP 562) to avoid a circular import
# at package load.
_CORE_TRACE_EXPORTS = ("CycleTrace", "TraceStep", "trace_cycle")


def __getattr__(name: str):
    if name in _CORE_TRACE_EXPORTS:
        from repro.core import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

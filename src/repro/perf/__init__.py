"""Performance infrastructure: counters, phase timers, the Table-4
memory model, and text table/series rendering.
"""

from repro.perf.counters import Counters, RegionStat
from repro.perf.timers import PhaseTimer
from repro.perf.memory import (
    CUDA_DEVICE,
    CUDA_HOST,
    OPENMP_HOST,
    MemoryModel,
    cuda_device_mb,
    cuda_host_mb,
    openmp_host_mb,
    python_actual_mb,
)
from repro.perf.report import TextTable, format_series, geomean

__all__ = [
    "Counters",
    "RegionStat",
    "PhaseTimer",
    "MemoryModel",
    "OPENMP_HOST",
    "CUDA_DEVICE",
    "CUDA_HOST",
    "openmp_host_mb",
    "cuda_device_mb",
    "cuda_host_mb",
    "python_actual_mb",
    "TextTable",
    "format_series",
    "geomean",
]

"""Observability subsystem: metrics registry, span tracing, exporters,
phase timers, work counters, the Table-4 memory model, and text
rendering.

``repro.perf`` is the single entry point for everything performance-
and observability-related:

* :class:`MetricsRegistry` / :func:`get_registry` / :func:`collecting`
  — process-global, thread- and worker-safe counters, gauges, and
  histogram timers (:mod:`repro.perf.registry`).
* :func:`span` / :class:`Tracer` — nested phase spans recorded into
  the active registry (:mod:`repro.perf.tracing`).
* :func:`phase_table` / :func:`to_prometheus` / :func:`write_metrics`
  — exporters for people and machines (:mod:`repro.perf.export`).
* :class:`PhaseTimer` and :class:`Counters` — the per-call-site
  accumulators the kernels have always taken; they feed the Fig. 10/11
  experiments and the simulated-machine cost models, and coexist with
  the registry (spans time *phases of a campaign*, timers/counters
  profile *one balance call*).
* :func:`trace_cycle` — the Fig. 6 cycle-walk narrator
  (:mod:`repro.core.trace`), re-exported here because "why did this
  cycle balance that way" is the micro end of the same observability
  story.
"""

from repro.perf.counters import Counters, RegionStat
from repro.perf.export import (
    phase_seconds,
    phase_table,
    span_stats,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.perf.memory import (
    CUDA_DEVICE,
    CUDA_HOST,
    OPENMP_HOST,
    MemoryModel,
    cuda_device_mb,
    cuda_host_mb,
    openmp_host_mb,
    python_actual_mb,
)
from repro.perf.registry import (
    DEFAULT_BUCKET_EDGES,
    Histogram,
    MetricsRegistry,
    collecting,
    get_registry,
    metrics_enabled,
    reset_global_registry,
    set_metrics_enabled,
)
from repro.perf.report import TextTable, format_series, geomean
from repro.perf.timers import PhaseTimer
from repro.perf.tracing import SPAN_PREFIX, Span, Tracer, get_tracer, span

__all__ = [
    "Counters",
    "RegionStat",
    "PhaseTimer",
    "MemoryModel",
    "OPENMP_HOST",
    "CUDA_DEVICE",
    "CUDA_HOST",
    "openmp_host_mb",
    "cuda_device_mb",
    "cuda_host_mb",
    "python_actual_mb",
    "TextTable",
    "format_series",
    "geomean",
    "DEFAULT_BUCKET_EDGES",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "get_registry",
    "metrics_enabled",
    "reset_global_registry",
    "set_metrics_enabled",
    "SPAN_PREFIX",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "phase_seconds",
    "phase_table",
    "span_stats",
    "to_json",
    "to_prometheus",
    "write_metrics",
    "CycleTrace",
    "TraceStep",
    "trace_cycle",
]

# The cycle narrator lives in repro.core.trace, which (through
# repro.core) imports kernels that themselves import repro.perf — so
# its re-export here must be lazy (PEP 562) to avoid a circular import
# at package load.
_CORE_TRACE_EXPORTS = ("CycleTrace", "TraceStep", "trace_cycle")


def __getattr__(name: str):
    if name in _CORE_TRACE_EXPORTS:
        from repro.core import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

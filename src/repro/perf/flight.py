"""Crash flight recorder: a black box that survives worker death.

A :class:`FlightRecorder` keeps a fixed-size ring of recent events
(journal-style dicts: kind + fields + wall time) in one process and
knows how to dump itself *atomically* to a per-pid JSON file.  The
design is crash-only, so the dump discipline matters more than the
ring:

* :meth:`mark_inflight` — called at the start of every unit of work
  (a pool block, a growth round) — records what is about to run and
  dumps **immediately**.  A worker killed with ``SIGKILL`` mid-block
  therefore always leaves a readable dump naming its in-flight block;
  no exit hook is needed because the hook already ran at entry.
* unhandled exceptions (``sys.excepthook`` + ``threading.excepthook``)
  and ``SIGTERM`` dump with the failure recorded, then chain to the
  previous hook/handler so normal teardown still happens.
* every Nth recorded event re-dumps (``autodump_every``), bounding how
  stale a crash dump can be in steady state.

Dumps are ``tmp + fsync + os.replace`` — a reader never sees a torn
file, and repeated dumps overwrite in place (one file per pid,
``flight-<pid>.json``), so a long campaign leaves one small file per
process, not a log.

The module-global recorder mirrors the journal's shape:
:func:`install_flight_recorder` arms it, :func:`flight_event` is a
cheap no-op until then, and :func:`read_flight_dump` is the validating
loader the CLI / chaos tests use.
"""

from __future__ import annotations

import collections
import contextlib
import json
import os
import signal
import sys
import tempfile
import threading
import time
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.errors import ReproError

__all__ = [
    "FlightRecorder",
    "install_flight_recorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "flight_event",
    "flight_mark_inflight",
    "flight_clear_inflight",
    "flight_dump",
    "read_flight_dump",
    "find_flight_dumps",
    "iter_flight_dumps",
]

#: Dump-format version, checked by :func:`read_flight_dump`.
DUMP_VERSION = 1

#: Default ring capacity — enough for the tail of a campaign without
#: ever making a dump large.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded in-memory event ring with atomic crash dumps."""

    def __init__(self, path: str, capacity: int = DEFAULT_CAPACITY,
                 autodump_every: int = 32) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.path = path
        self.capacity = capacity
        self.autodump_every = autodump_every
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = collections.deque(
            maxlen=capacity)
        self._inflight: Optional[Dict[str, Any]] = None
        self._since_dump = 0
        self._prev_excepthook = None
        self._prev_thread_hook = None
        self._prev_sigterm = None

    # -- recording -----------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event to the ring (oldest events fall off); every
        ``autodump_every`` events the ring is re-dumped to disk."""
        event = {"kind": kind, "wall": time.time(), **fields}
        dump_now = False
        with self._lock:
            self._ring.append(event)
            self._since_dump += 1
            if self.autodump_every and self._since_dump >= self.autodump_every:
                self._since_dump = 0
                dump_now = True
        if dump_now:
            self.dump()

    def mark_inflight(self, **info: Any) -> None:
        """Declare the unit of work about to run and dump immediately,
        so an abrupt kill mid-work leaves a dump naming it."""
        with self._lock:
            self._inflight = {"since": time.time(), **info}
        self.record("inflight", **info)
        self.dump()

    def clear_inflight(self, **fields: Any) -> None:
        """The in-flight work finished normally; recorded but not
        urgent enough to force a dump (the next one clears it)."""
        with self._lock:
            self._inflight = None
        if fields:
            self.record("completed", **fields)

    # -- dumping -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The dump document: versioned, self-describing JSON."""
        with self._lock:
            events = list(self._ring)
            inflight = dict(self._inflight) if self._inflight else None
        return {
            "version": DUMP_VERSION,
            "pid": os.getpid(),
            "wall": time.time(),
            "inflight": inflight,
            "events": events,
        }

    def dump(self) -> Optional[str]:
        """Atomically write the current snapshot to ``self.path``;
        returns the path, or ``None`` if the write failed (a flight
        recorder must never take the process down with it)."""
        doc = self.snapshot()
        directory = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=os.path.basename(self.path) + ".", dir=directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, separators=(",", ":"), default=str)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            return None
        return self.path

    # -- crash hooks ---------------------------------------------------

    def install_hooks(self, sigterm: bool = False) -> None:
        """Arm dump-on-failure: unhandled exceptions on any thread
        always dump; ``sigterm=True`` additionally dumps on SIGTERM
        (only from the main thread — signal handlers can't be set
        elsewhere).  Previous hooks/handlers are chained after the
        dump, so this never changes how the process actually dies."""
        self._prev_excepthook = sys.excepthook

        def _excepthook(exc_type, exc, tb):  # pragma: no cover - crash path
            self.record("unhandled_exception", error=repr(exc))
            self.dump()
            (self._prev_excepthook or sys.__excepthook__)(exc_type, exc, tb)

        sys.excepthook = _excepthook

        self._prev_thread_hook = threading.excepthook

        def _thread_hook(args):  # pragma: no cover - crash path
            self.record("unhandled_exception",
                        error=repr(args.exc_value),
                        thread=getattr(args.thread, "name", None))
            self.dump()
            (self._prev_thread_hook or threading.__excepthook__)(args)

        threading.excepthook = _thread_hook

        if sigterm and threading.current_thread() is threading.main_thread():
            prev = signal.getsignal(signal.SIGTERM)
            self._prev_sigterm = prev

            def _on_sigterm(signum, frame):  # pragma: no cover - crash path
                self.record("sigterm")
                self.dump()
                if callable(prev):
                    prev(signum, frame)
                else:
                    signal.signal(signal.SIGTERM, signal.SIG_DFL)
                    os.kill(os.getpid(), signal.SIGTERM)

            signal.signal(signal.SIGTERM, _on_sigterm)


# -- module-global recorder (journal-style) ----------------------------

_RECORDER: Optional[FlightRecorder] = None


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, or ``None`` (recording off)."""
    return _RECORDER


def set_flight_recorder(recorder: Optional[FlightRecorder]) -> None:
    """Install *recorder* as the process-global flight recorder."""
    global _RECORDER
    _RECORDER = recorder


def install_flight_recorder(
    directory: str,
    capacity: int = DEFAULT_CAPACITY,
    sigterm: bool = False,
    **first_event: Any,
) -> FlightRecorder:
    """Create ``<directory>/flight-<pid>.json``-backed recorder, arm
    its crash hooks, install it globally, and return it.  Extra kwargs
    are recorded as a ``started`` event (who/what this process is)."""
    os.makedirs(directory, exist_ok=True)
    recorder = FlightRecorder(
        os.path.join(directory, f"flight-{os.getpid()}.json"),
        capacity=capacity,
    )
    recorder.install_hooks(sigterm=sigterm)
    recorder.record("started", argv0=sys.argv[0] if sys.argv else "",
                    **first_event)
    set_flight_recorder(recorder)
    return recorder


def flight_event(kind: str, **fields: Any) -> None:
    """Record into the global recorder; cheap no-op when none."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.record(kind, **fields)


def flight_mark_inflight(**info: Any) -> None:
    """Mark in-flight work on the global recorder (no-op when none)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.mark_inflight(**info)


def flight_clear_inflight(**fields: Any) -> None:
    """Clear in-flight work on the global recorder (no-op when none)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.clear_inflight(**fields)


def flight_dump() -> Optional[str]:
    """Force a dump of the global recorder; returns the path or
    ``None`` when no recorder is installed / the write failed."""
    recorder = _RECORDER
    if recorder is not None:
        return recorder.dump()
    return None


# -- reading dumps -----------------------------------------------------

def read_flight_dump(path: str) -> Dict[str, Any]:
    """Load and validate one flight-recorder dump; raises
    :class:`~repro.errors.ReproError` on a torn or alien file."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ReproError(f"unreadable flight dump {path!r}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != DUMP_VERSION:
        raise ReproError(
            f"{path!r} is not a version-{DUMP_VERSION} flight dump"
        )
    for key in ("pid", "wall", "events"):
        if key not in doc:
            raise ReproError(f"flight dump {path!r} missing {key!r}")
    if not isinstance(doc["events"], list):
        raise ReproError(f"flight dump {path!r} events must be a list")
    return doc


def find_flight_dumps(directory: str) -> List[str]:
    """All ``flight-*.json`` dump paths under *directory*, sorted."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, n)
        for n in names
        if n.startswith("flight-") and n.endswith(".json")
    )


def iter_flight_dumps(directory: str) -> Iterator[Dict[str, Any]]:
    """Yield every readable dump under *directory* (torn files are
    skipped — a half-written tmp should never fail a post-mortem)."""
    for path in find_flight_dumps(directory):
        try:
            yield read_flight_dump(path)
        except ReproError:
            continue

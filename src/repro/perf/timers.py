"""Deprecated import path for :class:`~repro.perf.compat.PhaseTimer`.

Phase timing moved to the span tracer
(:mod:`repro.perf.tracing`) in PR 4; the legacy class itself lives in
:mod:`repro.perf.compat`.  Importing from here keeps working but warns.
"""

from __future__ import annotations

import warnings

from repro.perf.compat import PhaseTimer

__all__ = ["PhaseTimer"]

warnings.warn(
    "repro.perf.timers is deprecated: import PhaseTimer from "
    "repro.perf.compat, or record phases with repro.perf.tracing.span",
    DeprecationWarning,
    stacklevel=2,
)

"""Phase timing for the kernel-breakdown experiment (Fig. 11).

:class:`PhaseTimer` accumulates wall-clock time per named phase across
repeated runs (1000 trees in the paper) and renders the relative
breakdown the paper plots: tree generation, labeling, cycle processing,
Harary bipartitioning, status update.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["PhaseTimer"]


@dataclass
class PhaseTimer:
    """Accumulating named-phase timer.

    Use as ``with timer.phase("cycles"): ...``.  Phases may repeat;
    times accumulate.  Nesting different phases is allowed and each
    accumulates its own wall time independently (the outer phase
    includes the inner — match the paper by timing disjoint phases).
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one occurrence of the named phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record externally measured (or modeled) time for a phase."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + count

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total time per phase (sums to 1 when nonempty)."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.seconds}
        return {name: t / total for name, t in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulated phases into this one."""
        for name, t in other.seconds.items():
            self.add(name, t, other.counts.get(name, 1))

    def render(self, title: str = "phase breakdown") -> str:
        """Multi-line text rendering, longest phase first."""
        lines = [title]
        frac = self.breakdown()
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            lines.append(
                f"  {name:<24s} {self.seconds[name]:>10.4f}s  {frac[name]:>6.1%}"
            )
        return "\n".join(lines)

"""Terminal rendering of small graphs, trees, and consensus attributes.

Pure-text output (no plotting dependencies): adjacency summaries with
signed edges, tree drawings like the Fig. 6 sketch, bipartition
listings, and unicode bar charts for per-vertex attributes.  Intended
for the worked examples and debugging sessions, and capped at sizes a
terminal can show.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import SignedGraph
from repro.harary.bipartition import HararyBipartition
from repro.trees.tree import SpanningTree

__all__ = [
    "render_edges",
    "render_tree",
    "render_bipartition",
    "render_bars",
]

_MAX_RENDER = 200


def render_edges(graph: SignedGraph, max_vertices: int = _MAX_RENDER) -> str:
    """Signed adjacency listing: one line per vertex, ``+``/``-`` marks."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ReproError(f"graph too large to render ({n} > {max_vertices})")
    width = len(str(n - 1))
    lines = [f"signed graph: {n} vertices, {graph.num_edges} edges"]
    for v in range(n):
        parts = []
        for w, e in zip(graph.neighbors(v), graph.incident_edges(v)):
            mark = "+" if graph.edge_sign[e] > 0 else "-"
            parts.append(f"{mark}{int(w)}")
        lines.append(f"  {v:>{width}d}: " + " ".join(parts))
    return "\n".join(lines)


def render_tree(
    tree: SpanningTree,
    labels: np.ndarray | None = None,
    max_vertices: int = _MAX_RENDER,
) -> str:
    """Indented tree drawing (root first, children in id order).

    ``labels`` optionally annotates each vertex (e.g. the new pre-order
    ids from a :class:`~repro.core.labeling.Labeling`).
    """
    n = tree.num_vertices
    if n > max_vertices:
        raise ReproError(f"tree too large to render ({n} > {max_vertices})")
    lines = [f"spanning tree: root {tree.root}, depth {tree.depth}"]

    def visit(v: int, prefix: str, is_last: bool) -> None:
        connector = "" if v == tree.root else ("└── " if is_last else "├── ")
        note = f"  [{labels[v]}]" if labels is not None else ""
        lines.append(f"{prefix}{connector}{v}{note}")
        kids = list(tree.children_of(v))
        child_prefix = prefix + (
            "" if v == tree.root else ("    " if is_last else "│   ")
        )
        for i, c in enumerate(kids):
            visit(int(c), child_prefix, i == len(kids) - 1)

    visit(tree.root, "", True)
    return "\n".join(lines)


def render_bipartition(
    bip: HararyBipartition, max_vertices: int = _MAX_RENDER
) -> str:
    """Two-camp listing with sizes (the Fig. 6(i) view)."""
    n = bip.num_vertices
    if n > max_vertices:
        raise ReproError(f"bipartition too large to render ({n} > {max_vertices})")
    side0 = np.nonzero(bip.side == 0)[0]
    side1 = np.nonzero(bip.side == 1)[0]
    lines = [
        f"Harary bipartition: {len(side0)} vs {len(side1)}",
        "  side 0: " + " ".join(str(int(v)) for v in side0),
        "  side 1: " + " ".join(str(int(v)) for v in side1),
    ]
    return "\n".join(lines)


_BLOCKS = " ▏▎▍▌▋▊▉█"


def render_bars(
    values: np.ndarray,
    labels: list[str] | None = None,
    width: int = 30,
    vmax: float | None = None,
    max_rows: int = _MAX_RENDER,
) -> str:
    """Unicode horizontal bar chart of a non-negative attribute array."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) > max_rows:
        raise ReproError(f"too many rows to render ({len(values)} > {max_rows})")
    if np.any(values < 0):
        raise ReproError("bars require non-negative values")
    top = float(vmax) if vmax is not None else (float(values.max()) or 1.0)
    if top <= 0:
        top = 1.0
    names = labels if labels is not None else [str(i) for i in range(len(values))]
    if len(names) != len(values):
        raise ReproError("labels must match values")
    name_w = max((len(s) for s in names), default=1)
    lines = []
    for name, v in zip(names, values):
        frac = min(v / top, 1.0)
        cells = frac * width
        full = int(cells)
        rem = int(round((cells - full) * 8))
        bar = "█" * full + (_BLOCKS[rem] if rem and full < width else "")
        lines.append(f"{name:>{name_w}s} {bar:<{width}s} {v:.3f}")
    return "\n".join(lines)

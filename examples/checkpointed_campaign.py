#!/usr/bin/env python3
"""Checkpointed consensus campaign with convergence monitoring.

A production deployment of Alg. 2 runs thousands of states over hours;
this example shows the operational loop: sample in bursts, checkpoint
after each burst, watch the split-half reliability, and stop when the
status estimate is trustworthy.  Interrupting and restarting from the
checkpoint is bit-identical to an uninterrupted run.

Run:  python examples/checkpointed_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cloud import (
    consensus_communities,
    polarization,
    sample_cloud,
    split_half_agreement,
)
from repro.cloud.checkpoint import load_cloud, resume_cloud, save_cloud
from repro.graph.components import largest_connected_component
from repro.graph.datasets import load

graph, _ = largest_connected_component(load("A*_Instruments_core5", seed=0))
print(f"campaign target: consensus attributes for {graph}")

workdir = Path(tempfile.mkdtemp(prefix="repro_campaign_"))
ckpt = workdir / "cloud.npz"

# --- Burst 1: bootstrap and checkpoint. --------------------------------
cloud = sample_cloud(graph, 16, seed=42)
save_cloud(cloud, ckpt)
print(f"\nburst 1: {cloud.num_states} states, checkpointed to {ckpt.name}")

# --- Simulate a restart: reload and keep going in bursts. --------------
cloud = load_cloud(ckpt, graph)
target = 16
for burst in range(2, 5):
    target *= 2
    cloud = resume_cloud(
        cloud, target, seed=42, checkpoint_path=ckpt, checkpoint_every=16
    )
    reliability = split_half_agreement(graph, cloud.num_states, seed=7)
    print(f"burst {burst}: {cloud.num_states:4d} states, "
          f"split-half reliability {reliability:.3f}")
    if reliability > 0.9:
        print("  -> estimate is reliable; stopping early")
        break

# --- Verify the resumed campaign equals a straight-through run. --------
straight = sample_cloud(graph, cloud.num_states, seed=42)
assert np.array_equal(straight.status(), cloud.status()), "resume drift!"
print(f"\nresumed campaign verified bit-identical to a straight "
      f"{cloud.num_states}-state run")

# --- Read out the consensus picture. ------------------------------------
status = cloud.status()
communities = consensus_communities(cloud, threshold=0.85)
sizes = np.bincount(communities)
print(f"\nconsensus summary after {cloud.num_states} states:")
print(f"  status: mean {status.mean():.3f}, "
      f"90th pct {np.percentile(status, 90):.3f}")
print(f"  polarization: {polarization(cloud):.3f}")
print(f"  communities at 0.85 co-side: {len(sizes)} "
      f"(largest {sizes.max()} vertices)")
print(f"  frustration index <= {cloud.frustration_upper_bound():,}")

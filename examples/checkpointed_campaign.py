#!/usr/bin/env python3
"""Checkpointed consensus campaign with convergence monitoring.

A production deployment of Alg. 2 runs thousands of states over hours;
this example shows the operational loop: sample in bursts, checkpoint
after each burst, watch the split-half reliability, and stop when the
status estimate is trustworthy.  Interrupting and restarting from the
checkpoint is bit-identical to an uninterrupted run.

Run:  python examples/checkpointed_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cloud import (
    consensus_communities,
    polarization,
    sample_cloud,
    split_half_agreement,
)
from repro.cloud.checkpoint import recover_cloud, resume_cloud
from repro.graph.components import largest_connected_component
from repro.graph.datasets import load
from repro.util.faults import truncate_file

graph, _ = largest_connected_component(load("A*_Instruments_core5", seed=0))
print(f"campaign target: consensus attributes for {graph}")

workdir = Path(tempfile.mkdtemp(prefix="repro_campaign_"))
ckpt = workdir / "cloud.npz"

# --- Bursts 1–2: bootstrap and checkpoint. -----------------------------
# checkpoint_path stores the campaign (method, kernel, seed, batch size)
# inside the file; keep_checkpoints=2 rotates the previous good file to
# cloud.npz.1 on every later write.
cloud = sample_cloud(graph, 16, seed=42, checkpoint_path=ckpt,
                     keep_checkpoints=2)
print(f"\nburst 1: {cloud.num_states} states, checkpointed to {ckpt.name}")
cloud = resume_cloud(cloud, 32, checkpoint_path=ckpt, keep_checkpoints=2)
print(f"burst 2: {cloud.num_states} states")

# --- Simulate a crash + restart. ---------------------------------------
# Tear the newest checkpoint (as a kill mid-copy would); recover_cloud
# falls back through the rotation chain to the newest loadable file.
truncate_file(ckpt, fraction=0.3)
cloud, campaign, source = recover_cloud(ckpt, graph)
print(f"after simulated crash: recovered {cloud.num_states} states from "
      f"{source.name} (campaign: seed={campaign.seed}, "
      f"kernel={campaign.kernel!r})")

# Resume inherits the stored campaign — no need to respell seed=42, and
# respelling it *differently* would raise CheckpointError, not diverge.
target = cloud.num_states
for burst in range(3, 6):
    target *= 2
    cloud = resume_cloud(
        cloud, target, checkpoint_path=ckpt, checkpoint_every=16,
        keep_checkpoints=2,
    )
    reliability = split_half_agreement(graph, cloud.num_states, seed=7)
    print(f"burst {burst}: {cloud.num_states:4d} states, "
          f"split-half reliability {reliability:.3f}")
    if reliability > 0.9:
        print("  -> estimate is reliable; stopping early")
        break

# --- Verify the resumed campaign equals a straight-through run. --------
straight = sample_cloud(graph, cloud.num_states, seed=42)
assert np.array_equal(straight.status(), cloud.status()), "resume drift!"
print(f"\nresumed campaign verified bit-identical to a straight "
      f"{cloud.num_states}-state run")

# --- Read out the consensus picture. ------------------------------------
status = cloud.status()
communities = consensus_communities(cloud, threshold=0.85)
sizes = np.bincount(communities)
print(f"\nconsensus summary after {cloud.num_states} states:")
print(f"  status: mean {status.mean():.3f}, "
      f"90th pct {np.percentile(status, 90):.3f}")
print(f"  polarization: {polarization(cloud):.3f}")
print(f"  communities at 0.85 co-side: {len(sizes)} "
      f"(largest {sizes.max()} vertices)")
print(f"  frustration index <= {cloud.frustration_upper_bound():,}")

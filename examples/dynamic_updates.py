#!/usr/bin/env python3
"""Dynamic consensus: keep a balanced state fresh under sentiment updates.

Production sentiment networks change continuously.  This example drives
the :class:`repro.core.IncrementalBalancer` with a stream of edge-sign
flips and new relationships, showing that each update costs O(affected
cycles) instead of a full graphB+ rerun — the dynamic payoff of the
paper's contiguous-range labeling.

Also demonstrates the tracing and terminal-viz utilities on the paper's
Fig. 6 graph.

Run:  python examples/dynamic_updates.py
"""

import numpy as np

from repro.core import IncrementalBalancer, balance, is_balanced, label_tree
from repro.core.trace import trace_cycle
from repro.graph.datasets import fig6_graph, fig6_tree_edges
from repro.graph.generators import chung_lu_signed
from repro.graph.components import largest_connected_component
from repro.rng import as_generator
from repro.trees import bfs_tree, tree_from_edge_ids
from repro.viz import render_tree

# --- 1. The Fig. 6 walkthrough, narrated automatically. ---------------
g6 = fig6_graph()
ids = tuple(g6.find_edge(p, c) for p, c in fig6_tree_edges())
t6 = tree_from_edge_ids(g6, ids, root=0)
print(render_tree(t6, labels=label_tree(t6).new_id))
print()
print(trace_cycle(g6, t6, g6.find_edge(6, 7)).describe())

# --- 2. Incremental maintenance on a live network. --------------------
graph, _ = largest_connected_component(
    chung_lu_signed(4000, 12000, negative_fraction=0.25, seed=0)
)
tree = bfs_tree(graph, seed=0)
inc = IncrementalBalancer(graph, tree)
print(f"\nlive network: {graph}")
print(f"initial balanced state: {int(inc.flipped().sum())} switches")

rng = as_generator(42)
tree_flips = non_tree_flips = additions = 0
total_affected = 0
for step in range(200):
    roll = rng.random()
    if roll < 0.6:
        # Somebody changes their mind about an existing relationship.
        e = int(rng.integers(0, graph.num_edges))
        affected = inc.flip_sign(e)
        total_affected += affected
        if tree.in_tree[e]:
            tree_flips += 1
        else:
            non_tree_flips += 1
    else:
        # A brand-new relationship appears (O(1) to classify).
        u = int(rng.integers(0, graph.num_vertices))
        v = int(rng.integers(0, graph.num_vertices))
        if u != v:
            inc.add_edge(u, v, 1 if rng.random() < 0.8 else -1)
            additions += 1

print(f"\napplied 200 updates: {tree_flips} tree-edge flips, "
      f"{non_tree_flips} non-tree flips, {additions} new edges")
print(f"fundamental cycles re-evaluated incrementally: {total_affected:,} "
      f"(vs {graph.num_fundamental_cycles:,} per full rerun)")

# --- 3. Verify against a from-scratch rebalance. ----------------------
updated = graph.with_signs(inc.input_signs())
fresh = balance(updated, tree)
assert np.array_equal(inc.balanced_signs(), fresh.signs), "incremental drift!"
assert is_balanced(updated.with_signs(inc.balanced_signs()))
print("\nincremental state verified identical to a full graphB+ rerun")

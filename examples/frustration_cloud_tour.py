#!/usr/bin/env python3
"""Frustration-cloud tour: exact enumeration vs sampling vs exact
frustration index on small graphs.

Walks through the theory of §2 hands-on: spanning-tree blow-up, the
cloud of nearest balanced states, minimality of tree-based states, and
how the sampled cloud's best state bounds the exact frustration index.

Run:  python examples/frustration_cloud_tour.py
"""

import numpy as np

from repro.cloud import (
    exact_cloud,
    frustration_index_exact,
    frustration_local_search,
    is_nearest_state,
    sample_cloud,
)
from repro.core import balance
from repro.graph.datasets import fig1_sigma, highland_tribes_like
from repro.trees import all_spanning_trees, count_spanning_trees

# --- 1. Spanning-tree blow-up (§2.2). --------------------------------
sigma = fig1_sigma()
tribes = highland_tribes_like(seed=0)
print("spanning-tree counts (matrix-tree theorem, exact):")
print(f"  Fig. 1 Sigma (4 vertices, 5 edges):   {count_spanning_trees(sigma):,}")
print(f"  highland-tribes-like (16 v, {tribes.num_edges} e): "
      f"{count_spanning_trees(tribes):,}")
print("  -> enumerating all trees is hopeless beyond toy graphs; Alg. 2 samples.")

# --- 2. The exact cloud of Sigma (Figs. 1-3). ------------------------
cloud = exact_cloud(sigma)
print(f"\nexact cloud of Sigma: {cloud.num_states} tree states, "
      f"{cloud.num_unique_states} unique")
for key, mult in sorted(cloud.unique_states().items(), key=lambda kv: -kv[1]):
    signs = np.frombuffer(key, dtype=np.int8)
    flipped = np.nonzero(signs != sigma.edge_sign)[0]
    pairs = [(int(sigma.edge_u[e]), int(sigma.edge_v[e])) for e in flipped]
    print(f"  state reached by {mult} tree(s): flips {pairs}")

# --- 3. Minimality: every tree state is *nearest* (§2.1). ------------
all_nearest = all(
    is_nearest_state(sigma, balance(sigma, t).signs)
    for t in all_spanning_trees(sigma)
)
print(f"\nevery tree-based state is a nearest balanced state: {all_nearest}")

# --- 4. Frustration index: exact vs heuristic vs cloud bound. --------
from repro.graph.generators import ensure_connected, erdos_renyi_signed

g = ensure_connected(
    erdos_renyi_signed(14, 40, negative_fraction=0.5, seed=3), seed=3
)
exact, _ = frustration_index_exact(g)
heur, _ = frustration_local_search(g, restarts=10, seed=3)
bound = sample_cloud(g, 40, seed=3).frustration_upper_bound()
print(f"\nfrustration index of a random 14-vertex graph:")
print(f"  exact (2^13 switchings):      {exact}")
print(f"  greedy local search:          {heur}")
print(f"  best of 40 sampled states:    {bound}")
print("  (exact <= both bounds, and the cloud bound is often tight)")

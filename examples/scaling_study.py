#!/usr/bin/env python3
"""Scaling study: price one input on the paper's machines.

Profiles real per-tree workloads of a Table-1 stand-in and prices them
on the simulated serial CPU, the 16-core OpenMP machine across thread
counts (Fig. 10's sweep), and the Titan-V-shaped GPU model — then
checks the memory budget with the Table 4 allocation model.

Run:  python examples/scaling_study.py [dataset-name]
"""

import sys

from repro.graph.datasets import CATALOG, load, paper_stats
from repro.graph.components import largest_connected_component
from repro.parallel import (
    CUDA_MACHINE,
    CpuMachine,
    model_run_multi,
)
from repro.perf.memory import cuda_device_mb, cuda_host_mb, openmp_host_mb

name = sys.argv[1] if len(sys.argv) > 1 else "A*_Video"
if name not in CATALOG:
    raise SystemExit(f"unknown dataset {name!r}; choose from {sorted(CATALOG)}")

graph, _ = largest_connected_component(load(name, seed=0))
spec = paper_stats(name)
print(f"{name}: stand-in LCC {graph} (scale {spec.default_scale:g})")

machines = {f"cpu-{k}t": CpuMachine(threads=k) for k in (1, 2, 4, 8, 16, 32)}
machines["cuda"] = CUDA_MACHINE
runs = model_run_multi(graph, machines, num_trees=1000, sample_trees=3, seed=0)

print(f"\nmodeled graphB+ time for 1000 BFS trees "
      f"(~{runs['cuda'].num_cycles_per_tree:,.0f} cycles/tree):")
serial = runs["cpu-1t"].graphb_seconds
for label, run in runs.items():
    speedup = serial / run.graphb_seconds
    print(f"  {label:>8s}: {run.graphb_seconds:8.2f} s  "
          f"({run.throughput_mcps:6.1f} Mcycles/s, {speedup:5.1f}x)")

print("\nphase breakdown on the GPU model (Fig. 11 view):")
phase = runs["cuda"].phase
total = phase.total
for pname, seconds in [
    ("cycle processing", phase.cycle_processing),
    ("labeling", phase.labeling),
    ("bipartition", phase.bipartition),
    ("tree generation", phase.tree_generation),
]:
    print(f"  {pname:>18s}: {seconds / total:6.1%}")

print(f"\nTable 4 memory model at the PAPER's full size "
      f"({spec.paper_vertices:,} vertices, {spec.paper_edges:,} edges):")
n, m = spec.paper_vertices, spec.paper_edges
print(f"  OpenMP host:  {openmp_host_mb(n, m):10.1f} MB")
print(f"  CUDA device:  {cuda_device_mb(n, m):10.1f} MB")
print(f"  CUDA host:    {cuda_host_mb(n, m):10.1f} MB")

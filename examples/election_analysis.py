#!/usr/bin/env python3
"""Election analysis: status vs spectral clustering (the Figs. 4–5 study).

Generates a wiki-Elec-shaped synthetic election network (voters cast
signed votes on candidates; outcomes recorded), then contrasts two ways
of explaining the outcomes:

* spectral clustering over the (unsigned) adjacency — tracks who
  interacts with whom, not what they think of each other;
* balancing-based *status* from the frustration cloud — tracks the
  network-wide consensus.

The paper's finding, reproduced here: status separates winners from
losers; spectral clusters do not.

Run:  python examples/election_analysis.py
"""

import numpy as np

from repro.analysis.election import election_report, generate_election
from repro.analysis.spectral import cluster_outcome_table

election = generate_election(
    num_users=600,
    num_candidates=120,
    votes_per_candidate=30,
    seed=7,
)
g = election.graph
print(f"election network: {g} "
      f"({g.num_negative_edges / g.num_edges:.0%} negative votes)")
cand = election.candidates
winners = int((election.outcome[cand] > 0).sum())
print(f"candidates: {len(cand)} ({winners} won, {len(cand) - winners} lost)")

report = election_report(election, num_states=60, k_clusters=8, seed=7)

# --- What spectral clusters say about the outcome (Fig. 4(b)). -------
print("\nper-spectral-cluster outcome makeup:")
table = cluster_outcome_table(
    report.spectral_labels, report.outcome, mask=election.outcome != 0
)
for c, (w, l) in enumerate(table):
    total = w + l
    if total:
        print(f"  cluster {c}: {w:3d} won, {l:3d} lost  "
              f"(win rate {w / total:.0%})")
print(f"  -> win-rate spread across clusters: {report.cluster_win_spread:.2f} "
      "(clusters are weakly informative)")

# --- What status says (Fig. 4(c) / Fig. 5). --------------------------
print("\nbalancing-based status:")
print(f"  mean status of winners: {report.mean_status_winners:.3f}")
print(f"  mean status of losers:  {report.mean_status_losers:.3f}")
print(f"  P(status_winner > status_loser) = {report.status_auc:.3f}")

# --- Fig. 5's bias flags: candidates off the status diagonal. --------
won = cand[election.outcome[cand] > 0]
lost = cand[election.outcome[cand] < 0]
s_med = float(np.median(report.status[cand]))
low_status_winners = won[report.status[won] < s_med]
high_status_losers = lost[report.status[lost] >= s_med]
print("\npotential outcome-bias flags (paper: 'votes should be examined'):")
print(f"  low-status winners:  {len(low_status_winners)}")
print(f"  high-status losers:  {len(high_status_losers)}")

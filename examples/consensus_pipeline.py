#!/usr/bin/env python3
"""End-to-end consensus pipeline on a Table-1 dataset stand-in.

Loads the synthetic S*_wiki stand-in (full scale: ~7.5k vertices,
~112k signed edges), extracts the largest connected component the way
the paper does, samples a frustration cloud, and prints the consensus
report with phase timings — the workload §6.5 profiles.

Run:  python examples/consensus_pipeline.py
"""

import numpy as np

from repro.analysis.consensus import analyze_consensus
from repro.graph.datasets import load, paper_stats

NAME = "S*_wiki"
spec = paper_stats(NAME)
print(f"dataset: {NAME} (paper: {spec.paper_vertices:,} vertices, "
      f"{spec.paper_edges:,} edges, max degree {spec.paper_max_degree:,})")

graph = load(NAME, seed=0)
report = analyze_consensus(graph, num_states=30, seed=0)

print()
print(report.summary())

# --- Who anchors the consensus? --------------------------------------
status = report.status
top = np.argsort(status)[::-1][:5]
bottom = np.argsort(status)[:5]
print("\nhighest-status vertices (most likely in the majority camp):")
for v in top:
    print(f"  vertex {int(report.original_ids[v]):6d}: status {status[v]:.3f}, "
          f"influence {report.influence[v]:.3f}, "
          f"agreement {report.vertex_agreement[v]:.3f}")
print("lowest-status vertices:")
for v in bottom:
    print(f"  vertex {int(report.original_ids[v]):6d}: status {status[v]:.3f}")

# --- Contested relationships: edges the consensus keeps flipping. ----
edge_agree = report.edge_agreement
contested = np.argsort(edge_agree)[:5]
print("\nmost contested edges (lowest sign agreement across states):")
for e in contested:
    u = int(report.component.edge_u[e])
    v = int(report.component.edge_v[e])
    print(f"  edge {u}-{v}: original sign {int(report.component.edge_sign[e]):+d}, "
          f"kept in {edge_agree[e]:.0%} of states")

# --- Where the time went (the §6.5 kernel breakdown, measured). ------
print()
print(report.timers.render("measured phase breakdown"))

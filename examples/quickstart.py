#!/usr/bin/env python3
"""Quickstart: balance a signed graph and read off consensus attributes.

Builds the paper's 4-vertex example Σ (Fig. 1), computes one nearest
balanced state with graphB+, then samples a frustration cloud and
prints the vertex status — the probability each vertex sides with the
consensus majority.

Run:  python examples/quickstart.py
"""

from repro import balance, from_edges, harary_bipartition, sample_cloud
from repro.cloud import exact_cloud

# The example graph Σ of Fig. 1: a square with one negative diagonal.
sigma = from_edges(
    [
        (0, 1, +1),
        (0, 2, +1),
        (0, 3, -1),  # the lone antagonistic relationship
        (1, 3, +1),
        (2, 3, +1),
    ]
)
print(f"input graph: {sigma}")
print(f"fundamental cycles per spanning tree: {sigma.num_fundamental_cycles}")

# --- One nearest balanced state (Alg. 3 on a random BFS tree). -------
result = balance(sigma, seed=0)
print(f"\nbalanced state flips {result.num_flips} edge sign(s):")
for e in result.flipped.nonzero()[0]:
    u, v = int(sigma.edge_u[e]), int(sigma.edge_v[e])
    print(f"  edge {u}-{v}: {int(sigma.edge_sign[e]):+d} -> {int(result.signs[e]):+d}")

bip = harary_bipartition(sigma, result.signs)
print(f"Harary bipartition sides: {bip.sizes}")

# --- The frustration cloud over ALL 8 spanning trees (tiny graph). ---
cloud = exact_cloud(sigma)
print(f"\nexhaustive cloud: {cloud.num_states} tree states, "
      f"{cloud.num_unique_states} unique nearest balanced states")
print("vertex status (Fig. 3 anchor: vertex 0 = 0.75):")
for v, s in enumerate(cloud.status()):
    print(f"  vertex {v}: {s:.3f}")

# --- Sampling scales to graphs where enumeration cannot go. ----------
from repro.graph.generators import chung_lu_signed
from repro.graph.components import largest_connected_component

big = chung_lu_signed(5000, 15000, negative_fraction=0.25, seed=1)
big, _ = largest_connected_component(big)
cloud = sample_cloud(big, num_states=25, seed=1)
status = cloud.status()
print(f"\nsampled cloud on {big}: 25 states")
print(f"status range: [{status.min():.2f}, {status.max():.2f}], "
      f"mean {status.mean():.2f}")
print(f"frustration index upper bound: {cloud.frustration_upper_bound()}")

"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP-517
editable installs (which build a wheel) fail.  With this shim,
``pip install -e . --no-build-isolation`` falls back to the classic
``setup.py develop`` path, which works without wheel.  Configuration
lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Fig. 3: Harary bipartitions of Σ's balanced states and the vertex
*status* (top-left vertex belongs to the larger side 6 of 8 times).
"""

import numpy as np

from repro.cloud import exact_cloud
from repro.graph.datasets import fig1_sigma
from repro.perf.report import TextTable

from benchmarks.conftest import save_table


def _run():
    return exact_cloud(fig1_sigma())


def test_fig03_status(benchmark):
    cloud = benchmark.pedantic(_run, rounds=1, iterations=1)
    status = cloud.status()

    table = TextTable(
        "Fig. 3: vertex status of Sigma over all 8 tree states "
        "(paper anchor: top-left vertex = 6/8 = 0.75)",
        ["vertex", "status"],
    )
    names = ["0 (top-left)", "1 (top-right)", "2 (bottom-left)", "3 (bottom-right)"]
    for v, name in enumerate(names):
        table.add_row(name, float(status[v]))
    save_table("fig03_status", table.render())

    assert status[0] == 0.75
    assert np.all(status >= 0) and np.all(status <= 1)

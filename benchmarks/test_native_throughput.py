"""Native measurements: this library's own kernels, really timed.

The Serial/OpenMP/CUDA columns of Tables 2–3 are modeled (no such
hardware here); this companion bench reports what the *actual Python*
implementations achieve on this machine, per input: the lockstep and
parity kernels' measured throughput in fundamental cycles balanced per
second, next to the paper's CUDA throughput for perspective.
"""

import time

from repro.core import balance
from repro.perf.report import TextTable, geomean
from repro.trees import TreeSampler

from benchmarks.conftest import LARGE_INPUTS, SMALL_INPUTS, dataset_lcc, save_table


def _throughput(graph, kernel: str, reps: int = 2) -> float:
    sampler = TreeSampler(graph, seed=0)
    trees = [sampler.tree(i) for i in range(reps)]
    start = time.perf_counter()
    for t in trees:
        labeling = "parallel" if kernel == "lockstep" else "none"
        balance(graph, t, kernel=kernel, labeling=labeling)
    elapsed = time.perf_counter() - start
    return graph.num_fundamental_cycles * reps / elapsed


def _run():
    rows = []
    for name in SMALL_INPUTS + LARGE_INPUTS:
        g = dataset_lcc(name)
        rows.append(
            (
                name,
                g.num_fundamental_cycles,
                _throughput(g, "lockstep"),
                _throughput(g, "parity"),
            )
        )
    return rows


def test_native_throughput(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Native Python throughput (measured on this machine): millions of "
        "fundamental cycles balanced per second, per kernel "
        "(paper's CUDA geomean on large inputs: 16.8 Mc/s on a Titan V)",
        ["input", "cycles/tree", "lockstep Mc/s", "parity Mc/s"],
    )
    lock, par = [], []
    for name, cycles, th_lock, th_par in rows:
        table.add_row(
            name, cycles, round(th_lock / 1e6, 3), round(th_par / 1e6, 3)
        )
        lock.append(th_lock / 1e6)
        par.append(th_par / 1e6)
    table.add_row("GEOMEAN", "-", round(geomean(lock), 3), round(geomean(par), 3))
    save_table("native_throughput", table.render())

    # The vectorized Python kernels must beat the original code's
    # 0.065 Mc/s by a wide margin, and parity >= lockstep at geomean.
    assert geomean(lock) > 0.2
    assert geomean(par) > geomean(lock) * 0.8

"""Ablation: cycle-traversal strategy.

Three implementations produce the same balanced state with different
cost profiles:

* ``walk``     — the paper's one-sided range walk (exact per-cycle stats,
                 serial Python, cost = range scans);
* ``lockstep`` — two-sided LCA lift, vectorized over all cycles (the
                 GPU-analog; cost = lockstep rounds bounded by depth);
* ``parity``   — O(m) sign-to-root closed form (no per-cycle stats).

The bench reports measured wall time per tree and the operation counts,
confirming the ordering parity < lockstep << walk in Python and that
all three agree.
"""

import time

import numpy as np

from repro.core import balance
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table

INPUTS = ["A*_Instruments_core5", "A*_Video_core5", "S*_wiki"]
KERNELS = ["walk", "lockstep", "parity"]


def _run():
    rows = []
    for name in INPUTS:
        g = dataset_lcc(name)
        t = TreeSampler(g, seed=0).tree(0)
        times = {}
        signs = {}
        for kernel in KERNELS:
            labeling = "serial" if kernel == "walk" else "none"
            start = time.perf_counter()
            r = balance(g, t, kernel=kernel, labeling=labeling)
            times[kernel] = time.perf_counter() - start
            signs[kernel] = r.signs
        assert all(
            np.array_equal(signs["walk"], signs[k]) for k in KERNELS
        ), "kernels disagree"
        rows.append((name, times))
    return rows


def test_ablation_traversal(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Ablation: traversal strategy — measured Python seconds per tree "
        "(identical balanced states; walk is the faithful serial "
        "reference, lockstep the data-parallel kernel, parity the O(m) "
        "closed form)",
        ["input", "walk s", "lockstep s", "parity s", "walk/lockstep"],
    )
    for name, times in rows:
        table.add_row(
            name,
            round(times["walk"], 3),
            round(times["lockstep"], 4),
            round(times["parity"], 4),
            round(times["walk"] / times["lockstep"], 1),
        )
    save_table("ablation_traversal", table.render())

    for name, times in rows:
        assert times["lockstep"] < times["walk"], name
        assert times["parity"] < times["walk"], name

"""Related-work comparison (§4): frustration-index solver tiers.

The paper argues exact solvers (Wu & Chen branch-and-bound, Aref binary
programming) certify optima but cannot scale, while graphB+'s tree
states give fast nearest-state bounds at any scale.  This bench runs
all four tiers on instances each can handle and reports value + time:

* exhaustive switching enumeration (n ≤ 24),
* branch and bound (sparse graphs, tens of vertices),
* greedy local search (any size, no certificate),
* the Alg. 2 cloud bound (any size, nearest-state semantics).
"""

import time

import numpy as np

from repro.cloud import (
    frustration_branch_bound,
    frustration_index_exact,
    frustration_local_search,
    sample_cloud,
)
from repro.graph.generators import erdos_renyi_signed, ensure_connected
from repro.perf.report import TextTable

from benchmarks.conftest import save_table


def _instance(n, m, neg, seed):
    return ensure_connected(
        erdos_renyi_signed(n, m, negative_fraction=neg, seed=seed), seed=seed
    )


def _run():
    rows = []
    cases = [
        ("tiny (n=14)", _instance(14, 30, 0.4, 0)),
        ("small (n=20)", _instance(20, 45, 0.3, 1)),
        ("sparse (n=50)", _instance(50, 70, 0.2, 2)),
    ]
    for label, g in cases:
        entry = {"label": label, "n": g.num_vertices, "m": g.num_edges}
        if g.num_vertices <= 24:
            t0 = time.perf_counter()
            entry["enum"], _ = frustration_index_exact(g)
            entry["enum_t"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        try:
            entry["bnb"], _ = frustration_branch_bound(g, node_limit=2_000_000)
            entry["bnb_t"] = time.perf_counter() - t0
        except Exception:
            entry["bnb"] = None
            entry["bnb_t"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        entry["greedy"], _ = frustration_local_search(g, restarts=10, seed=0)
        entry["greedy_t"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        entry["cloud"] = sample_cloud(g, 40, seed=0).frustration_upper_bound()
        entry["cloud_t"] = time.perf_counter() - t0
        rows.append(entry)
    return rows


def test_relatedwork_frustration(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Related work (§4): frustration-index solver tiers — value "
        "(time).  Exact tiers certify; greedy/cloud only bound.",
        ["instance", "n", "m", "enumeration", "branch&bound",
         "local search", "cloud (40 states)"],
    )
    for r in rows:
        def cell(key):
            if key not in r or r[key] is None:
                return "-"
            return f"{r[key]} ({r[key + '_t']:.2f}s)"

        table.add_row(
            r["label"], r["n"], r["m"],
            cell("enum"), cell("bnb"), cell("greedy"), cell("cloud"),
        )
    save_table("relatedwork_frustration", table.render())

    for r in rows:
        # Exact tiers agree where both ran; bounds never undercut exact.
        if r.get("enum") is not None and r.get("bnb") is not None:
            assert r["enum"] == r["bnb"]
        exact = r.get("bnb") if r.get("bnb") is not None else r.get("enum")
        if exact is not None:
            assert r["greedy"] >= exact
            assert r["cloud"] >= exact

"""§6.2 correlation study: the GPU runtime correlates strongly with the
graph size and *especially* with the maximum degree (paper: r > 0.9
with vertices/edges/cycles, r = 0.96 with max degree).
"""

import numpy as np

from repro.parallel import CUDA_MACHINE, model_run
from repro.perf.report import TextTable

from benchmarks.conftest import LARGE_INPUTS, dataset_lcc, save_table


def _run():
    rows = []
    for name in LARGE_INPUTS:
        g = dataset_lcc(name)
        run = model_run(g, CUDA_MACHINE, 1000, sample_trees=2, seed=0)
        rows.append(
            (
                name,
                g.num_vertices,
                g.num_edges,
                g.num_fundamental_cycles,
                g.max_degree,
                run.graphb_seconds,
            )
        )
    return rows


def test_sec62_correlation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    arr = np.array([[r[1], r[2], r[3], r[4], r[5]] for r in rows], dtype=np.float64)

    def corr(i):
        return float(np.corrcoef(arr[:, i], arr[:, 4])[0, 1])

    table = TextTable(
        "Sec. 6.2: correlation of modeled CUDA runtime with graph "
        "properties (paper: r > 0.9 for V/E/cycles, r = 0.96 for max degree)",
        ["property", "pearson r", "paper"],
    )
    r_v, r_e, r_c, r_d = corr(0), corr(1), corr(2), corr(3)
    table.add_row("vertices", round(r_v, 3), "> 0.9")
    table.add_row("edges", round(r_e, 3), "> 0.9")
    table.add_row("fundamental cycles", round(r_c, 3), "> 0.9")
    table.add_row("max degree", round(r_d, 3), "0.96")
    lines = [table.render(), ""]
    lines.append(
        "scale note: hub degrees shrink with the 1/100 edge sampling "
        "(43k -> ~450 for A*_Book), which weakens the max-degree signal "
        "relative to the paper's full-size hubs; the correlation remains "
        "strongly positive."
    )
    save_table("sec62_correlation", "\n".join(lines))

    assert r_v > 0.8 and r_e > 0.8 and r_c > 0.8
    assert r_d > 0.6

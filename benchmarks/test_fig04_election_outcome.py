"""Fig. 4: wiki-Elec outcome analysis — spectral clusters carry little
outcome signal; balancing-based status separates winners from losers.

Substitution: synthetic election network (see repro.analysis.election);
the statistic replacing the scatter plot is the winner-vs-loser status
AUC and the per-cluster win-fraction table.
"""

import numpy as np

from repro.analysis.election import election_report, generate_election
from repro.analysis.spectral import cluster_outcome_table
from repro.perf.report import TextTable

from benchmarks.conftest import save_table, trees


def _run():
    election = generate_election(
        num_users=600, num_candidates=120, votes_per_candidate=30,
        temporal_ids=True, seed=2,
    )
    report = election_report(
        election, num_states=trees(60), k_clusters=10, seed=0
    )
    return election, report


def _cluster_id_concentration(labels, k):
    """Mean per-cluster user-id std, normalized by the global std —
    << 1 means clusters occupy narrow id ranges (the Fig. 4(a) boxes)."""
    import numpy as np

    ids = np.arange(len(labels), dtype=np.float64)
    global_std = ids.std()
    stds = [
        ids[labels == c].std()
        for c in range(k)
        if np.count_nonzero(labels == c) > 3
    ]
    return float(np.mean(stds) / global_std) if stds else 1.0


def test_fig04_election_outcome(benchmark):
    election, report = benchmark.pedantic(_run, rounds=1, iterations=1)

    cand = election.candidates
    table = TextTable(
        "Fig. 4: election outcome vs spectral clustering vs status "
        "(synthetic wiki-Elec; paper: status correlates with winning, "
        "clusters do not)",
        ["cluster", "winners", "losers", "win fraction"],
    )
    counts = cluster_outcome_table(
        report.spectral_labels, report.outcome, mask=election.outcome != 0
    )
    for c, (w, l) in enumerate(counts):
        total = w + l
        frac = w / total if total else float("nan")
        table.add_row(f"spectral-{c}", int(w), int(l), frac)
    lines = [table.render(), ""]
    lines.append(
        f"status AUC (winner > loser):        {report.status_auc:.3f}  (paper: visibly high)"
    )
    lines.append(
        f"mean status winners / losers:       "
        f"{report.mean_status_winners:.3f} / {report.mean_status_losers:.3f}"
    )
    lines.append(
        f"cluster win-fraction spread:        {report.cluster_win_spread:.3f}  (paper: clusters similar)"
    )
    concentration = _cluster_id_concentration(report.spectral_labels, 10)
    lines.append(
        f"cluster user-id concentration:      {concentration:.3f}  "
        "(paper Fig. 4(a): clusters form over id ranges; << 1 = narrow boxes)"
    )
    save_table("fig04_election_outcome", "\n".join(lines))

    assert report.status_auc > 0.7
    assert report.mean_status_winners > report.mean_status_losers
    # Fig. 4(a): spectral clusters track adjacency/ids, i.e. occupy
    # visibly narrower id ranges than a random partition would.
    assert concentration < 0.8

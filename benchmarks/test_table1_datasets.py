"""Table 1: dataset statistics — vertices, edges, fundamental cycles,
max/avg degree of the largest connected component of every input.

Stand-ins are synthetic (DESIGN.md §2): large ratings inputs at 1/100
scale, review cores and S*_wiki at full scale.  Columns show measured
values next to the published ones (published values scaled for the
scaled inputs, marked with *).
"""

from repro.graph.datasets import CATALOG
from repro.perf.report import TextTable

from benchmarks.conftest import dataset_lcc, save_table

_INPUTS = list(CATALOG)


def _run():
    rows = []
    for name in _INPUTS:
        spec = CATALOG[name]
        sub = dataset_lcc(name)
        rows.append((name, spec, sub))
    return rows


def test_table1_datasets(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Table 1: largest-connected-component statistics "
        "(synthetic stand-ins; 'paper' columns scaled by the build scale, * = scaled)",
        [
            "input",
            "scale",
            "vertices",
            "paper V",
            "edges",
            "paper E",
            "cycles",
            "paper C",
            "max deg",
            "paper maxd",
            "avg deg",
            "paper avgd",
        ],
    )
    for name, spec, sub in rows:
        s = spec.default_scale
        mark = "*" if s != 1.0 else ""
        table.add_row(
            name,
            f"{s:g}{mark}",
            sub.num_vertices,
            int(spec.paper_vertices * s),
            sub.num_edges,
            int(spec.paper_edges * s),
            sub.num_fundamental_cycles,
            int(spec.paper_cycles * s),
            sub.max_degree,
            int(spec.paper_max_degree * s),
            round(sub.avg_degree, 2),
            spec.paper_avg_degree,
        )
    save_table("table1_datasets", table.render())

    # Shape assertions: sizes within 2x of the scaled targets, ordering
    # of input sizes preserved.
    for name, spec, sub in rows:
        s = spec.default_scale
        assert sub.num_edges > 0.4 * spec.paper_edges * s, name
        assert sub.num_edges < 2.0 * spec.paper_edges * s, name
        assert sub.max_degree < 4.0 * max(spec.paper_max_degree * s, 8), name

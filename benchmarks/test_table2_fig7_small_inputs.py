"""Table 2 + Fig. 7: serial / OpenMP / CUDA / original-Python runtimes
and throughputs on the four small inputs, for 1000 BFS trees.

Serial/OpenMP/CUDA columns come from the calibrated machine models
replaying measured per-tree workloads (DESIGN.md §2); the Python column
is the *actual measured* wall time of the reimplemented Alg. 1 dense
baseline, extrapolated from 2 real trees.  The paper's numbers are
printed alongside.
"""

from repro.parallel import (
    CUDA_MACHINE,
    OPENMP_MACHINE,
    SERIAL_MACHINE,
    measure_python_seconds,
    model_run,
)
from repro.perf.report import TextTable, geomean

from benchmarks.conftest import SMALL_INPUTS, dataset_lcc, save_table

#: Published Table 2 rows: (serial, openmp, cuda, python) seconds.
PAPER = {
    "A*_Instruments_core5": (0.73, 0.47, 0.18, 114.2),
    "A*_Music_core5": (6.97, 1.40, 0.47, 1039.0),
    "A*_Video_core5": (3.31, 1.23, 0.62, 593.7),
    "S*_wiki": (12.30, 2.19, 1.13, 1088.5),
}

NUM_TREES = 1000


def _run():
    rows = []
    for name in SMALL_INPUTS:
        g = dataset_lcc(name)
        serial = model_run(g, SERIAL_MACHINE, NUM_TREES, sample_trees=3, seed=0)
        openmp = model_run(g, OPENMP_MACHINE, NUM_TREES, sample_trees=3, seed=0)
        cuda = model_run(g, CUDA_MACHINE, NUM_TREES, sample_trees=3, seed=0)
        python = measure_python_seconds(
            g, NUM_TREES, sample_trees=1, use_baseline=True, seed=0
        )
        rows.append((name, g, serial, openmp, cuda, python))
    return rows


def test_table2_fig7_small_inputs(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Table 2: balancing runtime (s) for {NUM_TREES} BFS trees on the small inputs\n"
        "(serial/OpenMP/CUDA modeled on the paper's machines from measured workloads;\n"
        " Python measured natively on the Alg. 1 dense baseline)",
        [
            "input", "serial", "paper", "openmp", "paper", "cuda", "paper",
            "python", "paper",
        ],
    )
    ser, omp, cud, pyt = [], [], [], []
    for name, _g, serial, openmp, cuda, python in rows:
        p = PAPER[name]
        table.add_row(
            name,
            round(serial.graphb_seconds, 2), p[0],
            round(openmp.graphb_seconds, 2), p[1],
            round(cuda.graphb_seconds, 2), p[2],
            round(python, 1), p[3],
        )
        ser.append(serial.graphb_seconds)
        omp.append(openmp.graphb_seconds)
        cud.append(cuda.graphb_seconds)
        pyt.append(python)
    table.add_row(
        "GEOMEAN",
        round(geomean(ser), 2), 3.79,
        round(geomean(omp), 2), 1.16,
        round(geomean(cud), 2), 0.49,
        round(geomean(pyt), 1), 526.2,
    )
    lines = [table.render(), ""]

    fig7 = TextTable(
        "Fig. 7: throughput in millions of fundamental cycles balanced per second",
        ["input", "serial", "openmp", "cuda", "python"],
    )
    for name, g, serial, openmp, cuda, python in rows:
        cyc = g.num_fundamental_cycles * NUM_TREES
        fig7.add_row(
            name,
            round(serial.throughput_mcps, 2),
            round(openmp.throughput_mcps, 2),
            round(cuda.throughput_mcps, 2),
            round(cyc / python / 1e6, 4),
        )
    lines.append(fig7.render())
    save_table("table2_fig7_small_inputs", "\n".join(lines))

    # Shape assertions (the paper's ordering).
    for name, _g, serial, openmp, cuda, python in rows:
        assert cuda.graphb_seconds < openmp.graphb_seconds < serial.graphb_seconds
        assert python > 10 * serial.graphb_seconds  # Python is orders slower
    # Geomean magnitudes within ~3x of Table 2.
    assert 0.3 * 3.79 < geomean(ser) < 3.0 * 3.79
    assert 0.3 * 1.16 < geomean(omp) < 3.0 * 1.16
    assert 0.15 * 0.49 < geomean(cud) < 3.0 * 0.49

"""Fig. 11: relative GPU kernel-runtime breakdown.

Paper averages over the 20 inputs: cycle processing ~64%, vertex/edge
labeling ~20%, Harary bipartitioning <10%, spanning-tree generation 6%
(the last two are not part of graphB+).
"""

from repro.parallel import CUDA_MACHINE, model_run
from repro.perf.report import TextTable

from benchmarks.conftest import LARGE_INPUTS, SMALL_INPUTS, dataset_lcc, save_table

PAPER_AVG = {
    "cycle_processing": 0.64,
    "labeling": 0.20,
    "bipartition": 0.10,
    "tree_generation": 0.06,
}


def _run():
    rows = []
    for name in SMALL_INPUTS + LARGE_INPUTS:
        g = dataset_lcc(name)
        run = model_run(g, CUDA_MACHINE, 100, sample_trees=2, seed=0)
        rows.append((name, run.phase))
    return rows


def test_fig11_kernel_breakdown(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Fig. 11: relative CUDA kernel time (%) — paper averages: cycles 64, "
        "labeling 20, bipartition <10, tree generation 6",
        ["input", "cycles %", "labeling %", "bipartition %", "treegen %"],
    )
    acc = {k: 0.0 for k in PAPER_AVG}
    for name, phase in rows:
        total = phase.total
        parts = {
            "cycle_processing": phase.cycle_processing / total,
            "labeling": phase.labeling / total,
            "bipartition": phase.bipartition / total,
            "tree_generation": phase.tree_generation / total,
        }
        for k in acc:
            acc[k] += parts[k]
        table.add_row(
            name,
            round(100 * parts["cycle_processing"], 1),
            round(100 * parts["labeling"], 1),
            round(100 * parts["bipartition"], 1),
            round(100 * parts["tree_generation"], 1),
        )
    n = len(rows)
    avg = {k: v / n for k, v in acc.items()}
    table.add_row(
        "AVERAGE",
        round(100 * avg["cycle_processing"], 1),
        round(100 * avg["labeling"], 1),
        round(100 * avg["bipartition"], 1),
        round(100 * avg["tree_generation"], 1),
    )
    lines = [table.render(), ""]
    graphb_frac = avg["cycle_processing"] + avg["labeling"]
    lines.append(
        f"graphB+ share of the pipeline: {graphb_frac:.0%} "
        "(paper: 84%, i.e. 5.5x the rest)"
    )
    lines.append(
        "scale note: 1/100-scale stand-ins shrink cycle counts ~100x "
        "while BFS level counts (and hence per-level kernel launches) "
        "barely shrink, so launch overhead inflates the labeling share "
        "of the *small* stand-ins relative to the paper's full-size runs."
    )
    save_table("fig11_kernel_breakdown", "\n".join(lines))

    # Shape: graphB+ (labeling + cycles) dominates the pipeline, and on
    # every input with a paper-comparable cycle count (>= 50k cycles per
    # tree) cycle processing is the single dominant phase, matching the
    # published 64% average.
    assert graphb_frac > 0.5
    by_name = {name: phase for name, phase in rows}
    for name in ("A*_Book", "S*_wiki", "A*_Music_core5"):
        phase = by_name[name]
        assert phase.cycle_processing == max(
            phase.cycle_processing,
            phase.labeling,
            phase.bipartition,
            phase.tree_generation,
        ), name

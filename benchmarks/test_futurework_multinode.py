"""§3.3's distributed deployment, quantified: modeled strong scaling of
a 1000-tree campaign across compute nodes (graph broadcast + per-node
graphB+ + one tree-structured counter reduction).
"""

from repro.parallel import CUDA_MACHINE, OPENMP_MACHINE, collect_workload
from repro.parallel.mpi_model import ClusterModel
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table

INPUT = "A*_Book"
NODE_COUNTS = [1, 2, 4, 8, 16, 32, 64]


def _run():
    g = dataset_lcc(INPUT)
    tree = TreeSampler(g, seed=0).tree(0)
    w = collect_workload(g, tree)
    rows = {}
    for label, machine in (("openmp-node", OPENMP_MACHINE), ("gpu-node", CUDA_MACHINE)):
        cluster = ClusterModel(node_machine=machine)
        rows[label] = cluster.scaling_curve(w, 1000, NODE_COUNTS)
    return rows


def test_futurework_multinode(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Modeled multi-node strong scaling on {INPUT} (1000 trees; "
        "per-node compute + graph broadcast + counter reduce, §3.3 dataflow)",
        ["nodes", "openmp total s", "openmp speedup", "gpu total s", "gpu speedup"],
    )
    omp = rows["openmp-node"]
    gpu = rows["gpu-node"]
    for k, nodes in enumerate(NODE_COUNTS):
        table.add_row(
            nodes,
            round(omp[k].total_seconds, 2),
            round(omp[0].total_seconds / omp[k].total_seconds, 1),
            round(gpu[k].total_seconds, 2),
            round(gpu[0].total_seconds / gpu[k].total_seconds, 1),
        )
    comm = omp[-1].broadcast_seconds + omp[-1].reduce_seconds
    lines = [table.render(), ""]
    lines.append(
        f"communication at 64 nodes: {comm * 1e3:.1f} ms "
        "(negligible against compute — the paper's 'straightforward' claim)"
    )
    save_table("futurework_multinode", "\n".join(lines))

    # Near-linear scaling while trees >> nodes.
    sp32 = omp[0].total_seconds / omp[NODE_COUNTS.index(32)].total_seconds
    assert sp32 > 24.0
    assert comm < 0.05 * omp[-1].total_seconds

"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper as text,
prints it, and writes it to ``benchmarks/results/<name>.txt`` so the
full set can be diffed against EXPERIMENTS.md.

Scale: the paper runs 1000 BFS trees per input on native C++/CUDA;
pure Python cannot.  Each experiment declares its own tree count
(default scaling factors below) and prints the scale it ran at.  Set
``REPRO_BENCH_SCALE=1.0`` to run closer to paper scale (slow).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.graph.components import largest_connected_component
from repro.graph.datasets import CATALOG, load

RESULTS_DIR = Path(__file__).parent / "results"

#: Global effort multiplier (1.0 = the defaults documented per bench).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Inputs used for the small-graph experiments (Table 2 / Fig. 7).
SMALL_INPUTS = [
    "A*_Instruments_core5",
    "A*_Music_core5",
    "A*_Video_core5",
    "S*_wiki",
]

#: The 16 larger inputs (Table 3 / Figs. 8–9), in the paper's order.
LARGE_INPUTS = [
    "A*_Android",
    "A*_Automotive",
    "A*_Baby",
    "A*_Book",
    "A*_Electronics",
    "A*_Games",
    "A*_Garden",
    "A*_Instruments",
    "A*_Jewelry",
    "A*_Music",
    "A*_Outdoors",
    "A*_TV",
    "A*_Video",
    "A*_Vinyl",
    "S*_opinion",
    "S*_slashdot",
]


def trees(default: int) -> int:
    """Scale a per-bench tree count by REPRO_BENCH_SCALE (min 1)."""
    return max(int(round(default * BENCH_SCALE)), 1)


def save_table(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


_graph_cache: dict[str, object] = {}


def dataset_lcc(name: str, seed: int = 0):
    """Largest connected component of a catalog stand-in (cached per
    session — the large builds dominate bench setup time otherwise)."""
    key = f"{name}:{seed}"
    if key not in _graph_cache:
        graph = load(name, seed=seed)
        sub, _ = largest_connected_component(graph)
        _graph_cache[key] = sub
    return _graph_cache[key]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

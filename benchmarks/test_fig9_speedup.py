"""Fig. 9: speedup of the OpenMP and CUDA configurations over serial on
the larger inputs (paper: CUDA 2.6–53x, geomean 21.6; OpenMP 5.7–12.1x,
geomean 8.5; CPU beats GPU on two inputs).
"""

from repro.parallel import CUDA_MACHINE, OPENMP_MACHINE, SERIAL_MACHINE, model_run_multi
from repro.perf.report import TextTable, geomean

from benchmarks.conftest import LARGE_INPUTS, dataset_lcc, save_table

MACHINES = {
    "serial": SERIAL_MACHINE,
    "openmp": OPENMP_MACHINE,
    "cuda": CUDA_MACHINE,
}


def _run():
    rows = []
    for name in LARGE_INPUTS:
        g = dataset_lcc(name)
        runs = model_run_multi(g, MACHINES, 1000, sample_trees=2, seed=0)
        rows.append((name, runs))
    return rows


def test_fig9_speedup(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Fig. 9: speedup over serial on the larger inputs "
        "(paper geomeans: OpenMP 8.5x, CUDA 21.6x)",
        ["input", "openmp speedup", "cuda speedup"],
    )
    omp_sp, cud_sp = [], []
    for name, runs in rows:
        s = runs["serial"].graphb_seconds
        o = s / runs["openmp"].graphb_seconds
        c = s / runs["cuda"].graphb_seconds
        table.add_row(name, round(o, 1), round(c, 1))
        omp_sp.append(o)
        cud_sp.append(c)
    table.add_row("GEOMEAN", round(geomean(omp_sp), 1), round(geomean(cud_sp), 1))
    save_table("fig9_speedup", table.render())

    # Shape: parallel wins on these (scaled-down) inputs at geomean;
    # CUDA above OpenMP at geomean (the paper's 2.5x gap).
    assert geomean(cud_sp) > geomean(omp_sp) > 1.0
    # The stand-ins are ~1/100 scale, so speedups trail the paper's;
    # they must still be in a sensible band.
    assert 1.5 < geomean(omp_sp) < 20.0
    assert 3.0 < geomean(cud_sp) < 80.0

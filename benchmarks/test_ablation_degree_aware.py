"""Ablation: degree-aware parent selection (the §6.6 hint made real).

§6.6 finds that cycles route through hubs and suggests the observation
"may prove useful to further enhance the performance of graphB+".  The
``bfs-low-degree`` sampler implements that hint; this bench measures
the reduction in on-cycle tree degree and the modeled runtime effect on
all three machines, at unchanged cycle lengths (still BFS-minimal).
"""

import numpy as np

from repro.core import balance
from repro.parallel import (
    CUDA_MACHINE,
    OPENMP_MACHINE,
    SERIAL_MACHINE,
    collect_workload,
)
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table, trees

INPUTS = ["A*_Instruments_core5", "S*_wiki", "A*_Video_core5"]
MACHINES = {
    "serial": SERIAL_MACHINE,
    "openmp": OPENMP_MACHINE,
    "cuda": CUDA_MACHINE,
}


def _measure(graph, method: str, num_trees: int):
    sampler = TreeSampler(graph, method=method, seed=0)
    lengths, tdegs, cyc_seconds = [], [], {m: [] for m in MACHINES}
    for i in range(num_trees):
        tree = sampler.tree(i)
        r = balance(graph, tree, collect_stats=True)
        lengths.append(r.stats.avg_length)
        tdegs.append(float(r.stats.tree_degree_sums.sum() / r.stats.lengths.sum()))
        w = collect_workload(graph, tree)
        for name, machine in MACHINES.items():
            cyc_seconds[name].append(machine.times(w).cycle_processing)
    return (
        float(np.mean(lengths)),
        float(np.mean(tdegs)),
        {m: float(np.mean(v)) for m, v in cyc_seconds.items()},
    )


def _run():
    num_trees = trees(3)
    rows = []
    for name in INPUTS:
        g = dataset_lcc(name)
        plain = _measure(g, "bfs", num_trees)
        aware = _measure(g, "bfs-low-degree", num_trees)
        rows.append((name, plain, aware))
    return rows


def test_ablation_degree_aware(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Ablation (§6.6 hint): plain BFS vs low-degree-preferring BFS — "
        "avg cycle length, avg on-cycle tree degree, and modeled "
        "cycle-phase time per tree",
        [
            "input", "variant", "cycle len", "on-cycle tree deg",
            "serial ms", "openmp ms", "cuda ms",
        ],
    )
    for name, plain, aware in rows:
        for label, (length, tdeg, secs) in (("bfs", plain), ("low-degree", aware)):
            table.add_row(
                name,
                label,
                round(length, 2),
                round(tdeg, 1),
                round(secs["serial"] * 1e3, 3),
                round(secs["openmp"] * 1e3, 3),
                round(secs["cuda"] * 1e3, 3),
            )
    save_table("ablation_degree_aware", table.render())

    for name, plain, aware in rows:
        # Hub avoidance cuts on-cycle tree degree and serial cycle cost...
        assert aware[1] < plain[1], name
        assert aware[2]["serial"] < plain[2]["serial"], name
        # ...without lengthening cycles much (still a BFS).
        assert aware[0] < plain[0] * 1.3, name

"""Ablation: OpenMP scheduling policy for cycle processing (§3.3.2).

The paper uses ``schedule(dynamic)`` because per-vertex cycle work is
highly skewed.  This bench prices the same measured workloads under
dynamic and static schedules across thread counts and reports the
dynamic advantage.
"""

import numpy as np

from repro.parallel import CpuMachine, collect_workload
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table

INPUTS = ["S*_wiki", "A*_Book", "A*_Android"]
THREADS = [4, 16]


def _run():
    rows = []
    for name in INPUTS:
        g = dataset_lcc(name)
        t = TreeSampler(g, seed=0).tree(0)
        w = collect_workload(g, t)
        per_threads = {}
        for k in THREADS:
            dyn = CpuMachine(threads=k, schedule="dynamic").times(w)
            gui = CpuMachine(threads=k, schedule="guided").times(w)
            sta = CpuMachine(threads=k, schedule="static").times(w)
            per_threads[k] = (
                dyn.cycle_processing,
                gui.cycle_processing,
                sta.cycle_processing,
            )
        owners, costs = w.owner_costs
        skew = float(costs.max() / costs.mean()) if len(costs) else 0.0
        rows.append((name, skew, per_threads))
    return rows


def test_ablation_schedule(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Ablation (§3.3.2): dynamic vs guided vs static schedule for the "
        "cycle region (modeled cycle-phase seconds per tree; skew = "
        "max/mean per-vertex work)",
        ["input", "work skew"]
        + [f"dyn {k}t" for k in THREADS]
        + [f"guided {k}t" for k in THREADS]
        + [f"static {k}t" for k in THREADS],
    )
    for name, skew, per in rows:
        table.add_row(
            name,
            round(skew, 1),
            *[f"{per[k][0] * 1e3:.3f}ms" for k in THREADS],
            *[f"{per[k][1] * 1e3:.3f}ms" for k in THREADS],
            *[f"{per[k][2] * 1e3:.3f}ms" for k in THREADS],
        )
    save_table("ablation_schedule", table.render())

    # Static is never faster than dynamic, and the workloads are skewed;
    # guided sits between fine-grained dynamic and static.
    for name, skew, per in rows:
        assert skew > 3.0, name
        for k in THREADS:
            dyn, gui, sta = per[k]
            assert sta >= dyn * 0.95, name
            assert gui <= sta * 1.5, name

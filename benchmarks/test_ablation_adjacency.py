"""Ablation: the §3.2.2 adjacency partitioning.

Compares the faithful walker's exact scan counts with and without the
partitioned layout (tree edges first, parent edge in front).  The paper
motivates the optimization by noting that tree-edge loops can stop at
the first non-tree edge; this bench quantifies the saved scans.
"""

from repro.core import balance
from repro.perf.compat import Counters
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table

INPUTS = ["A*_Instruments_core5", "A*_Video_core5", "S*_wiki"]


def _run():
    rows = []
    for name in INPUTS:
        g = dataset_lcc(name)
        t = TreeSampler(g, seed=0).tree(0)
        with_part = Counters()
        balance(g, t, kernel="walk", labeling="serial", partition=True,
                counters=with_part)
        without = Counters()
        balance(g, t, kernel="walk", labeling="serial", partition=False,
                counters=without)
        rows.append(
            (
                name,
                with_part.get("cycle.edges_scanned"),
                without.get("cycle.edges_scanned"),
                with_part.get("cycle.vertices_visited"),
            )
        )
    return rows


def test_ablation_adjacency(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Ablation (§3.2.2): cycle-walk adjacency scans with vs without "
        "the partitioned layout (one BFS tree per input)",
        ["input", "scans partitioned", "scans raw", "saving", "vertices visited"],
    )
    for name, part, raw, visits in rows:
        saving = 1.0 - part / raw if raw else 0.0
        table.add_row(name, part, raw, f"{saving:.1%}", visits)
    save_table("ablation_adjacency", table.render())

    for name, part, raw, _v in rows:
        assert part <= raw, name
    # On at least one input the partitioning saves a measurable share.
    assert any(1.0 - part / raw > 0.05 for _n, part, raw, _v in rows)

"""Table 6: min/max/average BFS-spanning-tree depth per input.

Paper (1000 trees): every tree is shallow — max depth 21 over all
inputs, average under 18 — which is what makes the level-synchronous
parallelization effective.  We sample 50 trees per input.
"""

import numpy as np

from repro.perf.report import TextTable
from repro.trees import TreeSampler, depth_stats

from benchmarks.conftest import LARGE_INPUTS, SMALL_INPUTS, dataset_lcc, save_table, trees

#: Published Table 6: (min, max, avg) BFS tree depth.
PAPER = {
    "A*_Android": (10, 13, 12.2),
    "A*_Automotive": (15, 19, 17.3),
    "A*_Baby": (11, 15, 12.9),
    "A*_Book": (15, 19, 17.1),
    "A*_Electronics": (11, 12, 11.7),
    "A*_Games": (15, 18, 16.8),
    "A*_Garden": (12, 15, 13.6),
    "A*_Instruments": (14, 21, 17.2),
    "A*_Instruments_core5": (5, 6, 5.7),
    "A*_Jewelry": (14, 16, 15.7),
    "A*_Music": (14, 18, 15.8),
    "A*_Music_core5": (5, 7, 6.0),
    "A*_Outdoors": (14, 17, 15.2),
    "A*_TV": (12, 15, 13.9),
    "A*_Video": (11, 15, 12.9),
    "A*_Video_core5": (5, 7, 5.8),
    "A*_Vinyl": (13, 15, 13.7),
    "S*_opinion": (8, 11, 9.5),
    "S*_slashdot": (7, 9, 7.9),
    "S*_wiki": (4, 5, 4.9),
}

NUM_TREES_DEFAULT = 50


def _run():
    num_trees = trees(NUM_TREES_DEFAULT)
    rows = []
    for name in SMALL_INPUTS + LARGE_INPUTS:
        g = dataset_lcc(name)
        stats = depth_stats(TreeSampler(g, seed=0), num_trees)
        rows.append((name, stats))
    return num_trees, rows


def test_table6_tree_depth(benchmark):
    num_trees, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Table 6: BFS spanning-tree depth over {num_trees} trees "
        "(paper used 1000; all-input averages: min 10.8, max 13.7, avg 12.3)",
        ["input", "min", "paper", "max", "paper", "avg", "paper"],
    )
    avgs = []
    for name, stats in rows:
        p = PAPER[name]
        table.add_row(
            name,
            stats.min_depth, p[0],
            stats.max_depth, p[1],
            round(stats.avg_depth, 1), p[2],
        )
        avgs.append(stats.avg_depth)
    table.add_row(
        "AVERAGE",
        round(float(np.mean([s.min_depth for _, s in rows])), 1), 10.8,
        round(float(np.mean([s.max_depth for _, s in rows])), 1), 13.7,
        round(float(np.mean(avgs)), 1), 12.3,
    )
    save_table("table6_tree_depth", table.render())

    # Shape: every tree is shallow (paper max is 21; allow headroom for
    # synthetic variation), and ordering holds — the dense core5 and
    # wiki graphs are the shallowest.
    for name, stats in rows:
        assert stats.max_depth <= 30, name
    wiki = dict(rows)["S*_wiki"]
    deepest = max(stats.avg_depth for _, stats in rows)
    assert wiki.avg_depth < deepest
    assert float(np.mean(avgs)) < 20.0

"""Fig. 6: the worked 10-vertex example — relabeling, edge ranges, the
6–7 cycle traversal, balancing, and the Harary bipartition, end to end.
"""

import numpy as np

from repro.core import balance, is_balanced, label_tree
from repro.graph.datasets import fig6_graph, fig6_tree_edges
from repro.harary import harary_bipartition
from repro.perf.report import TextTable
from repro.trees import tree_from_edge_ids

from benchmarks.conftest import save_table


def _run():
    graph = fig6_graph()
    ids = tuple(graph.find_edge(p, c) for p, c in fig6_tree_edges())
    tree = tree_from_edge_ids(graph, ids, root=0)
    labeling = label_tree(tree)
    result = balance(graph, tree, kernel="walk", labeling="serial", collect_stats=True)
    bip = harary_bipartition(graph, result.signs)
    return graph, tree, labeling, result, bip


def test_fig06_worked_example(benchmark):
    graph, tree, labeling, result, bip = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    lines = []
    t1 = TextTable(
        "Fig. 6(d-e): pre-order vertex relabeling and tree-edge ranges",
        ["vertex", "new id", "subtree size", "edge range (parent->v)"],
    )
    for v in range(graph.num_vertices):
        rng = (
            f"[{labeling.range_lo[v]}, {labeling.range_hi[v]}]"
            if tree.parent[v] >= 0
            else "(root)"
        )
        t1.add_row(v, int(labeling.new_id[v]), int(labeling.subtree_size[v]), rng)
    lines.append(t1.render())
    lines.append("")

    e67 = graph.find_edge(6, 7)
    idx = list(result.stats.edge_ids).index(e67)
    lines.append(
        "Fig. 6(f): worked cycle 6-7 traverses 7 -> 0 -> 3 -> 6 "
        f"(cycle length measured: {result.stats.lengths[idx]}, paper: 4)"
    )
    flips = np.nonzero(result.flipped)[0]
    flip_pairs = [(int(graph.edge_u[e]), int(graph.edge_v[e])) for e in flips]
    lines.append(f"Fig. 6(g): flipped edges: {flip_pairs}")
    lines.append(
        f"Fig. 6(h-i): Harary bipartition sizes: {bip.sizes}, "
        f"positive components: {int(bip.components.max()) + 1}"
    )
    save_table("fig06_worked_example", "\n".join(lines))

    assert np.array_equal(labeling.new_id, np.arange(10))
    assert result.stats.lengths[idx] == 4
    assert is_balanced(graph.with_signs(result.signs))

"""Future-work study (§7): how sparsity and the percentage of negative
signs affect graphB+'s behaviour — the quantification the paper defers.
"""

import numpy as np

from repro.analysis.sensitivity import density_sweep, negativity_sweep
from repro.perf.report import TextTable

from benchmarks.conftest import save_table, trees


def _run():
    num_trees = trees(3)
    dens = density_sweep(
        [1.5, 2.5, 4.0, 6.0, 10.0], num_vertices=2000, num_trees=num_trees, seed=0
    )
    negs = negativity_sweep(
        [0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
        num_vertices=2000,
        avg_degree=4.0,
        num_trees=num_trees,
        seed=0,
    )
    return dens, negs


def test_sensitivity_sweeps(benchmark):
    dens, negs = benchmark.pedantic(_run, rounds=1, iterations=1)

    t1 = TextTable(
        "Sensitivity to sparsity (Chung-Lu n=2000, 20% negative): denser "
        "graphs -> more but shorter cycles; total work grows ~with m",
        ["avg degree", "cycles", "avg cycle len", "on-cycle deg",
         "work/tree (ops)", "flip rate"],
    )
    for r in dens:
        t1.add_row(
            r.parameter, r.num_cycles, round(r.avg_cycle_length, 2),
            round(r.avg_on_cycle_degree, 1),
            round(r.cycle_work_per_tree, 0), round(r.flip_rate, 3),
        )

    t2 = TextTable(
        "Sensitivity to negative-sign fraction (same structure, coupled "
        "signs): traversal work is sign-independent; flips/frustration "
        "rise with negativity",
        ["neg fraction", "work/tree (ops)", "flip rate",
         "frustration bound"],
    )
    for r in negs:
        t2.add_row(
            r.parameter, round(r.cycle_work_per_tree, 0),
            round(r.flip_rate, 3), r.frustration_bound,
        )
    save_table("sensitivity_sweeps", t1.render() + "\n\n" + t2.render())

    # Density shape: cycles up, lengths down.
    assert dens[-1].num_cycles > dens[0].num_cycles
    assert dens[-1].avg_cycle_length < dens[0].avg_cycle_length
    # Negativity shape: work flat (< 25% CV), flips monotone up to 0.5.
    work = np.array([r.cycle_work_per_tree for r in negs])
    assert work.std() / work.mean() < 0.25
    half = [r.flip_rate for r in negs if r.parameter <= 0.5]
    assert half == sorted(half)
    assert negs[0].flip_rate == 0.0

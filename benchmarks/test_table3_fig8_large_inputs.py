"""Table 3 + Fig. 8: serial / OpenMP / CUDA runtime and throughput on
the 16 larger inputs for 1000 BFS trees.

Stand-ins run at 1/100 scale (S*: 1/10), so absolute modeled seconds
are ~scale× the paper's; the scale-free comparison is Fig. 8's
throughput (cycles balanced per second) and Fig. 9's speedups.  The
published runtimes are shown next to the modeled ones multiplied back
by the build scale for orientation.
"""

from repro.graph.datasets import CATALOG
from repro.parallel import CUDA_MACHINE, OPENMP_MACHINE, SERIAL_MACHINE, model_run_multi
from repro.perf.report import TextTable, geomean

from benchmarks.conftest import LARGE_INPUTS, dataset_lcc, save_table

#: Published Table 3 (seconds for 1000 trees): serial, openmp, cuda.
PAPER = {
    "A*_Android": (2812.7, 256.1, 281.3),
    "A*_Automotive": (406.0, 54.7, 16.0),
    "A*_Baby": (310.7, 38.2, 15.3),
    "A*_Book": (38775.0, 3193.8, 851.2),
    "A*_Electronics": (8327.4, 768.2, 255.0),
    "A*_Games": (983.8, 111.1, 55.1),
    "A*_Garden": (256.9, 36.7, 11.4),
    "A*_Instruments": (97.0, 16.1, 8.3),
    "A*_Jewelry": (2990.7, 352.3, 56.6),
    "A*_Music": (163.3, 25.7, 7.8),
    "A*_Outdoors": (1469.8, 195.0, 42.0),
    "A*_TV": (3447.9, 342.6, 87.4),
    "A*_Video": (309.2, 53.8, 117.9),
    "A*_Vinyl": (2302.3, 238.6, 49.0),
    "S*_opinion": (220.5, 22.7, 11.9),
    "S*_slashdot": (122.7, 11.0, 6.8),
}

NUM_TREES = 1000
MACHINES = {
    "serial": SERIAL_MACHINE,
    "openmp": OPENMP_MACHINE,
    "cuda": CUDA_MACHINE,
}


def _run():
    rows = []
    for name in LARGE_INPUTS:
        g = dataset_lcc(name)
        runs = model_run_multi(g, MACHINES, NUM_TREES, sample_trees=2, seed=0)
        rows.append((name, g, runs))
    return rows


def test_table3_fig8_large_inputs(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Table 3: modeled runtime (s) for {NUM_TREES} BFS trees on the larger "
        "inputs\n(modeled at stand-in scale, then re-scaled by 1/build-scale "
        "for comparison with the paper)",
        ["input", "serial", "paper", "openmp", "paper", "cuda", "paper"],
    )
    ser, omp, cud = [], [], []
    for name, _g, runs in rows:
        p = PAPER[name]
        scale = CATALOG[name].default_scale
        s = runs["serial"].graphb_seconds / scale
        o = runs["openmp"].graphb_seconds / scale
        c = runs["cuda"].graphb_seconds / scale
        table.add_row(name, round(s, 1), p[0], round(o, 1), p[1], round(c, 1), p[2])
        ser.append(s)
        omp.append(o)
        cud.append(c)
    table.add_row(
        "GEOMEAN",
        round(geomean(ser), 1), 881.9,
        round(geomean(omp), 1), 103.2,
        round(geomean(cud), 1), 40.8,
    )
    lines = [table.render(), ""]

    fig8 = TextTable(
        "Fig. 8: throughput in millions of fundamental cycles balanced per "
        "second (scale-free)",
        ["input", "serial", "openmp", "cuda"],
    )
    thr_cud = []
    for name, _g, runs in rows:
        fig8.add_row(
            name,
            round(runs["serial"].throughput_mcps, 2),
            round(runs["openmp"].throughput_mcps, 2),
            round(runs["cuda"].throughput_mcps, 2),
        )
        thr_cud.append(runs["cuda"].throughput_mcps)
    fig8.add_row("GEOMEAN", round(geomean([r["serial"].throughput_mcps for _, _, r in rows]), 2),
                 round(geomean([r["openmp"].throughput_mcps for _, _, r in rows]), 2),
                 round(geomean(thr_cud), 2))
    lines.append(fig8.render())
    lines.append("")
    lines.append(
        "paper geomean CUDA throughput on larger graphs: 16.8 Mcycles/s; "
        f"measured: {geomean(thr_cud):.1f} Mcycles/s"
    )
    save_table("table3_fig8_large_inputs", "\n".join(lines))

    # Shape assertions: ordering holds on geomean, CUDA throughput in
    # the right decade.
    assert geomean(cud) < geomean(omp) < geomean(ser)
    assert 4.0 < geomean(thr_cud) < 80.0

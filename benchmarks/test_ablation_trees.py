"""Ablation: spanning-tree sampling method (the paper's future work).

BFS trees minimize fundamental-cycle length (§2.2); DFS maximizes it;
Wilson samples uniformly.  The bench compares cycle-length
distributions, per-tree work, and the status estimates each method
produces on the same input.
"""

import numpy as np

from repro.cloud import sample_cloud
from repro.core import balance
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import dataset_lcc, save_table, trees

INPUT = "A*_Instruments_core5"
METHODS = ["bfs", "dfs", "wilson"]


def _run():
    g = dataset_lcc(INPUT)
    num_trees = trees(5)
    stats_rows = []
    for method in METHODS:
        sampler = TreeSampler(g, method=method, seed=0)
        lengths, depths, costs = [], [], []
        for i in range(num_trees):
            t = sampler.tree(i)
            r = balance(g, t, collect_stats=True)
            lengths.append(r.stats.avg_length)
            depths.append(t.depth)
            costs.append(float(r.stats.tree_degree_sums.sum()))
        stats_rows.append(
            (
                method,
                float(np.mean(lengths)),
                float(np.mean(depths)),
                float(np.mean(costs)),
            )
        )
    clouds = {
        method: sample_cloud(g, trees(40), method=method, seed=1).status()
        for method in METHODS
    }
    return g, stats_rows, clouds


def test_ablation_trees(benchmark):
    g, stats_rows, clouds = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Ablation: tree sampling method on {INPUT} "
        "(paper uses BFS because it minimizes cycle lengths)",
        ["method", "avg cycle length", "avg tree depth", "avg walk work (ops)"],
    )
    for method, length, depth, cost in stats_rows:
        table.add_row(method, round(length, 2), round(depth, 1), round(cost, 0))
    lines = [table.render(), ""]

    # Status agreement across methods: different tree families sample
    # different corners of the frustration cloud, so 40-state estimates
    # agree only directionally — quantifying the sampling-frequency
    # question the paper leaves for future work.
    base = clouds["bfs"]
    for method in ("dfs", "wilson"):
        r = float(np.corrcoef(base, clouds[method])[0, 1])
        lines.append(f"status correlation bfs vs {method} (40 states each): {r:.3f}")
    save_table("ablation_trees", "\n".join(lines))

    by = {m: (l, d, c) for m, l, d, c in stats_rows}
    # BFS gives the shortest cycles and the shallowest trees.
    assert by["bfs"][0] < by["dfs"][0]
    assert by["bfs"][1] <= by["dfs"][1]
    assert by["bfs"][0] <= by["wilson"][0]
    # Status estimates from different tree families agree directionally.
    assert float(np.corrcoef(base, clouds["wilson"])[0, 1]) > 0.1

"""Ablation (§3.3.1): why level-synchronous labeling needs shallow trees.

The paper argues the Alg. 4 parallelization works *because* social
graphs give shallow BFS trees (few, wide parallel regions).  This bench
tests that claim directly by pricing the labeling phase on a shallow
social stand-in vs a deep grid of comparable size: the grid pays ~40x
more fork/join overhead per vertex, and hyper-deep trees erase the
parallel labeling's advantage entirely.
"""

from repro.graph.components import largest_connected_component
from repro.graph.generators import chung_lu_signed, grid_graph
from repro.parallel import CpuMachine, collect_workload
from repro.perf.report import TextTable
from repro.trees import bfs_tree

from benchmarks.conftest import save_table


def _case(name, graph, seed):
    tree = bfs_tree(graph, seed=seed)
    w = collect_workload(graph, tree)
    serial = CpuMachine(threads=1).times(w)
    openmp = CpuMachine(threads=16).times(w)
    return {
        "name": name,
        "n": graph.num_vertices,
        "levels": tree.num_levels,
        "serial_label_ms": serial.labeling * 1e3,
        "openmp_label_ms": openmp.labeling * 1e3,
        "speedup": serial.labeling / openmp.labeling,
    }


def _scaled_case(name, graph, seed, factor):
    """Model a graph `factor`x larger with the same level structure —
    the paper-scale extrapolation (10M-vertex social graphs)."""
    from dataclasses import replace

    tree = bfs_tree(graph, seed=seed)
    w = collect_workload(graph, tree)
    big = replace(
        w,
        num_vertices=w.num_vertices * factor,
        num_edges=w.num_edges * factor,
        level_items=w.level_items * factor,
        treegen_ops=w.treegen_ops * factor,
        harary_ops=w.harary_ops * factor,
    )
    serial = CpuMachine(threads=1).times(big)
    openmp = CpuMachine(threads=16).times(big)
    return {
        "name": name,
        "n": big.num_vertices,
        "levels": tree.num_levels,
        "serial_label_ms": serial.labeling * 1e3,
        "openmp_label_ms": openmp.labeling * 1e3,
        "speedup": serial.labeling / openmp.labeling,
    }


def _run():
    social, _ = largest_connected_component(
        chung_lu_signed(10_000, 30_000, exponent=2.1, seed=0)
    )
    deep = grid_graph(100, 100, seed=0)  # same vertex count, deep tree
    return [
        _case("social (shallow)", social, 0),
        _case("grid (deep)", deep, 0),
        _scaled_case("social @ 1000x (paper scale)", social, 0, 1000),
    ]


def test_ablation_labeling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Ablation (§3.3.1): level-synchronous labeling on shallow vs deep "
        "trees (modeled per-tree labeling phase; 16 threads pay one "
        "fork/join per level per pass)",
        ["input", "vertices", "BFS levels", "serial label ms",
         "openmp label ms", "label speedup"],
    )
    for r in rows:
        table.add_row(
            r["name"], r["n"], r["levels"],
            round(r["serial_label_ms"], 3),
            round(r["openmp_label_ms"], 3),
            round(r["speedup"], 2),
        )
    save_table("ablation_labeling", table.render())

    social, deep, full = rows
    # The social graph has an order of magnitude fewer levels…
    assert social["levels"] * 8 < deep["levels"]
    # …and its parallel labeling fares strictly better relative to
    # serial than the deep grid's (the paper's efficiency argument).
    assert social["speedup"] > deep["speedup"]
    # On the deep grid, per-level overhead makes 16-thread labeling
    # *slower* than serial — exactly why shallowness matters.
    assert deep["speedup"] < 1.0
    # At paper scale (millions of vertices, same shallow levels) the
    # level-synchronous labeling speeds up properly.
    assert full["speedup"] > 3.5
"""Table 5: average fundamental-cycle length and average vertex degree
on the cycles.

Paper: cycles are surprisingly short (5.0–10.6, average 8.22) and
on-cycle degrees surprisingly high (average 147.7 vs graph average 3.3)
because most cycles pass through hubs.  Paper uses 1000 trees; we use
20 per input (documented scale-down) — the statistics stabilize within
a few trees.
"""

import numpy as np

from repro.core import balance
from repro.graph.datasets import CATALOG
from repro.perf.report import TextTable
from repro.trees import TreeSampler

from benchmarks.conftest import LARGE_INPUTS, SMALL_INPUTS, dataset_lcc, save_table, trees

#: Published Table 5: (avg cycle length, avg degree on cycles).
PAPER = {
    "A*_Android": (7.15, 432.01),
    "A*_Automotive": (10.63, 76.37),
    "A*_Baby": (8.54, 95.67),
    "A*_Book": (8.21, 492.34),
    "A*_Electronics": (8.37, 364.59),
    "A*_Games": (9.91, 104.99),
    "A*_Garden": (10.19, 79.25),
    "A*_Instruments": (10.15, 66.03),
    "A*_Instruments_core5": (7.84, 5.84),
    "A*_Jewelry": (10.60, 96.32),
    "A*_Music": (8.90, 64.34),
    "A*_Music_core5": (7.05, 16.08),
    "A*_Outdoors": (9.85, 108.77),
    "A*_TV": (7.09, 238.59),
    "A*_Video": (8.40, 351.73),
    "A*_Video_core5": (7.62, 10.68),
    "A*_Vinyl": (8.11, 151.57),
    "S*_opinion": (5.21, 103.25),
    "S*_slashdot": (5.55, 66.33),
    "S*_wiki": (5.03, 29.01),
}

NUM_TREES_DEFAULT = 20


def _run():
    num_trees = trees(NUM_TREES_DEFAULT)
    rows = []
    for name in SMALL_INPUTS + LARGE_INPUTS:
        g = dataset_lcc(name)
        sampler = TreeSampler(g, seed=0)
        lengths, degs = [], []
        for i in range(num_trees):
            r = balance(g, sampler.tree(i), collect_stats=True)
            lengths.append(r.stats.avg_length)
            degs.append(r.stats.avg_degree_on_cycles)
        rows.append((name, float(np.mean(lengths)), float(np.mean(degs))))
    return num_trees, rows


def test_table5_cycle_properties(benchmark):
    num_trees, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        f"Table 5: fundamental-cycle properties over {num_trees} BFS trees "
        "(paper used 1000 trees; averages: length 8.22, on-cycle degree 147.7)",
        ["input", "avg length", "paper", "avg degree on cycles", "paper"],
    )
    lens, degs = [], []
    for name, length, deg in rows:
        p = PAPER[name]
        table.add_row(name, round(length, 2), p[0], round(deg, 2), p[1])
        lens.append(length)
        degs.append(deg)
    table.add_row(
        "AVERAGE", round(float(np.mean(lens)), 2), 8.22,
        round(float(np.mean(degs)), 2), 147.69,
    )
    save_table("table5_cycle_properties", table.render())

    # Shape assertions (the §6.6 findings).
    avg_len = float(np.mean(lens))
    avg_deg = float(np.mean(degs))
    assert 4.0 < avg_len < 14.0          # cycles are short
    assert avg_deg > 5 * avg_len         # on-cycle degree >> cycle length
    # SNAP inputs have the shortest cycles (paper: 5.0-5.6).
    snap = [l for (n, l, d) in rows if n.startswith("S*")]
    amazon_ratings = [l for (n, l, d) in rows if n.startswith("A*") and "core5" not in n]
    assert float(np.mean(snap)) < float(np.mean(amazon_ratings))

"""Figs. 1–2: all spanning trees of the example Σ and its frustration
cloud (8 trees converging to 5 unique nearest balanced states).
"""

from repro.cloud import exact_cloud
from repro.graph.datasets import fig1_sigma
from repro.perf.report import TextTable
from repro.trees import count_spanning_trees

from benchmarks.conftest import save_table


def _run():
    graph = fig1_sigma()
    cloud = exact_cloud(graph)
    return graph, cloud


def test_fig01_02_frustration_cloud(benchmark):
    graph, cloud = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Fig. 1-2: frustration cloud of the example graph Sigma "
        "(paper: 8 spanning trees, 5 unique nearest balanced states)",
        ["quantity", "paper", "measured"],
    )
    num_trees = count_spanning_trees(graph)
    table.add_row("spanning trees", 8, num_trees)
    table.add_row("balanced states (one per tree)", 8, cloud.num_states)
    table.add_row("unique nearest states", 5, cloud.num_unique_states)
    table.add_row("frustration index", 1, cloud.frustration_upper_bound())

    mult = sorted(cloud.unique_states().values(), reverse=True)
    table.add_row("state multiplicities", "one state dominates", str(mult))
    save_table("fig01_02_frustration_cloud", table.render())

    assert num_trees == 8
    assert cloud.num_states == 8
    assert cloud.num_unique_states == 5

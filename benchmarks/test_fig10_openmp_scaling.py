"""Fig. 10: OpenMP strong scaling — speedup over serial for 1, 2, 4, 8,
16, and 32 threads, inputs sorted by fundamental-cycle count.

Paper shape: speedups grow with input size (2–8x small, 8–12x large on
16 cores), and hyperthreading (32 threads on 16 cores) helps little or
hurts, especially on the smallest inputs.
"""

from repro.graph.datasets import CATALOG
from repro.parallel import CpuMachine, model_run_multi
from repro.perf.report import TextTable

from benchmarks.conftest import LARGE_INPUTS, SMALL_INPUTS, dataset_lcc, save_table

THREADS = [1, 2, 4, 8, 16, 32]


def _run():
    names = SMALL_INPUTS + LARGE_INPUTS
    machines = {f"t{k}": CpuMachine(threads=k) for k in THREADS}
    rows = []
    for name in names:
        g = dataset_lcc(name)
        runs = model_run_multi(g, machines, 1000, sample_trees=2, seed=0)
        rows.append((name, g.num_fundamental_cycles, runs))
    rows.sort(key=lambda r: r[1])  # the paper sorts by cycle count
    return rows


def test_fig10_openmp_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Fig. 10: OpenMP speedup over serial by thread count "
        "(inputs sorted by cycle count; paper: larger inputs scale better, "
        "hyperthreading [32t on 16 cores] helps little)",
        ["input", "cycles"] + [f"{k}t" for k in THREADS],
    )
    speedups = {}
    for name, cycles, runs in rows:
        serial = runs["t1"].graphb_seconds
        sp = [serial / runs[f"t{k}"].graphb_seconds for k in THREADS]
        speedups[name] = sp
        table.add_row(name, cycles, *[round(x, 2) for x in sp])
    save_table("fig10_openmp_scaling", table.render())

    # Shape assertions.
    largest = rows[-1][0]
    smallest = rows[0][0]
    sp_large = speedups[largest]
    sp_small = speedups[smallest]
    # 16 threads on the largest input beats 16 threads on the smallest.
    assert sp_large[THREADS.index(16)] > sp_small[THREADS.index(16)]
    # Hyperthreading adds < 25% on every input (paper: little or negative).
    for name, sp in speedups.items():
        assert sp[THREADS.index(32)] < 1.25 * sp[THREADS.index(16)], name
    # Speedup on the largest input grows monotonically with threads in
    # the parallel configurations (2..16; 1->2 can dip below 1.0 from
    # fork/join overhead at stand-in scale, as on the paper's smallest
    # inputs).
    mono = sp_large[THREADS.index(2) : THREADS.index(16) + 1]
    assert mono == sorted(mono)
    assert sp_large[THREADS.index(16)] > 4.0

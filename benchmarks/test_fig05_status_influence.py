"""Fig. 5: the status–influence plane — the actual outcome separates in
balancing space while spectral clusters scatter.

The figure's replacement statistics: quadrant occupancy of winners and
losers in the status–influence plane (high-status/high-influence should
be winners, low/low losers), plus the outcome-mixing rate of spectral
clusters in the same plane.
"""

import numpy as np

from repro.analysis.election import election_report, generate_election
from repro.perf.report import TextTable

from benchmarks.conftest import save_table, trees


def _run():
    election = generate_election(
        num_users=600, num_candidates=120, votes_per_candidate=30, seed=1
    )
    report = election_report(
        election, num_states=trees(60), k_clusters=10, seed=1
    )
    return election, report


def test_fig05_status_influence(benchmark):
    election, report = benchmark.pedantic(_run, rounds=1, iterations=1)

    cand = election.candidates
    won = cand[election.outcome[cand] > 0]
    lost = cand[election.outcome[cand] < 0]
    s_med = np.median(report.status[cand])
    i_med = np.median(report.influence[cand])

    def quadrants(vs):
        hi_s = report.status[vs] >= s_med
        hi_i = report.influence[vs] >= i_med
        return (
            int(np.sum(hi_s & hi_i)),
            int(np.sum(hi_s & ~hi_i)),
            int(np.sum(~hi_s & hi_i)),
            int(np.sum(~hi_s & ~hi_i)),
        )

    qw, ql = quadrants(won), quadrants(lost)
    table = TextTable(
        "Fig. 5: candidates in the status-influence plane "
        "(paper: winners in the high/high corner, losers low/low; "
        "off-diagonal cases flag potential outcome bias)",
        ["group", "hi-s hi-i", "hi-s lo-i", "lo-s hi-i", "lo-s lo-i"],
    )
    table.add_row("winners", *qw)
    table.add_row("losers", *ql)

    # Off-diagonal candidates: the paper's "examine for bias" set.
    biased_w = int(np.sum(report.status[won] < s_med))
    biased_l = int(np.sum(report.status[lost] >= s_med))
    lines = [table.render(), ""]
    lines.append(f"low-status winners (bias candidates):  {biased_w}")
    lines.append(f"high-status losers (bias candidates):  {biased_l}")
    save_table("fig05_status_influence", "\n".join(lines))

    # Shape check: winners concentrate in the high-status half.
    assert qw[0] + qw[1] > qw[2] + qw[3]
    assert ql[2] + ql[3] > ql[0] + ql[1]

"""Future-work study (§7): tree-sampling frequency — how many sampled
states does the status need?

The paper samples 1000 trees per input but defers the convergence
question.  This bench traces the status estimate on the S*_wiki
stand-in and reports split-half reliability at increasing sample sizes.
"""

import numpy as np

from repro.cloud.convergence import split_half_agreement, status_trajectory
from repro.perf.report import TextTable

from benchmarks.conftest import dataset_lcc, save_table, trees

INPUT = "A*_Instruments_core5"


def _run():
    g = dataset_lcc(INPUT)
    cps = [trees(x) for x in (8, 16, 32, 64, 128)]
    # Deduplicate in case of scaling collisions.
    cps = sorted(set(cps))
    traj = status_trajectory(g, cps, seed=0)
    agreements = [
        (size, split_half_agreement(g, size, seed=1))
        for size in cps
        if size >= 4
    ]
    return g, traj, agreements


def test_futurework_convergence(benchmark):
    g, traj, agreements = benchmark.pedantic(_run, rounds=1, iterations=1)

    t1 = TextTable(
        f"Status convergence on {INPUT}: max per-vertex change between "
        "consecutive checkpoints (Cauchy criterion)",
        ["states", "max |delta status|"],
    )
    for cp, change in zip(traj.checkpoints, traj.max_step_change):
        t1.add_row(int(cp), "-" if np.isinf(change) else round(float(change), 4))

    t2 = TextTable(
        "Split-half reliability of the status estimate "
        "(correlation of two disjoint half-samples; -> 1 = converged)",
        ["states", "split-half r"],
    )
    for size, r in agreements:
        t2.add_row(size, round(r, 3))
    save_table(
        "futurework_convergence", t1.render() + "\n\n" + t2.render()
    )

    # Shape: estimates stabilize and reliability improves with samples.
    finite = traj.max_step_change[np.isfinite(traj.max_step_change)]
    assert finite[-1] <= finite[0]
    rs = [r for _s, r in agreements]
    assert rs[-1] > rs[0]
    assert rs[-1] > 0.4

"""Table 4: dynamic memory usage of the OpenMP and CUDA codes.

The allocation is linear in (n, m) and independent of the tree count
(§6.4), so the model is evaluated **analytically at the paper's full
input sizes** — no scaling caveats apply to this table.  Our own CSR
footprint (this Python library, at stand-in scale) is shown for
contrast.
"""

from repro.graph.datasets import CATALOG
from repro.perf.memory import (
    CUDA_DEVICE,
    cuda_device_mb,
    cuda_host_mb,
    max_edges_within,
    openmp_host_mb,
)
from repro.perf.report import TextTable

from benchmarks.conftest import save_table

#: Published Table 4 (MB): openmp host, cuda device, cuda host.
PAPER = {
    "A*_Android": (162.1, 197.0, 106.5),
    "A*_Automotive": (84.5, 99.8, 56.0),
    "A*_Baby": (57.5, 69.0, 37.9),
    "A*_Book": (1328.2, 1629.9, 869.8),
    "A*_Electronics": (489.6, 590.4, 322.3),
    "A*_Games": (141.9, 169.0, 93.8),
    "A*_Garden": (64.5, 76.0, 42.7),
    "A*_Instruments_core5": (0.6, 0.7, 0.4),
    "A*_Jewelry": (362.9, 432.1, 239.8),
    "A*_Music": (47.5, 56.3, 31.5),
    "A*_Music_core5": (3.3, 4.3, 2.1),
    "A*_Outdoors": (204.0, 242.7, 134.8),
    "A*_TV": (277.8, 339.1, 182.2),
    "A*_Video": (38.9, 46.0, 25.8),
    "A*_Video_core5": (2.0, 2.5, 1.3),
    "A*_Vinyl": (228.0, 276.7, 149.8),
    "S*_opinion": (36.1, 47.1, 23.8),
    "S*_slashdot": (26.1, 33.4, 16.8),
    "S*_wiki": (5.5, 7.2, 3.6),
}


def _run():
    rows = []
    for name, paper in PAPER.items():
        spec = CATALOG[name]
        n, m = spec.paper_vertices, spec.paper_edges
        rows.append(
            (
                name,
                openmp_host_mb(n, m),
                cuda_device_mb(n, m),
                cuda_host_mb(n, m),
                paper,
            )
        )
    return rows


def test_table4_memory(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        "Table 4: dynamic memory usage in MB at the paper's full input "
        "sizes (model: OpenMP 26B/v + 48B/e; device 24B/v + 62.5B/e; "
        "host 19B/v + 30.5B/e)",
        [
            "input", "openmp MB", "paper", "device MB", "paper",
            "cuda host MB", "paper",
        ],
    )
    worst = 0.0
    for name, omp, dev, host, paper in rows:
        table.add_row(
            name,
            round(omp, 1), paper[0],
            round(dev, 1), paper[1],
            round(host, 1), paper[2],
        )
        worst = max(
            worst,
            abs(omp - paper[0]) / paper[0],
            abs(dev - paper[1]) / paper[1],
            abs(host - paper[2]) / paper[2],
        )
    lines = [table.render(), ""]
    lines.append(f"worst relative error vs published Table 4: {worst:.1%}")
    cap = max_edges_within(12_000, CUDA_DEVICE, avg_degree=2.0)
    lines.append(
        f"capacity check (§6.4): 12 GB device memory fits ~{cap/1e6:.0f}M "
        "edges (paper: ~150M)"
    )
    save_table("table4_memory", "\n".join(lines))

    # The model must track every published row within 15% (most are <4%;
    # the table's own A*_Instruments row appears to contain a typo —
    # 362.9 MB for a 0.46M-edge graph — and is excluded above).
    assert worst < 0.15

#!/usr/bin/env python
"""Benchmark the serve daemon: query latency and throughput.

Runs an in-process ``repro serve`` daemon (no subprocess, no signals)
and measures GET latency from a small pool of keep-alive HTTP clients
over a fixed wall-clock window, in two scenarios:

* ``idle`` — the growth campaign has finished; queries compete only
  with each other.  This is the floor for query latency.
* ``growing`` — a background campaign is actively sampling states and
  publishing snapshots while the clients query.  The gap between this
  row and ``idle`` is the price of background growth (GIL contention
  plus snapshot publication).

Writes a JSON report (``--out``) with per-scenario ``qps``,
``p50_ms``, and ``p99_ms`` rows that
``scripts/check_perf_regression.py`` can gate against
``benchmarks/baselines/bench_serve_baseline.json``.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py --smoke \
        --out bench_serve.json
    python scripts/check_perf_regression.py \
        --baseline benchmarks/baselines/bench_serve_baseline.json \
        --current bench_serve.json --warn-threshold 0.5 \
        --fail-threshold 2.0 --out serve_comparison.json
"""

from __future__ import annotations

import argparse
import contextlib
import http.client
import json
import platform
import sys
import threading
import time
from pathlib import Path

from repro.graph.components import largest_connected_component
from repro.graph.generators import ensure_connected, erdos_renyi_signed
from repro.perf.registry import reset_global_registry
from repro.serve import ServeConfig, run_server

#: The query mix one measurement thread cycles through.  Vertex and
#: edge lookups dominate real traffic; the aggregate endpoints are the
#: expensive tail.
QUERY_MIX = (
    "/vertex/0",
    "/vertex/7",
    "/edge/0",
    "/edge/5",
    "/snapshot",
    "/frustration",
)


def build_graph(num_vertices: int, num_edges: int, seed: int):
    """An LCC-reduced random signed graph, same recipe as bench_cloud."""
    graph = ensure_connected(
        erdos_renyi_signed(
            num_vertices, num_edges, negative_fraction=0.3, seed=seed
        ),
        seed=seed,
    )
    sub, _ = largest_connected_component(graph)
    return sub


def percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


@contextlib.contextmanager
def _daemon(graph, **config_kwargs):
    """run_server on a worker thread; yields the bound port."""
    reset_global_registry()
    config = ServeConfig(port=0, **config_kwargs)
    stop = threading.Event()
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        box["exit"] = run_server(
            graph,
            config,
            stop_event=stop,
            ready_callback=lambda port: (
                box.__setitem__("port", port),
                ready.set(),
            ),
        )

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("daemon never started listening")
    try:
        yield box["port"]
    finally:
        stop.set()
        thread.join(30)
        if thread.is_alive():
            raise RuntimeError("daemon failed to drain")


def _wait_states(port: int, count: int, budget: float = 60.0) -> None:
    limit = time.monotonic() + budget
    while time.monotonic() < limit:
        with contextlib.suppress(OSError):
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=2.0
            )
            try:
                conn.request("GET", "/snapshot")
                resp = conn.getresponse()
                body = resp.read()
                if resp.status == 200 and json.loads(body)["states"] >= count:
                    return
            finally:
                conn.close()
        time.sleep(0.02)
    raise RuntimeError(f"daemon never published {count} states")


def _client(port: int, deadline: float, durations: list, errors: list) -> None:
    """One keep-alive client hammering the query mix until *deadline*."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        i = 0
        while time.monotonic() < deadline:
            path = QUERY_MIX[i % len(QUERY_MIX)]
            i += 1
            start = time.perf_counter()
            try:
                conn.request("GET", path)
                resp = conn.getresponse()
                resp.read()
                status = resp.status
            except OSError:
                errors.append(path)
                conn.close()
                conn = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=10.0
                )
                continue
            durations.append(time.perf_counter() - start)
            if status != 200:
                errors.append(f"{path} -> {status}")
    finally:
        conn.close()


def _measure(port: int, seconds: float, clients: int) -> dict:
    """Fire *clients* threads at the daemon for *seconds*; return stats."""
    durations: list = []
    errors: list = []
    deadline = time.monotonic() + seconds
    threads = [
        threading.Thread(
            target=_client, args=(port, deadline, durations, errors)
        )
        for _ in range(clients)
    ]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    ordered = sorted(durations)
    return {
        "requests": len(durations),
        "errors": len(errors),
        "wall_seconds": round(wall, 4),
        "qps": round(len(durations) / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(percentile(ordered, 0.50) * 1e3, 4),
        "p99_ms": round(percentile(ordered, 0.99) * 1e3, 4),
    }


def bench_idle(graph, *, states: int, seconds: float, clients: int) -> dict:
    """Latency floor: grow to *states*, wait for quiescence, measure."""
    with _daemon(graph, target_states=states, grow_step=states,
                 seed=0) as port:
        _wait_states(port, states)
        row = _measure(port, seconds, clients)
    row.update(scenario="idle", states=states)
    return row


def bench_growing(
    graph, *, warm_states: int, seconds: float, clients: int
) -> dict:
    """Measure with an active background campaign publishing snapshots."""
    with _daemon(
        graph,
        target_states=1_000_000,  # never finishes inside the window
        grow_step=8,
        seed=0,
    ) as port:
        _wait_states(port, warm_states)
        row = _measure(port, seconds, clients)
    row.update(scenario="growing", states=warm_states)
    return row


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph + short windows for CI")
    parser.add_argument("--seconds", type=float, default=None,
                        help="measurement window per scenario")
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args(argv)

    if args.smoke:
        num_vertices, num_edges, states = 120, 220, 32
        seconds = args.seconds or 2.0
    else:
        num_vertices, num_edges, states = 400, 900, 64
        seconds = args.seconds or 6.0

    graph = build_graph(num_vertices, num_edges, seed=0)
    print(
        f"bench_serve: {graph.num_vertices} vertices / "
        f"{graph.num_edges} edges, {args.clients} clients, "
        f"{seconds:.1f}s per scenario"
    )
    runs = [
        bench_idle(graph, states=states, seconds=seconds,
                   clients=args.clients),
        bench_growing(graph, warm_states=8, seconds=seconds,
                      clients=args.clients),
    ]
    for row in runs:
        print(
            f"  {row['scenario']:8s} qps={row['qps']:>9.1f} "
            f"p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms "
            f"({row['requests']} requests, {row['errors']} errors)"
        )
        if row["errors"]:
            print(f"error: scenario {row['scenario']} saw non-200 responses",
                  file=sys.stderr)
            return 1

    report = {
        "kind": "bench_serve",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "clients": args.clients,
        "seconds": seconds,
        "runs": runs,
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

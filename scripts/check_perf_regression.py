#!/usr/bin/env python
"""Gate a fresh benchmark report against a committed baseline.

Understands three report shapes, detected by the ``kind`` field:

* ``bench_cloud.py`` reports (no ``kind``): compared per configuration
  as described below.
* ``bench_serve.py`` reports (``kind: bench_serve``): compared per
  scenario (``idle``, ``growing``) on ``qps`` (higher is better) and
  ``p50_ms`` / ``p99_ms`` (lower is better).  Serve latencies are
  noisy on shared CI runners — gate them with generous thresholds
  (e.g. ``--warn-threshold 0.5 --fail-threshold 2.0``).
* ``bench_balanced.py`` reports (``kind: bench_balanced``): compared
  per ``(workload, tolerance)`` row on ``subgraph_size`` (higher is
  better — deterministic, so a drop is a real quality regression) and
  ``wall_seconds`` (lower is better; rows below the ``--min-seconds``
  noise floor in both reports are skipped).

For cloud reports, compares every matching configuration — keyed by
``(states, method, batch_size)`` within each graph entry — on two axes:

* **Throughput** (``states_per_sec``): a drop beyond the fail
  threshold fails the gate; beyond the warn threshold it warns.
* **Per-phase seconds** (``phases``: tree_sample, tree_swap,
  delta_relabel, labeling, parity_kernel, ...): a phase that got slower
  beyond the thresholds is flagged individually, so "the parity kernel
  regressed 2x" (or "delta relabeling regressed 2x") surfaces even when
  the campaign total hides it.  Phases too small to time reliably
  (below ``--min-seconds`` in both reports) are skipped.

Reports written before the swap-chain engine carry no ``method`` field;
their rows key as ``"bfs"``, so old baselines stay comparable.

Exit code 0 when everything passes (warnings allowed), 1 on any
failure, 2 on unusable input.  The full comparison is written as a
JSON artifact (``--out``) for CI upload.

Usage::

    PYTHONPATH=src python scripts/bench_cloud.py --smoke --repeat 3 \
        --out bench_current.json
    python scripts/check_perf_regression.py \
        --baseline benchmarks/baselines/bench_baseline.json \
        --current bench_current.json --out bench_comparison.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = "benchmarks/baselines/bench_baseline.json"


def _load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: report not found: {path}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict) or "runs" not in data:
        print(f"error: {path} is not a benchmark report", file=sys.stderr)
        raise SystemExit(2)
    return data


def _kind(report: dict) -> str:
    """Report family: ``cloud`` (legacy, no ``kind`` field),
    ``bench_serve``, or ``bench_balanced``."""
    return report.get("kind") or "cloud"


def _configs(report: dict) -> dict:
    """Flatten a report into {(states, method, batch_size): run_dict}.

    ``method`` defaults to ``"bfs"`` for rows from reports that predate
    the swap-chain engine.
    """
    flat: dict = {}
    for entry in report.get("runs", []):
        states = entry.get("states")
        seq = entry.get("sequential")
        if seq:
            flat[
                (states, seq.get("method", "bfs"), seq.get("batch_size", 1))
            ] = seq
        for run in entry.get("batched", []):
            flat[
                (states, run.get("method", "bfs"), run.get("batch_size"))
            ] = run
    return flat


def _status(ratio: float, warn: float, fail: float) -> str:
    if ratio > fail:
        return "fail"
    if ratio > warn:
        return "warn"
    return "ok"


def compare(
    baseline: dict,
    current: dict,
    warn: float,
    fail: float,
    min_seconds: float,
) -> dict:
    """Build the comparison document; see the module docstring for the
    axes.  ``regression`` is the fractional slowdown (0.30 = 30%
    slower than baseline), negative when the current run is faster."""
    base_cfgs = _configs(baseline)
    cur_cfgs = _configs(current)
    checks: list[dict] = []
    missing = sorted(
        str(k) for k in base_cfgs if k not in cur_cfgs
    )
    for key in sorted(base_cfgs, key=str):
        if key not in cur_cfgs:
            continue
        b, c = base_cfgs[key], cur_cfgs[key]
        states, method, batch_size = key

        b_sps = float(b.get("states_per_sec", 0) or 0)
        c_sps = float(c.get("states_per_sec", 0) or 0)
        if b_sps > 0 and c_sps > 0:
            regression = b_sps / c_sps - 1.0
            checks.append({
                "states": states,
                "method": method,
                "batch_size": batch_size,
                "metric": "states_per_sec",
                "baseline": b_sps,
                "current": c_sps,
                "regression": round(regression, 4),
                "status": _status(regression, warn, fail),
            })

        b_phases = b.get("phases") or {}
        c_phases = c.get("phases") or {}
        for phase in sorted(set(b_phases) & set(c_phases)):
            b_s, c_s = float(b_phases[phase]), float(c_phases[phase])
            if b_s < min_seconds and c_s < min_seconds:
                continue  # too small to time reliably
            if b_s <= 0:
                continue
            regression = c_s / b_s - 1.0
            checks.append({
                "states": states,
                "method": method,
                "batch_size": batch_size,
                "metric": f"phase:{phase}",
                "baseline": b_s,
                "current": c_s,
                "regression": round(regression, 4),
                "status": _status(regression, warn, fail),
            })

    return {
        "baseline_configs": len(base_cfgs),
        "current_configs": len(cur_cfgs),
        "missing_configs": missing,
        "warn_threshold": warn,
        "fail_threshold": fail,
        "min_seconds": min_seconds,
        "checks": checks,
        "warnings": sum(1 for c in checks if c["status"] == "warn"),
        "failures": sum(1 for c in checks if c["status"] == "fail"),
    }


def compare_serve(baseline: dict, current: dict, warn: float,
                  fail: float) -> dict:
    """Per-scenario serve comparison: ``qps`` higher-better,
    ``p50_ms`` / ``p99_ms`` lower-better.  Same document shape as
    :func:`compare` so the CI artifact and summary printing are
    uniform."""
    base_cfgs = {r["scenario"]: r for r in baseline.get("runs", [])}
    cur_cfgs = {r["scenario"]: r for r in current.get("runs", [])}
    checks: list[dict] = []
    missing = sorted(k for k in base_cfgs if k not in cur_cfgs)
    for scenario in sorted(base_cfgs):
        if scenario not in cur_cfgs:
            continue
        b, c = base_cfgs[scenario], cur_cfgs[scenario]
        for metric, higher_better in (
            ("qps", True), ("p50_ms", False), ("p99_ms", False),
        ):
            b_v = float(b.get(metric, 0) or 0)
            c_v = float(c.get(metric, 0) or 0)
            if b_v <= 0 or c_v <= 0:
                continue
            regression = (b_v / c_v if higher_better else c_v / b_v) - 1.0
            checks.append({
                "scenario": scenario,
                "metric": metric,
                "label": f"serve:{scenario}",
                "baseline": b_v,
                "current": c_v,
                "regression": round(regression, 4),
                "status": _status(regression, warn, fail),
            })
    return {
        "baseline_configs": len(base_cfgs),
        "current_configs": len(cur_cfgs),
        "missing_configs": missing,
        "warn_threshold": warn,
        "fail_threshold": fail,
        "checks": checks,
        "warnings": sum(1 for c in checks if c["status"] == "warn"),
        "failures": sum(1 for c in checks if c["status"] == "fail"),
    }


def compare_balanced(
    baseline: dict,
    current: dict,
    warn: float,
    fail: float,
    min_seconds: float,
) -> dict:
    """Per-workload balanced comparison: ``subgraph_size``
    higher-better, ``wall_seconds`` lower-better with the noise floor.
    Rows key as ``(workload, tolerance)``; document shape matches
    :func:`compare`."""
    def rows(report: dict) -> dict:
        return {
            (r["workload"], r.get("tolerance", 0)): r
            for r in report.get("runs", [])
        }

    base_cfgs = rows(baseline)
    cur_cfgs = rows(current)
    checks: list[dict] = []
    missing = sorted(str(k) for k in base_cfgs if k not in cur_cfgs)
    for key in sorted(base_cfgs):
        if key not in cur_cfgs:
            continue
        b, c = base_cfgs[key], cur_cfgs[key]
        workload, tolerance = key
        label = f"balanced:{workload} t={tolerance}"
        for metric, higher_better in (
            ("subgraph_size", True), ("wall_seconds", False),
        ):
            b_v = float(b.get(metric, 0) or 0)
            c_v = float(c.get(metric, 0) or 0)
            if b_v <= 0 or c_v <= 0:
                continue
            if (
                metric == "wall_seconds"
                and b_v < min_seconds
                and c_v < min_seconds
            ):
                continue  # too small to time reliably
            regression = (b_v / c_v if higher_better else c_v / b_v) - 1.0
            checks.append({
                "workload": workload,
                "tolerance": tolerance,
                "metric": metric,
                "label": label,
                "baseline": b_v,
                "current": c_v,
                "regression": round(regression, 4),
                "status": _status(regression, warn, fail),
            })
    return {
        "baseline_configs": len(base_cfgs),
        "current_configs": len(cur_cfgs),
        "missing_configs": missing,
        "warn_threshold": warn,
        "fail_threshold": fail,
        "min_seconds": min_seconds,
        "checks": checks,
        "warnings": sum(1 for c in checks if c["status"] == "warn"),
        "failures": sum(1 for c in checks if c["status"] == "fail"),
    }


def _label(check: dict) -> str:
    """Human-readable configuration label for a summary line."""
    if "label" in check:
        return check["label"]
    return (f"states={check['states']} method={check['method']} "
            f"batch_size={check['batch_size']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--current", required=True,
                        help="fresh bench_cloud.py report to gate")
    parser.add_argument("--out", default="bench_comparison.json",
                        help="write the full comparison here (CI artifact)")
    parser.add_argument("--warn-threshold", type=float, default=0.15,
                        help="warn beyond this fractional slowdown "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--fail-threshold", type=float, default=0.30,
                        help="fail beyond this fractional slowdown "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="skip phases below this many seconds in both "
                             "reports (noise floor, default 0.005)")
    args = parser.parse_args(argv)
    if args.warn_threshold > args.fail_threshold:
        print("error: --warn-threshold must not exceed --fail-threshold",
              file=sys.stderr)
        return 2

    baseline = _load(args.baseline)
    current = _load(args.current)
    kind = _kind(baseline)
    if kind != _kind(current):
        print(f"error: baseline and current reports are different kinds "
              f"({kind} vs {_kind(current)})", file=sys.stderr)
        return 2
    if kind == "bench_serve":
        result = compare_serve(
            baseline, current,
            warn=args.warn_threshold,
            fail=args.fail_threshold,
        )
    elif kind == "bench_balanced":
        result = compare_balanced(
            baseline, current,
            warn=args.warn_threshold,
            fail=args.fail_threshold,
            min_seconds=args.min_seconds,
        )
    else:
        result = compare(
            baseline, current,
            warn=args.warn_threshold,
            fail=args.fail_threshold,
            min_seconds=args.min_seconds,
        )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n",
                              encoding="utf-8")

    if not result["checks"]:
        print("error: no comparable configurations between baseline and "
              "current report", file=sys.stderr)
        return 2
    for check in result["checks"]:
        if check["status"] == "ok":
            continue
        direction = "slower" if check["regression"] > 0 else "faster"
        print(f"{check['status'].upper()}: {_label(check)} "
              f"{check['metric']}: "
              f"{check['baseline']} -> {check['current']} "
              f"({abs(check['regression']):.1%} {direction})")
    if result["missing_configs"]:
        print(f"note: {len(result['missing_configs'])} baseline "
              f"configuration(s) absent from the current report: "
              f"{', '.join(result['missing_configs'])}")
    print(f"perf gate: {len(result['checks'])} checks, "
          f"{result['warnings']} warning(s), {result['failures']} "
          f"failure(s) (warn >{args.warn_threshold:.0%}, "
          f"fail >{args.fail_threshold:.0%}); comparison in {args.out}")
    return 1 if result["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Benchmark the balanced-subgraph workloads (extract + tolerance).

Runs both workloads on a planted-partition signed graph (two positive
communities joined by negative edges, plus sign noise — the ground
truth these algorithms are supposed to dig out) and reports, per
workload row:

* ``subgraph_size`` — kept vertices; **higher is better** and fully
  deterministic for a given seed, so the CI gate catches quality
  regressions exactly.
* ``wall_seconds`` — best-of ``--repeat`` wall time for the complete
  portfolio run (eigen + rounding + polish over all restarts);
  **lower is better**, gated with the usual noise floor.

Every row is audited in-process with the independent checker
(:func:`repro.balanced.tolerance.tolerance_violations`) before it is
written; a report whose subgraphs fail their own audit exits non-zero
rather than gating garbage.

Usage::

    PYTHONPATH=src python scripts/bench_balanced.py --smoke \
        --out bench_balanced.json
    python scripts/check_perf_regression.py \
        --baseline benchmarks/baselines/bench_balanced_baseline.json \
        --current bench_balanced.json --warn-threshold 0.5 \
        --fail-threshold 2.0 --out balanced_comparison.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.balanced import run_balanced
from repro.balanced.tolerance import tolerance_violations
from repro.graph.generators import ensure_connected, planted_partition_signed

#: (workload, tolerance) rows every report carries, in gate-key order.
WORKLOADS = (
    ("extract", 0),
    ("tolerance", 2),
)


def build_graph(group_size: int, seed: int):
    """Two planted communities with 10% sign noise, connected."""
    return ensure_connected(
        planted_partition_signed(
            [group_size, group_size],
            intra_degree=6.0,
            inter_degree=2.0,
            flip_noise=0.10,
            seed=seed,
        ),
        seed=seed,
    )


def bench_workload(
    graph, workload: str, tolerance: int, *, restarts: int, repeat: int
) -> dict:
    """One report row: best-of-*repeat* wall time plus the (identical
    across repeats) subgraph quality numbers."""
    best_wall = None
    report = None
    for _ in range(repeat):
        start = time.perf_counter()
        report = run_balanced(
            graph,
            workload=workload,
            tolerance=tolerance,
            restarts=restarts,
            seed=0,
        )
        wall = time.perf_counter() - start
        best_wall = wall if best_wall is None else min(best_wall, wall)
    assert report is not None
    violations = tolerance_violations(
        graph, report.best.vertices, report.best.sides
    )
    audit_max = int(violations.max()) if len(violations) else 0
    return {
        "workload": workload,
        "tolerance": tolerance,
        "restarts": restarts,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "subgraph_size": report.best.num_vertices,
        "subgraph_edges": report.best.num_edges,
        "unsatisfied_edges": report.best.unsatisfied_edges,
        "seed_label": report.best.seed_label,
        "audit_max_violations": audit_max,
        "audit_ok": audit_max <= tolerance,
        "wall_seconds": round(best_wall, 4),
    }


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_balanced.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph for CI")
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-time repetitions; best is reported "
                             "(default 3)")
    parser.add_argument("--restarts", type=int, default=4)
    args = parser.parse_args(argv)

    group_size = 400 if args.smoke else 1500
    graph = build_graph(group_size, seed=1)
    print(f"bench_balanced: {graph.num_vertices} vertices / "
          f"{graph.num_edges} edges, {args.restarts} restarts, "
          f"best of {args.repeat}")

    runs = []
    for workload, tolerance in WORKLOADS:
        row = bench_workload(
            graph, workload, tolerance,
            restarts=args.restarts, repeat=args.repeat,
        )
        runs.append(row)
        print(f"  {workload:10s} t={tolerance} "
              f"size={row['subgraph_size']:>6,}/{row['vertices']:,} "
              f"edges={row['subgraph_edges']:>7,} "
              f"wall={row['wall_seconds']:.3f}s "
              f"(seed {row['seed_label']}, audit "
              f"{'ok' if row['audit_ok'] else 'FAILED'})")
        if not row["audit_ok"]:
            print(f"error: {workload} subgraph failed its independent "
                  f"audit (max violations {row['audit_max_violations']} "
                  f"> tolerance {tolerance})", file=sys.stderr)
            return 1

    report = {
        "kind": "bench_balanced",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "generator": f"planted_partition[{group_size},{group_size}]",
        },
        "restarts": args.restarts,
        "repeat": args.repeat,
        "runs": runs,
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""One-shot reproduction driver.

Runs the full validation and regenerates every table/figure, collecting
logs under ``artifacts/``:

    python scripts/reproduce.py            # tests + benches
    python scripts/reproduce.py --quick    # tests + the exact-anchor benches only
    python scripts/reproduce.py --examples # also run the example scripts

Exit code is nonzero if any stage fails.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARTIFACTS = REPO / "artifacts"

QUICK_BENCHES = [
    "benchmarks/test_fig01_02_frustration_cloud.py",
    "benchmarks/test_fig03_status.py",
    "benchmarks/test_fig06_worked_example.py",
    "benchmarks/test_table4_memory.py",
]

EXAMPLES = [
    "examples/quickstart.py",
    "examples/election_analysis.py",
    "examples/consensus_pipeline.py",
    "examples/scaling_study.py",
    "examples/frustration_cloud_tour.py",
    "examples/dynamic_updates.py",
    "examples/checkpointed_campaign.py",
]


def run_stage(name: str, cmd: list[str]) -> bool:
    """Run one stage, teeing output to artifacts/<name>.log."""
    ARTIFACTS.mkdir(exist_ok=True)
    log = ARTIFACTS / f"{name}.log"
    print(f"[{name}] {' '.join(cmd)}")
    start = time.perf_counter()
    with open(log, "w", encoding="utf-8") as fh:
        proc = subprocess.run(
            cmd, cwd=REPO, stdout=fh, stderr=subprocess.STDOUT
        )
    elapsed = time.perf_counter() - start
    status = "ok" if proc.returncode == 0 else f"FAILED (rc={proc.returncode})"
    print(f"[{name}] {status} in {elapsed:.1f}s -> {log.relative_to(REPO)}")
    return proc.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run only the exact-anchor benches")
    parser.add_argument("--examples", action="store_true",
                        help="also run the example scripts")
    parser.add_argument("--skip-tests", action="store_true")
    args = parser.parse_args(argv)

    ok = True
    if not args.skip_tests:
        ok &= run_stage(
            "tests", [sys.executable, "-m", "pytest", "tests/", "-q"]
        )
    bench_targets = QUICK_BENCHES if args.quick else ["benchmarks/"]
    ok &= run_stage(
        "benchmarks",
        [sys.executable, "-m", "pytest", *bench_targets, "--benchmark-only", "-q"],
    )
    if args.examples:
        for script in EXAMPLES:
            name = Path(script).stem
            ok &= run_stage(f"example-{name}", [sys.executable, script])

    print()
    if ok:
        print("reproduction complete; tables under benchmarks/results/, "
              "logs under artifacts/")
        return 0
    print("reproduction FAILED; see artifacts/*.log")
    return 1


if __name__ == "__main__":
    sys.exit(main())

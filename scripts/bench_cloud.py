#!/usr/bin/env python
"""Benchmark the cloud engines: sequential, tree-batched, and swap-chain.

Writes ``BENCH_cloud.json``: states/sec for the sequential driver
(``batch_size=1``), the batched BFS engine, and the incremental
swap-chain engine at several graph sizes and batch sizes — plus an
exact seed-for-seed consensus-attribute identity check for the batched
BFS rows (bit-identical by contract) and a frustration-bound tolerance
check for the swap rows (statistically equivalent by contract).  This
file tracks the perf trajectory for the cloud pipeline — re-run after
optimizations and compare.

Usage::

    PYTHONPATH=src python scripts/bench_cloud.py              # full run
    PYTHONPATH=src python scripts/bench_cloud.py --smoke      # CI smoke
    PYTHONPATH=src python scripts/bench_cloud.py --tree-method swap
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cloud.cloud import sample_cloud
from repro.graph.generators import ensure_connected, erdos_renyi_signed
from repro.perf.export import phase_seconds
from repro.perf.registry import collecting

#: Relative tolerance for the swap rows' frustration-bound agreement
#: with the sequential BFS cloud (loose: both are minima of noisy
#: samples; the bound documents statistical, not bit, equivalence).
FRUSTRATION_RTOL = 0.10


def build_graph(num_vertices: int, num_edges: int, seed: int):
    graph = ensure_connected(
        erdos_renyi_signed(num_vertices, num_edges, negative_fraction=0.3,
                           seed=seed),
        seed=seed,
    )
    from repro.graph.components import largest_connected_component

    sub, _ = largest_connected_component(graph)
    return sub


def attributes_identical(a, b) -> bool:
    """Exact equality of every consensus attribute (the acceptance bar
    for the batched BFS engine)."""
    checks = [
        np.array_equal(a.status(), b.status()),
        np.array_equal(a.influence(), b.influence()),
        np.array_equal(a.edge_agreement(), b.edge_agreement()),
        np.array_equal(a.edge_coside(), b.edge_coside()),
        np.array_equal(a.flip_counts(), b.flip_counts()),
        a.frustration_upper_bound() == b.frustration_upper_bound(),
    ]
    return all(bool(c) for c in checks)


def frustration_within_tol(a, b, rtol: float = FRUSTRATION_RTOL) -> bool:
    """The swap rows' acceptance bar: frustration upper bounds agree
    within *rtol* (swap clouds are statistically, not bit, equivalent)."""
    lo, hi = a.frustration_upper_bound(), b.frustration_upper_bound()
    return abs(hi - lo) <= max(5, rtol * max(lo, 1))


def bench_one(
    graph,
    num_states: int,
    batch_size: int,
    seed: int,
    repeat: int = 1,
    method: str = "bfs",
    swaps_per_state: int = 1,
) -> dict:
    """Best-of-*repeat* timing of one configuration, with the fastest
    run's per-phase span breakdown (tree_sample / tree_swap /
    delta_relabel / kernels / harary), so regressions are attributable
    to a phase, not just a total."""
    best: dict | None = None
    for _ in range(max(repeat, 1)):
        # Detached window: repeats don't pollute the global registry.
        with collecting(merge=False) as registry:
            start = time.perf_counter()
            cloud = sample_cloud(
                graph, num_states, method=method, seed=seed,
                batch_size=batch_size, swaps_per_state=swaps_per_state,
            )
            elapsed = time.perf_counter() - start
        if best is not None and elapsed >= best["seconds"]:
            continue
        snapshot = registry.snapshot()
        phases = phase_seconds(snapshot)
        campaign = float(
            snapshot["counters"].get("span.campaign.seconds", 0.0)
        )
        best = {
            "method": method,
            "batch_size": batch_size,
            "seconds": round(elapsed, 4),
            "states_per_sec": round(num_states / elapsed, 2),
            "phases": {
                name: round(secs, 4) for name, secs in sorted(phases.items())
            },
            # Fraction of the wall-clock the campaign span accounts for
            # (instrumentation completeness, not performance).
            "span_coverage": round(campaign / elapsed, 4) if elapsed else 0.0,
            "_cloud": cloud,
        }
    assert best is not None
    return best


class ShardProbe:
    """Picklable per-block hook for the shard benchmark.

    Two jobs: model a heavy chain tail (sleep *per_heavy* seconds for
    every state at or past *heavy_from* — the skew that static
    partitioning serializes onto one worker and work-stealing spreads)
    and sample the worker's anonymous RSS into a shared file, one
    ``pid kb`` line per block (anonymous, not total: memmap'd store
    pages are file-backed and shared, so RssAnon is what the zero-copy
    store is supposed to keep flat).
    """

    def __init__(self, rss_path, heavy_from=None, per_heavy=0.0):
        self.rss_path = str(rss_path)
        self.heavy_from = heavy_from
        self.per_heavy = per_heavy

    def __call__(self, block):
        if self.heavy_from is not None and self.per_heavy:
            heavy = sum(1 for i in range(*block) if i >= self.heavy_from)
            if heavy:
                time.sleep(heavy * self.per_heavy)
        anon = 0
        try:
            for line in Path("/proc/self/status").read_text().splitlines():
                if line.startswith("RssAnon"):
                    anon = int(line.split()[1])
                    break
        except OSError:
            pass
        with open(self.rss_path, "a") as fh:
            fh.write(f"{os.getpid()} {anon}\n")


def _per_worker_anon_kb(path) -> dict[str, int]:
    """Peak RssAnon (KB) per worker pid from a :class:`ShardProbe` log."""
    worst: dict[str, int] = {}
    for line in Path(path).read_text().splitlines():
        pid, kb = line.split()
        worst[pid] = max(worst.get(pid, 0), int(kb))
    return worst


def bench_shard(graph, store, num_states, seed, workers, scratch) -> dict:
    """Static partitioning vs work-stealing on a skewed workload, plus
    per-worker RSS for pickle- vs store-initialized pools.

    The skew is a synthetic heavy tail: the last quarter of the states
    each cost an extra ``sleep``.  Static contiguous partitioning hands
    the whole tail to the last worker; fine-grained stealing chunks let
    idle workers drain it, so the steal run should win wall-clock on
    the same campaign.
    """
    from repro.parallel.pool import sample_cloud_pool

    heavy_from = num_states * 3 // 4
    per_heavy = 0.02
    section: dict = {
        "states": num_states,
        "workers": workers,
        "heavy_tail_states": num_states - heavy_from,
        "sleep_per_heavy_state": per_heavy,
    }
    clouds = {}
    for label, steal in (("static", None), ("steal", 8 * workers)):
        probe = ShardProbe(
            scratch / f"rss-{label}.txt",
            heavy_from=heavy_from, per_heavy=per_heavy,
        )
        start = time.perf_counter()
        clouds[label] = sample_cloud_pool(
            graph, num_states, workers=workers, method="swap", seed=seed,
            graph_store=store, steal_chunks=steal, fault=probe,
        )
        section[f"{label}_seconds"] = round(time.perf_counter() - start, 4)
    section["steal_speedup"] = round(
        section["static_seconds"] / section["steal_seconds"], 2
    )
    section["status_identical"] = bool(
        np.array_equal(clouds["static"].status(), clouds["steal"].status())
    )
    print(f"  shard swap static    {section['static_seconds']:>8.4f}s")
    print(f"  shard swap steal     {section['steal_seconds']:>8.4f}s "
          f"({section['steal_speedup']}x, "
          f"identical={section['status_identical']})", flush=True)

    rss: dict = {}
    for mode in ("pickle", "store"):
        per_count: dict = {}
        for w in sorted({2, workers}):
            log = scratch / f"rss-{mode}-{w}.txt"
            sample_cloud_pool(
                graph, min(num_states, 4 * w), workers=w, seed=seed,
                graph_store=store if mode == "store" else None,
                fault=ShardProbe(log),
            )
            worst = _per_worker_anon_kb(log)
            values = sorted(worst.values())
            per_count[str(w)] = {
                "workers_seen": len(worst),
                "mean_anon_kb": int(sum(values) / max(len(values), 1)),
                "max_anon_kb": values[-1] if values else 0,
            }
        rss[mode] = per_count
        shown = ", ".join(
            f"{w}w mean={v['mean_anon_kb']}KB" for w, v in per_count.items()
        )
        print(f"  shard rss {mode:<6s}     {shown}", flush=True)
    section["per_worker_rss_anon_kb"] = rss
    return section


def _print_phases(run: dict) -> None:
    total = sum(run["phases"].values()) or 1.0
    for name, secs in sorted(
        run["phases"].items(), key=lambda kv: -kv[1]
    ):
        print(f"      {name:<16s} {secs:>8.4f}s  {100 * secs / total:5.1f}%",
              flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_cloud.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (seconds, not minutes)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="time each configuration N times and keep "
                             "the fastest (reduces scheduler noise; the "
                             "CI gate uses 3)")
    parser.add_argument("--tree-method", choices=["bfs", "swap", "both"],
                        default="both",
                        help="which engines to benchmark (default both; "
                             "the sequential BFS baseline always runs — "
                             "swap rows are measured against it)")
    parser.add_argument("--swaps-per-state", type=int, default=1,
                        metavar="N",
                        help="chain stride for the swap rows (default 1)")
    parser.add_argument("--phases", action="store_true",
                        help="print the per-phase table for every run")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also write every benchmarked campaign's span "
                             "timeline as Chrome trace JSON")
    parser.add_argument("--graph-store", action="store_true",
                        help="also bench the zero-copy mmap store: a "
                             "store-backed sequential row per graph "
                             "(method 'bfs_store', gated like any other "
                             "row) plus a sharded section — static vs "
                             "work-stealing wall time on a skewed "
                             "workload and per-worker RssAnon for "
                             "pickle- vs store-initialized pools")
    parser.add_argument("--shard-workers", type=int, default=4, metavar="N",
                        help="pool size for the --graph-store shard "
                             "section (default 4)")
    args = parser.parse_args(argv)

    if args.smoke:
        # Big enough that every gated phase clears the regression
        # checker's noise floor, small enough for a CI smoke lane.
        configs = [
            {"vertices": 1000, "edges": 4000, "states": 200,
             "batch_sizes": [8, 32]},
        ]
    else:
        configs = [
            {"vertices": 1000, "edges": 4000, "states": 200,
             "batch_sizes": [8, 32, 64]},
            {"vertices": 4000, "edges": 20000, "states": 1000,
             "batch_sizes": [32, 64, 128]},
            {"vertices": 12000, "edges": 60000, "states": 200,
             "batch_sizes": [32, 64]},
        ]
    methods = (
        ["bfs", "swap"] if args.tree_method == "both" else [args.tree_method]
    )

    report = {
        "benchmark": "cloud_states_per_sec",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "seed": args.seed,
        "repeat": args.repeat,
        "swaps_per_state": args.swaps_per_state,
        "runs": [],
    }
    if args.trace_out:
        from repro.perf.tracing import collecting_trace

        trace_scope = collecting_trace()
    else:
        trace_scope = contextlib.nullcontext(None)
    scratch: Path | None = None
    shard_section: dict | None = None
    with trace_scope as collector:
        for cfg in configs:
            graph = build_graph(cfg["vertices"], cfg["edges"], args.seed)
            entry = {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "states": cfg["states"],
            }
            print(f"graph n={graph.num_vertices} m={graph.num_edges} "
                  f"states={cfg['states']}", flush=True)

            seq = bench_one(graph, cfg["states"], 1, args.seed, args.repeat)
            seq_cloud = seq.pop("_cloud")
            entry["sequential"] = seq
            print(f"  sequential          {seq['states_per_sec']:>9.2f} "
                  "states/s", flush=True)
            if args.phases:
                _print_phases(seq)

            entry["batched"] = []
            if args.graph_store:
                from repro.graph.store import GraphStore

                if scratch is None:
                    scratch = Path(tempfile.mkdtemp(prefix="bench-store-"))
                store = GraphStore.pack(
                    graph, scratch / f"bench-{graph.num_vertices}.rsgs"
                )
                # Same engine, same order — only the arrays' backing
                # changes, so this row must stay bit-identical AND as
                # fast as the in-memory sequential row.
                run = bench_one(
                    store.graph(), cfg["states"], 1, args.seed, args.repeat
                )
                cloud = run.pop("_cloud")
                run["method"] = "bfs_store"
                run["speedup_vs_sequential"] = round(
                    run["states_per_sec"] / seq["states_per_sec"], 2
                )
                run["attributes_identical"] = attributes_identical(
                    seq_cloud, cloud
                )
                entry["batched"].append(run)
                print(f"  bfs_store (mmap)    {run['states_per_sec']:>9.2f} "
                      f"states/s  ({run['speedup_vs_sequential']}x, "
                      f"identical={run['attributes_identical']})",
                      flush=True)
                if shard_section is None:
                    shard_section = bench_shard(
                        graph, store, cfg["states"], args.seed,
                        args.shard_workers, scratch,
                    )
            for method in methods:
                for bs in cfg["batch_sizes"]:
                    run = bench_one(
                        graph, cfg["states"], bs, args.seed, args.repeat,
                        method=method,
                        swaps_per_state=args.swaps_per_state,
                    )
                    cloud = run.pop("_cloud")
                    run["speedup_vs_sequential"] = round(
                        run["states_per_sec"] / seq["states_per_sec"], 2
                    )
                    if method == "bfs":
                        run["attributes_identical"] = attributes_identical(
                            seq_cloud, cloud
                        )
                        verdict = (
                            f"identical={run['attributes_identical']}"
                        )
                    else:
                        run["frustration_within_tol"] = (
                            frustration_within_tol(seq_cloud, cloud)
                        )
                        verdict = (
                            "frustration_within_tol="
                            f"{run['frustration_within_tol']}"
                        )
                    entry["batched"].append(run)
                    print(f"  {method:<5s} batch_size={bs:<4d}"
                          f"{run['states_per_sec']:>9.2f} "
                          f"states/s  ({run['speedup_vs_sequential']}x, "
                          f"{verdict})", flush=True)
                    if args.phases:
                        _print_phases(run)
            report["runs"].append(entry)
    if args.trace_out:
        from repro.perf.trace_export import spans_to_events, write_chrome_trace

        write_chrome_trace(spans_to_events(collector.events()), args.trace_out)
        print(f"wrote {args.trace_out} ({len(collector)} spans)")

    best = max(
        (run["speedup_vs_sequential"]
         for entry in report["runs"] for run in entry["batched"]),
        default=0.0,
    )
    report["best_speedup"] = best
    report["all_identical"] = all(
        run["attributes_identical"]
        for entry in report["runs"] for run in entry["batched"]
        if run["method"] in ("bfs", "bfs_store")
    )
    if shard_section is not None:
        report["shard"] = shard_section
    report["all_swap_within_tol"] = all(
        run["frustration_within_tol"]
        for entry in report["runs"] for run in entry["batched"]
        if run["method"] == "swap"
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} (best speedup {best}x, "
          f"all identical: {report['all_identical']}, "
          f"swap within tol: {report['all_swap_within_tol']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the vectorized CSR gather helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.arrays import concat_ranges, gather_adjacency

from tests.conftest import make_connected_signed


class TestConcatRanges:
    def test_basic(self):
        np.testing.assert_array_equal(
            concat_ranges(np.array([2, 3])), [0, 1, 0, 1, 2]
        )

    def test_zero_counts(self):
        np.testing.assert_array_equal(
            concat_ranges(np.array([2, 0, 3])), [0, 1, 0, 1, 2]
        )
        np.testing.assert_array_equal(
            concat_ranges(np.array([0, 0, 2])), [0, 1]
        )
        np.testing.assert_array_equal(
            concat_ranges(np.array([1, 0])), [0]
        )

    def test_empty(self):
        assert len(concat_ranges(np.array([], dtype=np.int64))) == 0
        assert len(concat_ranges(np.array([0, 0]))) == 0

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_matches_python_reference(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        expect = [i for c in counts for i in range(c)]
        np.testing.assert_array_equal(concat_ranges(counts), expect)


class TestGatherAdjacency:
    def test_matches_per_vertex_loops(self):
        g = make_connected_signed(40, 80, seed=0)
        vertices = np.array([3, 17, 3, 0])
        pos, src = gather_adjacency(g.indptr, vertices)
        expect_pos, expect_src = [], []
        for v in vertices:
            for p in range(int(g.indptr[v]), int(g.indptr[v + 1])):
                expect_pos.append(p)
                expect_src.append(int(v))
        np.testing.assert_array_equal(pos, expect_pos)
        np.testing.assert_array_equal(src, expect_src)

    def test_empty_vertex_set(self):
        g = make_connected_signed(10, 20, seed=0)
        pos, src = gather_adjacency(g.indptr, np.array([], dtype=np.int64))
        assert len(pos) == 0 and len(src) == 0

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import from_arrays, from_edges
from repro.graph.csr import SignedGraph
from repro.rng import as_generator


def make_connected_signed(
    n: int,
    extra_edges: int,
    negative_fraction: float = 0.4,
    seed: int = 0,
) -> SignedGraph:
    """Random connected signed graph: a random spanning chain plus
    ``extra_edges`` random chords.  Connectivity is guaranteed by
    construction, so tests never need retry loops."""
    rng = as_generator(seed)
    perm = rng.permutation(n)
    chain_u = perm[:-1]
    chain_v = perm[1:]
    if extra_edges > 0:
        cu = rng.integers(0, n, size=extra_edges * 3)
        cv = rng.integers(0, n, size=extra_edges * 3)
        keep = cu != cv
        cu, cv = cu[keep][:extra_edges], cv[keep][:extra_edges]
    else:
        cu = np.empty(0, dtype=np.int64)
        cv = np.empty(0, dtype=np.int64)
    u = np.concatenate([chain_u, cu])
    v = np.concatenate([chain_v, cv])
    s = np.where(rng.random(len(u)) < negative_fraction, -1, 1)
    return from_arrays(u, v, s, num_vertices=n, dedup="first")


@pytest.fixture
def triangle() -> SignedGraph:
    """Positive triangle (balanced)."""
    return from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 1)])


@pytest.fixture
def neg_triangle() -> SignedGraph:
    """Triangle with one negative edge (unbalanced, Fr = 1)."""
    return from_edges([(0, 1, 1), (1, 2, 1), (0, 2, -1)])


@pytest.fixture
def medium_graph() -> SignedGraph:
    """~300-vertex connected signed graph for integration tests."""
    return make_connected_signed(300, 500, seed=42)


def make_hub_graph(n: int = 80) -> SignedGraph:
    """A hub-and-spoke graph with chords: exercises high max degree."""
    edges = []
    for v in range(1, n):
        edges.append((0, v, 1 if v % 3 else -1))
    for v in range(1, n - 1, 2):
        edges.append((v, v + 1, -1 if v % 5 == 0 else 1))
    return from_edges(edges, num_vertices=n)


@pytest.fixture
def skewed_graph() -> SignedGraph:
    return make_hub_graph()

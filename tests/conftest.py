"""Shared fixtures and helpers for the test suite — plus a minimal
per-test timeout shim used when the ``pytest-timeout`` plugin is not
installed (e.g. the offline dev container).

The fault-injection tests deliberately create hung worker processes;
a supervisor regression could otherwise wedge the whole suite.  CI
installs the real plugin, which honours the same ``timeout`` ini
setting and ``@pytest.mark.timeout`` marker; the shim below covers the
gap with ``signal.setitimer`` (main-thread SIGALRM, POSIX only) so the
cap holds everywhere.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.graph.build import from_arrays, from_edges
from repro.graph.csr import SignedGraph
from repro.rng import as_generator

try:
    import pytest_timeout as _pytest_timeout  # noqa: F401

    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False


class ShimTimeout(Exception):
    """Raised by the fallback timeout shim when a test overruns."""


def pytest_addoption(parser):
    if not _HAVE_TIMEOUT_PLUGIN:
        # Register the same ini key pytest-timeout owns, so the
        # `timeout = N` line in pyproject.toml is valid either way.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (fallback shim; install "
            "pytest-timeout for the real thing)",
            default="0",
        )


def pytest_configure(config):
    if not _HAVE_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock cap (fallback shim)",
        )


def _shim_timeout_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = 0.0 if _HAVE_TIMEOUT_PLUGIN else _shim_timeout_seconds(item)
    use_alarm = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _expired(signum, frame):
        raise ShimTimeout(
            f"test exceeded the {seconds:g}s fallback timeout"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def make_connected_signed(
    n: int,
    extra_edges: int,
    negative_fraction: float = 0.4,
    seed: int = 0,
) -> SignedGraph:
    """Random connected signed graph: a random spanning chain plus
    ``extra_edges`` random chords.  Connectivity is guaranteed by
    construction, so tests never need retry loops."""
    rng = as_generator(seed)
    perm = rng.permutation(n)
    chain_u = perm[:-1]
    chain_v = perm[1:]
    if extra_edges > 0:
        cu = rng.integers(0, n, size=extra_edges * 3)
        cv = rng.integers(0, n, size=extra_edges * 3)
        keep = cu != cv
        cu, cv = cu[keep][:extra_edges], cv[keep][:extra_edges]
    else:
        cu = np.empty(0, dtype=np.int64)
        cv = np.empty(0, dtype=np.int64)
    u = np.concatenate([chain_u, cu])
    v = np.concatenate([chain_v, cv])
    s = np.where(rng.random(len(u)) < negative_fraction, -1, 1)
    return from_arrays(u, v, s, num_vertices=n, dedup="first")


@pytest.fixture
def triangle() -> SignedGraph:
    """Positive triangle (balanced)."""
    return from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 1)])


@pytest.fixture
def neg_triangle() -> SignedGraph:
    """Triangle with one negative edge (unbalanced, Fr = 1)."""
    return from_edges([(0, 1, 1), (1, 2, 1), (0, 2, -1)])


@pytest.fixture
def medium_graph() -> SignedGraph:
    """~300-vertex connected signed graph for integration tests."""
    return make_connected_signed(300, 500, seed=42)


def make_hub_graph(n: int = 80) -> SignedGraph:
    """A hub-and-spoke graph with chords: exercises high max degree."""
    edges = []
    for v in range(1, n):
        edges.append((0, v, 1 if v % 3 else -1))
    for v in range(1, n - 1, 2):
        edges.append((v, v + 1, -1 if v % 5 == 0 else 1))
    return from_edges(edges, num_vertices=n)


@pytest.fixture
def skewed_graph() -> SignedGraph:
    return make_hub_graph()

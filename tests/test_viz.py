"""Tests for the terminal rendering helpers."""

import numpy as np
import pytest

from repro.core import balance, label_tree
from repro.errors import ReproError
from repro.graph.datasets import fig1_sigma, fig6_graph, fig6_tree_edges
from repro.harary import harary_bipartition
from repro.trees import tree_from_edge_ids
from repro.viz import render_bars, render_bipartition, render_edges, render_tree

from tests.conftest import make_connected_signed


@pytest.fixture
def fig6():
    g = fig6_graph()
    ids = tuple(g.find_edge(p, c) for p, c in fig6_tree_edges())
    return g, tree_from_edge_ids(g, ids, root=0)


class TestRenderEdges:
    def test_sigma(self):
        out = render_edges(fig1_sigma())
        assert "4 vertices, 5 edges" in out
        assert "-3" in out  # the negative diagonal from vertex 0

    def test_size_guard(self):
        g = make_connected_signed(300, 400, seed=0)
        with pytest.raises(ReproError):
            render_edges(g, max_vertices=100)


class TestRenderTree:
    def test_fig6_shape(self, fig6):
        _g, t = fig6
        out = render_tree(t)
        assert "root 0, depth 2" in out
        assert "├── " in out and "└── " in out
        # All ten vertices appear.
        for v in range(10):
            assert f" {v}" in out or out.startswith(f"{v}")

    def test_labels_annotation(self, fig6):
        _g, t = fig6
        lab = label_tree(t)
        out = render_tree(t, labels=lab.new_id)
        assert "[0]" in out and "[9]" in out

    def test_size_guard(self):
        g = make_connected_signed(300, 400, seed=0)
        from repro.trees import bfs_tree

        with pytest.raises(ReproError):
            render_tree(bfs_tree(g, seed=0), max_vertices=100)


class TestRenderBipartition:
    def test_sigma_state(self):
        g = fig1_sigma()
        r = balance(g, seed=0)
        out = render_bipartition(harary_bipartition(g, r.signs))
        assert "side 0" in out and "side 1" in out


class TestRenderBars:
    def test_basic(self):
        out = render_bars(np.array([0.0, 0.5, 1.0]), labels=["a", "b", "c"])
        lines = out.splitlines()
        assert len(lines) == 3
        assert "1.000" in lines[2]
        assert "█" in lines[2]

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            render_bars(np.array([-1.0]))

    def test_label_mismatch(self):
        with pytest.raises(ReproError):
            render_bars(np.array([1.0]), labels=["a", "b"])

    def test_all_zero(self):
        out = render_bars(np.zeros(3))
        assert "0.000" in out

"""Tests for the deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import as_generator, freeze_seed, spawn


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(5).random(4)
        b = as_generator(5).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_of_order(self):
        a = spawn(7, 3).random(4)
        # Drawing other children first must not change child 3.
        _ = spawn(7, 0).random(1)
        b = spawn(7, 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_children_differ(self):
        a = spawn(7, 0).random(4)
        b = spawn(7, 1).random(4)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            spawn(7, -1)


class TestFreeze:
    def test_int_passthrough(self):
        assert freeze_seed(42) == 42

    def test_none_gives_int(self):
        s = freeze_seed(None)
        assert isinstance(s, int)
        assert 0 <= s < 2**63

    def test_generator_consumed(self):
        g = np.random.default_rng(0)
        a = freeze_seed(g)
        b = freeze_seed(np.random.default_rng(0))
        assert a == b  # same generator state -> same frozen seed

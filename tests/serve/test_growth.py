"""The background growth worker: determinism, shedding, degrade paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.checkpoint import recover_cloud
from repro.cloud.cloud import FrustrationCloud, sample_cloud
from repro.errors import ServeError
from repro.perf.registry import get_registry, reset_global_registry
from repro.serve.breaker import CircuitBreaker
from repro.serve.growth import GrowthWorker
from repro.serve.state import SnapshotStore

from tests.conftest import make_connected_signed


@pytest.fixture()
def graph():
    return make_connected_signed(18, 22, seed=4)


def _worker(graph, cloud=None, **kwargs):
    reset_global_registry()
    cloud = cloud if cloud is not None else FrustrationCloud(graph)
    store = SnapshotStore()
    defaults = dict(target_states=20, grow_step=6, seed=4)
    defaults.update(kwargs)
    return GrowthWorker(graph, cloud, store, "fp", **defaults), store


def test_grown_cloud_matches_sequential_campaign(graph):
    """Round-by-round supervised growth is bit-identical to one
    uninterrupted sequential campaign — the determinism the serve
    layer's byte-identical recovery contract stands on."""
    worker, store = _worker(graph)
    worker.start()
    assert worker.join(timeout=60)  # runs to target; no stop requested
    assert worker.cloud.num_states == 20
    expected = sample_cloud(graph, 20, seed=4)
    np.testing.assert_array_equal(worker.cloud.status(), expected.status())
    np.testing.assert_array_equal(
        worker.cloud.edge_agreement(), expected.edge_agreement()
    )
    snap = store.get()
    assert snap is not None and snap.num_states == 20


def test_checkpoints_every_round(graph, tmp_path):
    path = tmp_path / "ck.npz"
    worker, _ = _worker(graph, checkpoint_path=path, target_states=12,
                        grow_step=4)
    worker.start()
    assert worker.join(timeout=60)
    recovered, meta, _ = recover_cloud(path, graph)
    assert recovered.num_states == 12
    assert meta is not None and meta.seed == 4
    np.testing.assert_array_equal(
        recovered.status(), worker.cloud.status()
    )


def test_stop_interrupts_between_blocks(graph):
    worker, _ = _worker(graph, target_states=10_000, grow_step=2)
    worker.start()
    # Ask for a stop long before the campaign could finish.
    assert worker.stop(timeout=60)
    assert worker.cloud.num_states < 10_000


def test_open_breaker_sheds_growth(graph):
    breaker = CircuitBreaker(p99_threshold=0.01, min_samples=1, cooldown=60)
    breaker.record(1.0)  # trip it
    assert breaker.is_open
    worker, store = _worker(graph, breaker=breaker)
    worker.start()
    import time

    time.sleep(0.3)
    assert worker.cloud.num_states == 0  # shed, not sampling
    assert store.get() is None
    assert get_registry().counter("serve.growth_shed_total") >= 1
    assert worker.stop(timeout=10)


def test_disk_full_checkpoint_degrades_but_growth_continues(graph, tmp_path):
    from repro.util.faults import disk_full_checkpoints

    worker, store = _worker(
        graph, checkpoint_path=tmp_path / "ck.npz", target_states=8,
        grow_step=4,
    )
    with disk_full_checkpoints():
        worker.start()
        assert worker.join(timeout=60)
    # The disk was "full" the whole time: no checkpoint, but the cloud
    # still grew and snapshots still published.
    assert worker.cloud.num_states == 8
    assert store.get() is not None
    assert get_registry().counter("serve.checkpoint_errors_total") >= 1
    assert not (tmp_path / "ck.npz").exists()


def test_resume_from_recovered_cloud_is_prefix_stable(graph, tmp_path):
    """Grow 8, 'crash', recover, grow to 20: identical to growing 20."""
    path = tmp_path / "ck.npz"
    first, _ = _worker(graph, checkpoint_path=path, target_states=8,
                       grow_step=4)
    first.start()
    assert first.join(timeout=60)
    recovered, meta, _ = recover_cloud(path, graph)
    second, _ = _worker(graph, cloud=recovered, checkpoint_path=path,
                        target_states=20, grow_step=6)
    second.start()
    assert second.join(timeout=60)
    expected = sample_cloud(graph, 20, seed=4)
    np.testing.assert_array_equal(second.cloud.status(), expected.status())


def test_bad_parameters(graph):
    with pytest.raises(ServeError):
        _worker(graph, grow_step=0)
    with pytest.raises(ServeError):
        _worker(graph, target_states=-1)
